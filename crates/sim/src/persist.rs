//! Versioned snapshot/restore — the serialization kernel behind
//! `hcsim-snapshot/v1`.
//!
//! Every stateful layer of the simulator (queues, RNGs, statistics,
//! interconnect models, accelerators, the hypervisor, the topology
//! forest) implements one of two capabilities defined here:
//!
//! * [`PersistValue`] — plain data that can be written to a byte stream
//!   and *reconstructed* from it (`load_value` builds a fresh value).
//!   Queues, beats, statistics and enums are values.
//! * [`Persist`] — components restored *in place* into an identically
//!   constructed object (`restore` overwrites mutable state). This is
//!   the shape required by types that own non-serializable parts
//!   (closures, boxed trait objects): the caller rebuilds the object
//!   from its original configuration, then `restore` overlays the
//!   snapshot state.
//!
//! A blanket impl makes every `PersistValue` a `Persist` (restore =
//! load-and-assign), so component code can treat both uniformly.
//!
//! The container format is [`Snapshot`]: a magic line
//! (`hcsim-snapshot/v1`), a section count, and named sections each
//! carrying an independent CRC-32 checksum. Sections let a consumer
//! (or the CI schema checker) validate and locate state per layer
//! without decoding unrelated layers, and the per-section checksum
//! pinpoints which layer a corrupted snapshot lost.
//!
//! # Determinism contract
//!
//! Snapshot bytes are a pure function of logical simulator state:
//! collections serialize in logical (front-to-back / sorted-key) order,
//! never in storage order. Two states that behave identically must
//! snapshot identically — this is what lets the equivalence oracle
//! compare snapshots taken under different schedulers byte for byte.
//!
//! # Example
//!
//! ```
//! use sim::persist::{Persist, PersistValue, Snapshot, SnapshotWriter};
//! use sim::TimedFifo;
//!
//! let mut fifo: TimedFifo<u32> = TimedFifo::new(4, 1);
//! fifo.push(10, 42).unwrap();
//!
//! let mut w = SnapshotWriter::new();
//! fifo.save(&mut w);
//! let mut snap = Snapshot::new();
//! snap.push_section("fifo", w);
//! let bytes = snap.to_bytes();
//!
//! let reread = Snapshot::from_bytes(&bytes).unwrap();
//! let mut fresh: TimedFifo<u32> = TimedFifo::new(4, 1);
//! let mut r = reread.section("fifo").unwrap();
//! fresh.restore(&mut r).unwrap();
//! assert_eq!(fresh.pop_ready(11), Some(42));
//! ```

/// The on-disk / in-memory format tag for snapshots produced by this
/// crate. Bump the suffix on any incompatible layout change.
pub const FORMAT_TAG: &str = "hcsim-snapshot/v1";

/// Error raised while decoding or validating snapshot bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The byte stream ended before the expected value.
    Truncated {
        /// What was being decoded when the stream ran out.
        context: &'static str,
    },
    /// The container does not start with [`FORMAT_TAG`].
    BadMagic,
    /// A section's payload failed its CRC-32 check.
    ChecksumMismatch {
        /// Name of the corrupted section.
        section: String,
    },
    /// A required section is absent from the container.
    MissingSection(String),
    /// A decoded value is structurally invalid (bad discriminant,
    /// length overflow, non-UTF-8 string, ...).
    Corrupt(&'static str),
    /// The snapshot was taken from a differently-shaped system than the
    /// restore target (e.g. node-count mismatch).
    ShapeMismatch(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { context } => write!(f, "snapshot truncated while reading {context}"),
            Self::BadMagic => write!(f, "not a {FORMAT_TAG} snapshot"),
            Self::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            Self::MissingSection(name) => write!(f, "missing snapshot section '{name}'"),
            Self::Corrupt(what) => write!(f, "corrupt snapshot value: {what}"),
            Self::ShapeMismatch(what) => write!(f, "snapshot/target shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice.
///
/// Self-contained so the workspace stays dependency-free; the CI schema
/// checker re-implements the same polynomial in Python.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Little-endian byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Little-endian byte source for snapshot payloads.
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Wraps a payload slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a bool (rejecting bytes other than 0/1).
    pub fn take_bool(&mut self) -> Result<bool, PersistError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Corrupt("bool")),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, PersistError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8, "u64")?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `u128`.
    pub fn take_u128(&mut self) -> Result<u128, PersistError> {
        let b = self.take(16, "u128")?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Reads a `usize` stored as `u64`.
    pub fn take_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt("usize overflow"))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let len = self.take_usize()?;
        self.take(len, "bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, PersistError> {
        let b = self.take_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| PersistError::Corrupt("utf-8 string"))
    }
}

/// In-place snapshot capability for stateful components.
///
/// `restore` must be called on an object constructed (and configured)
/// identically to the one that was saved; it overlays the snapshot's
/// mutable state. Implemented automatically for every [`PersistValue`].
pub trait Persist {
    /// Appends this object's state to the writer.
    fn save(&self, w: &mut SnapshotWriter);

    /// Overwrites this object's state from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the stream is truncated, corrupt or
    /// shaped for a different configuration.
    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError>;
}

/// Snapshot capability for plain data: values that can be rebuilt from
/// bytes alone (no closures, no trait objects, no external config).
pub trait PersistValue: Sized {
    /// Appends this value to the writer.
    fn save_value(&self, w: &mut SnapshotWriter);

    /// Reconstructs a value from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the stream is truncated or corrupt.
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError>;
}

impl<T: PersistValue> Persist for T {
    fn save(&self, w: &mut SnapshotWriter) {
        self.save_value(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        *self = T::load_value(r)?;
        Ok(())
    }
}

macro_rules! persist_int {
    ($ty:ty, $put:ident, $take:ident) => {
        impl PersistValue for $ty {
            fn save_value(&self, w: &mut SnapshotWriter) {
                w.$put(*self);
            }
            fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
                r.$take()
            }
        }
    };
}

persist_int!(u8, put_u8, take_u8);
persist_int!(u16, put_u16, take_u16);
persist_int!(u32, put_u32, take_u32);
persist_int!(u64, put_u64, take_u64);
persist_int!(u128, put_u128, take_u128);
persist_int!(usize, put_usize, take_usize);
persist_int!(bool, put_bool, take_bool);
persist_int!(f64, put_f64, take_f64);

impl PersistValue for i64 {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self as u64);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(r.take_u64()? as i64)
    }
}

impl PersistValue for String {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_str(self);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.take_str()
    }
}

impl<T: PersistValue> PersistValue for Option<T> {
    fn save_value(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.save_value(w);
            }
        }
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        if r.take_bool()? {
            Ok(Some(T::load_value(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: PersistValue> PersistValue for Vec<T> {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for v in self {
            v.save_value(w);
        }
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let len = r.take_usize()?;
        // Guard against absurd lengths from corrupt streams before
        // reserving memory: every element is at least one byte.
        if len > r.remaining() {
            return Err(PersistError::Corrupt("vec length exceeds stream"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load_value(r)?);
        }
        Ok(out)
    }
}

impl<T: PersistValue> PersistValue for std::collections::VecDeque<T> {
    /// Serialized front-to-back (logical order), so the byte stream is
    /// independent of the deque's internal split point.
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for v in self {
            v.save_value(w);
        }
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let len = r.take_usize()?;
        if len > r.remaining() {
            return Err(PersistError::Corrupt("deque length exceeds stream"));
        }
        let mut out = std::collections::VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::load_value(r)?);
        }
        Ok(out)
    }
}

impl<A: PersistValue, B: PersistValue> PersistValue for (A, B) {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.0.save_value(w);
        self.1.save_value(w);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok((A::load_value(r)?, B::load_value(r)?))
    }
}

impl<A: PersistValue, B: PersistValue, C: PersistValue> PersistValue for (A, B, C) {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.0.save_value(w);
        self.1.save_value(w);
        self.2.save_value(w);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok((A::load_value(r)?, B::load_value(r)?, C::load_value(r)?))
    }
}

impl<T: PersistValue, const N: usize> PersistValue for [T; N] {
    fn save_value(&self, w: &mut SnapshotWriter) {
        for v in self {
            v.save_value(w);
        }
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load_value(r)?);
        }
        out.try_into()
            .map_err(|_| PersistError::Corrupt("array length"))
    }
}

/// One named, checksummed slice of a snapshot.
#[derive(Debug, Clone)]
struct Section {
    name: String,
    payload: Vec<u8>,
}

/// A complete `hcsim-snapshot/v1` container: named sections, each with
/// an independent CRC-32 validated on decode.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    sections: Vec<Section>,
}

impl Snapshot {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section holding the writer's payload.
    pub fn push_section(&mut self, name: &str, w: SnapshotWriter) {
        self.sections.push(Section {
            name: name.to_owned(),
            payload: w.into_bytes(),
        });
    }

    /// Section names in container order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// A reader over the named section's payload.
    pub fn section(&self, name: &str) -> Option<SnapshotReader<'_>> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| SnapshotReader::new(&s.payload))
    }

    /// A reader over the named section, or [`PersistError::MissingSection`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::MissingSection`] when absent.
    pub fn require_section(&self, name: &str) -> Result<SnapshotReader<'_>, PersistError> {
        self.section(name)
            .ok_or_else(|| PersistError::MissingSection(name.to_owned()))
    }

    /// Raw payload length of the named section, if present.
    pub fn section_len(&self, name: &str) -> Option<usize> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.payload.len())
    }

    /// Serializes the container:
    ///
    /// ```text
    /// "hcsim-snapshot/v1\n"
    /// u32 section_count
    /// per section:
    ///   u16 name_len, name bytes (UTF-8)
    ///   u32 payload_len, payload bytes
    ///   u32 crc32(payload)
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(FORMAT_TAG.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&(s.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&s.payload);
            out.extend_from_slice(&crc32(&s.payload).to_le_bytes());
        }
        out
    }

    /// Parses and checksum-validates a container produced by
    /// [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on bad magic, truncation or a CRC
    /// mismatch in any section.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let magic_len = FORMAT_TAG.len() + 1;
        if bytes.len() < magic_len
            || &bytes[..magic_len - 1] != FORMAT_TAG.as_bytes()
            || bytes[magic_len - 1] != b'\n'
        {
            return Err(PersistError::BadMagic);
        }
        let mut r = SnapshotReader::new(&bytes[magic_len..]);
        let count = r.take_u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name_len = r.take_u16()? as usize;
            let name = String::from_utf8(r.take(name_len, "section name")?.to_vec())
                .map_err(|_| PersistError::Corrupt("section name utf-8"))?;
            let payload_len = r.take_u32()? as usize;
            let payload = r.take(payload_len, "section payload")?.to_vec();
            let stored_crc = r.take_u32()?;
            if crc32(&payload) != stored_crc {
                return Err(PersistError::ChecksumMismatch { section: name });
            }
            sections.push(Section { name, payload });
        }
        Ok(Self { sections })
    }

    /// Total serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_u128(1 << 100);
        w.put_bool(true);
        w.put_f64(1.5);
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u16().unwrap(), 300);
        assert_eq!(r.take_u32().unwrap(), 70_000);
        assert_eq!(r.take_u64().unwrap(), 1 << 40);
        assert_eq!(r.take_u128().unwrap(), 1 << 100);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_f64().unwrap(), 1.5);
        assert_eq!(r.take_str().unwrap(), "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = SnapshotReader::new(&[1, 2]);
        assert!(matches!(r.take_u64(), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn value_containers_roundtrip() {
        let original: Vec<(u64, Option<String>)> =
            vec![(1, Some("a".into())), (2, None), (3, Some("ccc".into()))];
        let mut w = SnapshotWriter::new();
        original.save_value(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let loaded = Vec::<(u64, Option<String>)>::load_value(&mut r).unwrap();
        assert_eq!(loaded, original);
    }

    #[test]
    fn array_roundtrip() {
        let state: [u64; 4] = [1, 2, 3, u64::MAX];
        let mut w = SnapshotWriter::new();
        state.save_value(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(<[u64; 4]>::load_value(&mut r).unwrap(), state);
    }

    #[test]
    fn snapshot_container_roundtrip() {
        let mut snap = Snapshot::new();
        let mut w = SnapshotWriter::new();
        w.put_u64(42);
        snap.push_section("alpha", w);
        let mut w = SnapshotWriter::new();
        w.put_str("beta-data");
        snap.push_section("beta", w);

        let bytes = snap.to_bytes();
        assert!(bytes.starts_with(b"hcsim-snapshot/v1\n"));

        let reread = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(reread.section_names(), vec!["alpha", "beta"]);
        assert_eq!(reread.section("alpha").unwrap().take_u64().unwrap(), 42);
        assert_eq!(
            reread.section("beta").unwrap().take_str().unwrap(),
            "beta-data"
        );
        assert!(reread.section("gamma").is_none());
        assert!(matches!(
            reread.require_section("gamma"),
            Err(PersistError::MissingSection(_))
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut snap = Snapshot::new();
        let mut w = SnapshotWriter::new();
        w.put_u64(7);
        snap.push_section("s", w);
        let mut bytes = snap.to_bytes();
        // Flip a payload byte (magic + count + name header precede it).
        let idx = bytes.len() - 6;
        bytes[idx] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            Snapshot::from_bytes(b"not-a-snapshot\n\0\0\0\0"),
            Err(PersistError::BadMagic)
        ));
    }
}
