//! Conservative-lookahead parallel simulation engine.
//!
//! Classic parallel discrete-event simulation: the model is partitioned
//! into *shards* that only interact through links with a known minimum
//! latency `L ≥ 1`. A shard can then free-run `L` cycles without seeing
//! a remote event it should have reacted to — the *lookahead* — so the
//! engine advances all shards in bulk-synchronous windows of
//! `W = min L` cycles and exchanges the in-flight traffic at window
//! boundaries.
//!
//! The engine is model-agnostic: it knows nothing about AXI. A shard is
//! anything implementing [`ShardTask`]; messages are an opaque `Send`
//! type routed by shard index. Determinism does not depend on thread
//! scheduling because all cross-shard routing happens on the
//! coordinator between barriers, in shard-index order:
//!
//! 1. the coordinator publishes the window `[from, to)`;
//! 2. every worker runs its shards over the window and records a
//!    [`WindowReport`] (progress flag, event horizon, outbound
//!    messages);
//! 3. after a barrier, the coordinator routes every outbox into the
//!    destination inboxes in shard-index order, decides whether the
//!    next window can *skip ahead* (no shard progressed, no message in
//!    flight — jump to the earliest horizon), and publishes the next
//!    window.
//!
//! Two barriers per round; shards are statically chunked over workers,
//! so which thread runs a shard never affects what the shard observes.

use std::sync::{Barrier, Mutex};

use crate::clock::Cycle;

/// One shard of a partitioned model: a unit the engine advances in
/// windows on a worker thread.
pub trait ShardTask: Send {
    /// Cross-shard message type (in-flight beats, in the AXI use case).
    type Msg: Send;

    /// Accepts messages routed to this shard since its last window, in
    /// deterministic (source-shard-index, emission) order. Called
    /// before [`ShardTask::run_window`], even when empty.
    fn deliver(&mut self, msgs: Vec<Self::Msg>);

    /// Advances the shard over `[from, to)` and reports what happened.
    ///
    /// `from` may be later than the end of the previous window: the
    /// engine skips windows in which no shard can make progress, and
    /// the shard must treat the gap as idle cycles (typically recording
    /// them as fast-forwarded).
    fn run_window(&mut self, from: Cycle, to: Cycle) -> WindowReport<Self::Msg>;
}

/// What a shard tells the coordinator at the end of a window.
#[derive(Debug)]
pub struct WindowReport<M> {
    /// Whether any state changed during the window (same contract as
    /// [`crate::Component::tick`]). Skipping is only safe when *no*
    /// shard progressed.
    pub progressed: bool,
    /// Earliest future cycle at which this shard could act without
    /// external input, `None` for purely reactive shards. May
    /// under-promise, must never over-promise (see
    /// [`crate::Component::next_event`]).
    pub horizon: Option<Cycle>,
    /// Messages to deliver to other shards before their next window,
    /// as `(destination shard index, message)`.
    pub outbox: Vec<(usize, M)>,
    /// Whether this shard's finite workload is complete; the engine can
    /// stop at a window boundary when every shard reports `true`.
    pub done: bool,
}

/// How [`ShardedEngine::run`] should behave at the margins.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Jump over windows in which no shard can progress (the engine's
    /// fast-forward). Disable to force cycle-exact window stepping.
    pub allow_skip: bool,
    /// Stop at the first window boundary where every shard reports
    /// [`WindowReport::done`].
    pub stop_when_all_done: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            allow_skip: true,
            stop_when_all_done: false,
        }
    }
}

/// What the engine did over one [`ShardedEngine::run`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Cycle at which the run stopped (a window boundary, or the
    /// requested end).
    pub ended_at: Cycle,
    /// Whether every shard reported done at the final boundary.
    pub all_done: bool,
    /// Number of bulk-synchronous rounds executed.
    pub rounds: u64,
    /// Cycles jumped over by the engine-level fast-forward.
    pub skipped_cycles: Cycle,
    /// Cross-shard messages routed.
    pub messages_routed: u64,
    /// Worker threads actually used (≤ requested; never more than the
    /// number of shards).
    pub workers: usize,
}

/// The published plan for one round. `stop` tells workers to exit.
#[derive(Debug, Clone, Copy)]
struct Plan {
    from: Cycle,
    to: Cycle,
    stop: bool,
}

/// Bulk-synchronous conservative-lookahead engine: fixed window width,
/// fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct ShardedEngine {
    workers: usize,
    window: Cycle,
}

impl ShardedEngine {
    /// Creates an engine. `workers` is clamped to at least 1; `window`
    /// is the lookahead in cycles and must be at least 1 (it is the
    /// minimum latency of any cross-shard link).
    pub fn new(workers: usize, window: Cycle) -> Self {
        assert!(window >= 1, "lookahead window must be at least 1 cycle");
        Self {
            workers: workers.max(1),
            window,
        }
    }

    /// The configured lookahead window, in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Advances `shards` from cycle `from` up to (exclusive) `until` in
    /// bulk-synchronous windows.
    pub fn run<S: ShardTask>(
        &self,
        shards: &mut [S],
        from: Cycle,
        until: Cycle,
        opts: RunOptions,
    ) -> EngineReport {
        let n = shards.len();
        let workers = self.workers.min(n.max(1));
        let mut report = EngineReport {
            ended_at: from,
            all_done: false,
            rounds: 0,
            skipped_cycles: 0,
            messages_routed: 0,
            workers,
        };
        if n == 0 || from >= until {
            report.ended_at = until.max(from);
            return report;
        }

        let chunk = n.div_ceil(workers);
        let spawned = n.div_ceil(chunk);
        let barrier = Barrier::new(spawned + 1);
        let plan = Mutex::new(Plan {
            from,
            to: from,
            stop: false,
        });
        let inboxes: Vec<Mutex<Vec<S::Msg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let reports: Mutex<Vec<Option<WindowReport<S::Msg>>>> =
            Mutex::new((0..n).map(|_| None).collect());

        std::thread::scope(|scope| {
            for (widx, shard_chunk) in shards.chunks_mut(chunk).enumerate() {
                let barrier = &barrier;
                let plan = &plan;
                let inboxes = &inboxes;
                let reports = &reports;
                let base = widx * chunk;
                scope.spawn(move || loop {
                    barrier.wait();
                    let p = *plan.lock().unwrap();
                    if p.stop {
                        break;
                    }
                    for (i, shard) in shard_chunk.iter_mut().enumerate() {
                        let g = base + i;
                        let msgs = std::mem::take(&mut *inboxes[g].lock().unwrap());
                        shard.deliver(msgs);
                        let r = shard.run_window(p.from, p.to);
                        reports.lock().unwrap()[g] = Some(r);
                    }
                    barrier.wait();
                });
            }

            // Coordinator: plans windows, routes messages, decides skips.
            let mut now = from;
            loop {
                let to = (now + self.window).min(until);
                *plan.lock().unwrap() = Plan {
                    from: now,
                    to,
                    stop: false,
                };
                barrier.wait(); // release workers into the round
                barrier.wait(); // wait for every shard report
                report.rounds += 1;

                let round: Vec<WindowReport<S::Msg>> = {
                    let mut slots = reports.lock().unwrap();
                    slots
                        .iter_mut()
                        .map(|s| s.take().expect("every shard reports each round"))
                        .collect()
                };
                let any_progress = round.iter().any(|r| r.progressed);
                let any_msgs = round.iter().any(|r| !r.outbox.is_empty());
                let all_done = round.iter().all(|r| r.done);
                // Route in shard-index order: delivery order is a
                // function of the model, never of thread timing.
                let mut min_horizon: Option<Cycle> = None;
                for r in round {
                    for (dest, msg) in r.outbox {
                        inboxes[dest].lock().unwrap().push(msg);
                        report.messages_routed += 1;
                    }
                    if let Some(h) = r.horizon {
                        min_horizon = Some(min_horizon.map_or(h, |m| m.min(h)));
                    }
                }

                let mut next = to;
                if opts.allow_skip && !any_progress && !any_msgs {
                    // Nothing moved and nothing is in flight: the next
                    // observable event is the earliest shard horizon
                    // (or never, for an all-reactive forest).
                    let target = min_horizon.map_or(until, |h| h.clamp(to, until));
                    report.skipped_cycles += target - to;
                    next = target;
                }
                now = next;
                let finished_done = opts.stop_when_all_done && all_done;
                if finished_done || now >= until {
                    report.all_done = all_done;
                    // Stopping on completion pins the clock to the round
                    // boundary where it became observable; running out
                    // the budget pins it to `until` (a trailing skipped
                    // span is still simulated idle time).
                    report.ended_at = if finished_done { to } else { until };
                    plan.lock().unwrap().stop = true;
                    barrier.wait(); // workers observe stop and exit
                    break;
                }
            }
        });
        // Messages routed by the final round have not been through a
        // worker's deliver pass yet — hand them over so no in-flight
        // traffic is lost between runs.
        for (shard, inbox) in shards.iter_mut().zip(&inboxes) {
            let msgs = std::mem::take(&mut *inbox.lock().unwrap());
            if !msgs.is_empty() {
                shard.deliver(msgs);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy shard: emits `payload` to a peer every `period` cycles until
    /// `jobs` sends are done; accumulates everything it receives.
    struct Pinger {
        peer: usize,
        period: Cycle,
        jobs: u64,
        sent: u64,
        received: u64,
        sum: u64,
        now: Cycle,
        skipped: Cycle,
        pending_progress: bool,
    }

    impl Pinger {
        fn new(peer: usize, period: Cycle, jobs: u64) -> Self {
            Self {
                peer,
                period,
                jobs,
                sent: 0,
                received: 0,
                sum: 0,
                now: 0,
                skipped: 0,
                pending_progress: false,
            }
        }
    }

    impl ShardTask for Pinger {
        type Msg = u64;

        fn deliver(&mut self, msgs: Vec<u64>) {
            self.pending_progress |= !msgs.is_empty();
            for m in msgs {
                self.received += 1;
                self.sum = self.sum.wrapping_mul(31).wrapping_add(m);
            }
        }

        fn run_window(&mut self, from: Cycle, to: Cycle) -> WindowReport<u64> {
            if from > self.now {
                self.skipped += from - self.now;
            }
            self.now = from;
            let mut outbox = Vec::new();
            let mut progressed = std::mem::take(&mut self.pending_progress);
            while self.now < to {
                if self.sent < self.jobs && self.now.is_multiple_of(self.period) {
                    outbox.push((self.peer, self.now * 1000 + self.sent));
                    self.sent += 1;
                    progressed = true;
                }
                self.now += 1;
            }
            let horizon = (self.sent < self.jobs).then(|| {
                let next = self.now.next_multiple_of(self.period);
                next.max(self.now)
            });
            WindowReport {
                progressed,
                horizon,
                outbox,
                done: self.sent >= self.jobs,
            }
        }
    }

    fn run_ring(workers: usize, allow_skip: bool) -> (Vec<u64>, EngineReport) {
        let mut shards: Vec<Pinger> = (0..4)
            .map(|i| Pinger::new((i + 1) % 4, 50 * (i as Cycle + 1), 5))
            .collect();
        let engine = ShardedEngine::new(workers, 4);
        let rep = engine.run(
            &mut shards,
            0,
            2_000,
            RunOptions {
                allow_skip,
                stop_when_all_done: false,
            },
        );
        (shards.iter().map(|s| s.sum).collect(), rep)
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let (sums1, rep1) = run_ring(1, true);
        for w in [2, 3, 4, 8] {
            let (sums, rep) = run_ring(w, true);
            assert_eq!(sums, sums1, "workers={w}");
            assert_eq!(rep.messages_routed, rep1.messages_routed);
            assert_eq!(rep.rounds, rep1.rounds);
        }
        assert_eq!(rep1.messages_routed, 20);
    }

    #[test]
    fn skip_matches_exact_stepping() {
        let (skipping, rep_skip) = run_ring(2, true);
        let (exact, rep_exact) = run_ring(2, false);
        assert_eq!(skipping, exact);
        assert!(rep_skip.skipped_cycles > 0);
        assert_eq!(rep_exact.skipped_cycles, 0);
        assert!(rep_skip.rounds < rep_exact.rounds);
    }

    #[test]
    fn stops_at_window_boundary_when_all_done() {
        let mut shards = vec![Pinger::new(1, 10, 2), Pinger::new(0, 10, 2)];
        let engine = ShardedEngine::new(2, 4);
        let rep = engine.run(
            &mut shards,
            0,
            1_000_000,
            RunOptions {
                allow_skip: true,
                stop_when_all_done: true,
            },
        );
        assert!(rep.all_done);
        // Last send happens at cycle 10; done is observable at the
        // boundary of the window containing it.
        assert_eq!(rep.ended_at % 4, 0);
        assert!(rep.ended_at >= 10 && rep.ended_at < 1_000_000);
    }

    #[test]
    fn workers_clamped_to_shard_count() {
        let mut shards = vec![Pinger::new(0, 7, 1)];
        let rep = ShardedEngine::new(16, 2).run(&mut shards, 0, 20, RunOptions::default());
        assert_eq!(rep.workers, 1);
        assert_eq!(rep.ended_at, 20);
    }

    #[test]
    fn empty_shard_set_is_a_noop() {
        let mut shards: Vec<Pinger> = Vec::new();
        let rep = ShardedEngine::new(4, 8).run(&mut shards, 5, 100, RunOptions::default());
        assert_eq!(rep.rounds, 0);
        assert_eq!(rep.ended_at, 100);
    }

    #[test]
    #[should_panic(expected = "lookahead window")]
    fn zero_window_rejected() {
        let _ = ShardedEngine::new(1, 0);
    }
}
