//! Differential model tests for the flat ring kernel: `sim::ring::Ring`
//! and the ring-backed `TimedFifo` against naive `VecDeque` references.
//!
//! The ring is the storage element under every channel queue in the
//! interconnect models, so its equivalence to the obvious deque —
//! including wrap-around, growth, decouple-and-drop (`clear`) and the
//! shard-migration drain path (`drain_scheduled`) — is load-bearing for
//! the byte-identity guarantees of the flat-arena refactor.

use proptest::prelude::*;
use sim::ring::Ring;
use sim::TimedFifo;
use std::collections::VecDeque;

/// One randomized operation on the raw ring.
#[derive(Debug, Clone, Copy)]
enum RingOp {
    /// Push the next sequence number at the back.
    Push,
    /// Pop the front.
    Pop,
    /// Mutate the front in place (exercises the index-handle path).
    BumpFront,
    /// Mutate slot `i % len` in place.
    BumpAt(u8),
    /// Drop every element.
    Clear,
}

fn ring_op() -> impl Strategy<Value = RingOp> {
    // Push appears twice so sequences trend toward occupancy (the
    // vendored proptest's `prop_oneof!` draws arms uniformly).
    prop_oneof![
        Just(RingOp::Push),
        Just(RingOp::Push),
        Just(RingOp::Pop),
        Just(RingOp::BumpFront),
        (0u8..16).prop_map(RingOp::BumpAt),
        Just(RingOp::Clear),
    ]
}

/// One randomized operation on the timed queue, covering the full API
/// surface the interconnect models use.
#[derive(Debug, Clone, Copy)]
enum FifoOp {
    /// Push the next sequence number through the configured latency.
    Push,
    /// Push with an explicit visibility cycle (shard migration path).
    PushScheduled(u8),
    /// Pop if the head is visible.
    Pop,
    /// Advance the clock.
    Advance(u8),
    /// Decouple-and-drop: flush everything regardless of visibility.
    Clear,
    /// Drain all entries with their schedules (migration out).
    Drain,
}

fn fifo_op() -> impl Strategy<Value = FifoOp> {
    prop_oneof![
        Just(FifoOp::Push),
        Just(FifoOp::Push),
        (0u8..8).prop_map(FifoOp::PushScheduled),
        Just(FifoOp::Pop),
        Just(FifoOp::Pop),
        (1u8..5).prop_map(FifoOp::Advance),
        Just(FifoOp::Clear),
        Just(FifoOp::Drain),
    ]
}

proptest! {
    /// The raw ring behaves exactly like a `VecDeque` across any
    /// push/pop/mutate/clear schedule, including the wrap-and-grow
    /// cases a linear buffer never hits.
    #[test]
    fn ring_matches_vecdeque(
        ops in proptest::collection::vec(ring_op(), 1..300),
    ) {
        let mut dut: Ring<u64> = Ring::new();
        let mut reference: VecDeque<u64> = VecDeque::new();
        let mut seq = 0u64;
        for op in ops {
            match op {
                RingOp::Push => {
                    dut.push_back(seq);
                    reference.push_back(seq);
                    seq += 1;
                }
                RingOp::Pop => {
                    prop_assert_eq!(dut.pop_front(), reference.pop_front());
                }
                RingOp::BumpFront => {
                    if let Some(v) = dut.front_mut() {
                        *v += 1000;
                    }
                    if let Some(v) = reference.front_mut() {
                        *v += 1000;
                    }
                }
                RingOp::BumpAt(i) => {
                    if !reference.is_empty() {
                        let idx = i as usize % reference.len();
                        *dut.get_mut(idx).expect("index in range") += 7;
                        reference[idx] += 7;
                    } else {
                        prop_assert!(dut.get_mut(i as usize).is_none());
                    }
                }
                RingOp::Clear => {
                    dut.clear();
                    reference.clear();
                }
            }
            prop_assert_eq!(dut.len(), reference.len());
            prop_assert_eq!(dut.is_empty(), reference.is_empty());
            prop_assert_eq!(dut.front(), reference.front());
            prop_assert_eq!(dut.back(), reference.back());
            let dut_all: Vec<u64> = dut.iter().copied().collect();
            let ref_all: Vec<u64> = reference.iter().copied().collect();
            prop_assert_eq!(dut_all, ref_all);
        }
    }

    /// The ring-backed `TimedFifo` matches a reference deque of
    /// `(visible_at, value)` pairs over its *entire* API — including
    /// the decouple-and-drop flush, the scheduled push/drain migration
    /// pair, and the lifetime counters the fast-forward fingerprints
    /// depend on.
    #[test]
    fn timed_fifo_full_api_matches_reference(
        ops in proptest::collection::vec(fifo_op(), 1..250),
        capacity in 1usize..20,
        latency in 0u64..6,
    ) {
        let mut dut: TimedFifo<u64> = TimedFifo::new(capacity, latency);
        let mut reference: VecDeque<(u64, u64)> = VecDeque::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut ref_pushed = 0u64;
        let mut ref_popped = 0u64;
        let mut ref_high_water = 0usize;
        for op in ops {
            match op {
                FifoOp::Push => {
                    let dut_ok = dut.push(now, seq).is_ok();
                    let ref_ok = reference.len() < capacity;
                    prop_assert_eq!(dut_ok, ref_ok, "push acceptance at {}", now);
                    if ref_ok {
                        reference.push_back((now + latency, seq));
                        ref_pushed += 1;
                        ref_high_water = ref_high_water.max(reference.len());
                    }
                    seq += 1;
                }
                FifoOp::PushScheduled(at) => {
                    let ready_at = now + at as u64;
                    let dut_ok = dut.push_scheduled(ready_at, seq).is_ok();
                    let ref_ok = reference.len() < capacity;
                    prop_assert_eq!(dut_ok, ref_ok);
                    if ref_ok {
                        reference.push_back((ready_at, seq));
                        ref_pushed += 1;
                        ref_high_water = ref_high_water.max(reference.len());
                    }
                    seq += 1;
                }
                FifoOp::Pop => {
                    let expect = match reference.front() {
                        Some(&(ready, v)) if ready <= now => {
                            reference.pop_front();
                            ref_popped += 1;
                            Some(v)
                        }
                        _ => None,
                    };
                    prop_assert_eq!(dut.pop_ready(now), expect, "pop at {}", now);
                }
                FifoOp::Advance(d) => now += d as u64,
                FifoOp::Clear => {
                    dut.clear();
                    reference.clear();
                }
                FifoOp::Drain => {
                    let drained = dut.drain_scheduled();
                    let expected: Vec<(u64, u64)> = reference.drain(..).collect();
                    prop_assert_eq!(drained, expected);
                }
            }
            prop_assert_eq!(dut.len(), reference.len());
            prop_assert_eq!(dut.is_empty(), reference.is_empty());
            prop_assert_eq!(dut.is_full(), reference.len() >= capacity);
            prop_assert_eq!(dut.free(), capacity - reference.len());
            prop_assert_eq!(dut.total_pushed(), ref_pushed);
            prop_assert_eq!(dut.total_popped(), ref_popped);
            prop_assert!(dut.max_occupancy() >= ref_high_water);
            prop_assert_eq!(dut.next_ready_at(), reference.front().map(|&(r, _)| r));
            let visible = reference
                .iter()
                .take_while(|&&(ready, _)| ready <= now)
                .count();
            prop_assert_eq!(dut.ready_len(now), visible);
            let dut_all: Vec<u64> = dut.iter().copied().collect();
            let ref_all: Vec<u64> = reference.iter().map(|&(_, v)| v).collect();
            prop_assert_eq!(dut_all, ref_all);
        }
    }

    /// Migration round-trip: draining one queue and re-pushing the
    /// schedule into a fresh queue (of any latency) preserves every
    /// element's visibility cycle exactly.
    #[test]
    fn drain_then_push_scheduled_round_trips(
        entries in proptest::collection::vec((0u64..40, 0u64..1000), 0..12),
        source_latency in 0u64..6,
        dest_latency in 0u64..6,
    ) {
        let mut src: TimedFifo<u64> = TimedFifo::new(16, source_latency);
        for &(at, v) in &entries {
            src.push_scheduled(at, v).unwrap();
        }
        let mut dst: TimedFifo<u64> = TimedFifo::new(16, dest_latency);
        for (at, v) in src.drain_scheduled() {
            dst.push_scheduled(at, v).unwrap();
        }
        prop_assert!(src.is_empty());
        // Pop everything at a far-future cycle: original order and
        // values come back regardless of either queue's latency.
        let mut out = Vec::new();
        while let Some(v) = dst.pop_ready(1_000_000) {
            out.push(v);
        }
        let expected: Vec<u64> = entries.iter().map(|&(_, v)| v).collect();
        prop_assert_eq!(out, expected);
    }

    /// Snapshot/restore mid-wrap: a ring frozen at an arbitrary point of
    /// a random op schedule — including heads deep into wrap-around and
    /// grow-after-wrap repacks — must restore to an *equivalent* queue:
    /// identical logical contents, identical bytes on re-save, and
    /// identical behavior under the remaining schedule even though the
    /// restored ring's head offset and spare capacity may differ.
    #[test]
    fn snapshot_restore_mid_wrap_preserves_logical_order(
        warm in proptest::collection::vec(ring_op(), 1..150),
        rest in proptest::collection::vec(ring_op(), 1..150),
    ) {
        fn apply(dut: &mut Ring<u64>, reference: &mut VecDeque<u64>, seq: &mut u64, op: RingOp) {
            match op {
                RingOp::Push => {
                    dut.push_back(*seq);
                    reference.push_back(*seq);
                    *seq += 1;
                }
                RingOp::Pop => {
                    assert_eq!(dut.pop_front(), reference.pop_front());
                }
                RingOp::BumpFront => {
                    if let Some(v) = dut.front_mut() {
                        *v += 1000;
                    }
                    if let Some(v) = reference.front_mut() {
                        *v += 1000;
                    }
                }
                RingOp::BumpAt(i) => {
                    if !reference.is_empty() {
                        let idx = i as usize % reference.len();
                        *dut.get_mut(idx).expect("index in range") += 7;
                        reference[idx] += 7;
                    }
                }
                RingOp::Clear => {
                    dut.clear();
                    reference.clear();
                }
            }
        }

        use sim::persist::{PersistValue, SnapshotReader, SnapshotWriter};

        let mut dut: Ring<u64> = Ring::new();
        let mut reference: VecDeque<u64> = VecDeque::new();
        let mut seq = 0u64;
        for op in warm {
            apply(&mut dut, &mut reference, &mut seq, op);
        }

        // Freeze mid-schedule and thaw into a fresh ring.
        let mut w = SnapshotWriter::new();
        dut.save_value(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let mut thawed = Ring::<u64>::load_value(&mut r).expect("ring restores");

        // Logical equivalence, independent of head offset / capacity.
        let dut_all: Vec<u64> = dut.iter().copied().collect();
        let thawed_all: Vec<u64> = thawed.iter().copied().collect();
        prop_assert_eq!(&dut_all, &thawed_all);

        // Canonical bytes: re-saving the thawed ring (front at slot 0)
        // must reproduce the wrapped original's stream exactly.
        let mut w2 = SnapshotWriter::new();
        thawed.save_value(&mut w2);
        prop_assert_eq!(&bytes, &w2.into_bytes());

        // The thawed ring lives on under the rest of the schedule —
        // growth after the repack must keep matching the original.
        let mut seq2 = seq;
        let mut reference2 = reference.clone();
        for op in rest {
            apply(&mut dut, &mut reference, &mut seq, op);
            apply(&mut thawed, &mut reference2, &mut seq2, op);
            let a: Vec<u64> = dut.iter().copied().collect();
            let b: Vec<u64> = thawed.iter().copied().collect();
            prop_assert_eq!(a, b);
        }
    }
}
