//! Model-based property tests: the kernel queues against simple
//! reference implementations.

use proptest::prelude::*;
use sim::fifo::DelayQueue;
use sim::TimedFifo;
use std::collections::VecDeque;

/// One randomized queue operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push the next sequence number.
    Push,
    /// Pop if the head is visible.
    Pop,
    /// Advance the clock.
    Advance(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Push),
        Just(Op::Pop),
        (1u8..5).prop_map(Op::Advance),
    ]
}

proptest! {
    /// `TimedFifo` behaves exactly like a reference queue of
    /// `(visible_at, value)` pairs with FIFO order and capacity.
    #[test]
    fn timed_fifo_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 1usize..8,
        latency in 0u64..4,
    ) {
        let mut dut = TimedFifo::new(capacity, latency);
        let mut reference: VecDeque<(u64, u64)> = VecDeque::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for op in ops {
            match op {
                Op::Push => {
                    let dut_ok = dut.push(now, seq).is_ok();
                    let ref_ok = reference.len() < capacity;
                    prop_assert_eq!(dut_ok, ref_ok, "push acceptance at {}", now);
                    if ref_ok {
                        reference.push_back((now + latency, seq));
                    }
                    seq += 1;
                }
                Op::Pop => {
                    let expect = match reference.front() {
                        Some(&(ready, v)) if ready <= now => {
                            reference.pop_front();
                            Some(v)
                        }
                        _ => None,
                    };
                    prop_assert_eq!(dut.pop_ready(now), expect, "pop at {}", now);
                }
                Op::Advance(d) => now += d as u64,
            }
            prop_assert_eq!(dut.len(), reference.len());
            prop_assert_eq!(dut.is_empty(), reference.is_empty());
            prop_assert_eq!(dut.is_full(), reference.len() >= capacity);
        }
    }

    /// `DelayQueue` with per-entry delays matches the same reference.
    #[test]
    fn delay_queue_matches_reference(
        ops in proptest::collection::vec((op_strategy(), 0u64..6), 1..200),
        capacity in 1usize..8,
    ) {
        let mut dut: DelayQueue<u64> = DelayQueue::new(capacity);
        let mut reference: VecDeque<(u64, u64)> = VecDeque::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for (op, delay) in ops {
            match op {
                Op::Push => {
                    let dut_ok = dut.push(now, delay, seq).is_ok();
                    let ref_ok = reference.len() < capacity;
                    prop_assert_eq!(dut_ok, ref_ok);
                    if ref_ok {
                        reference.push_back((now + delay, seq));
                    }
                    seq += 1;
                }
                Op::Pop => {
                    let expect = match reference.front() {
                        Some(&(ready, v)) if ready <= now => {
                            reference.pop_front();
                            Some(v)
                        }
                        _ => None,
                    };
                    prop_assert_eq!(dut.pop_ready(now), expect);
                }
                Op::Advance(d) => now += d as u64,
            }
            prop_assert_eq!(dut.len(), reference.len());
        }
    }

    /// Whatever goes in comes out, once, in order — across any schedule.
    #[test]
    fn timed_fifo_conserves_elements(
        gaps in proptest::collection::vec(0u64..4, 1..64),
        capacity in 1usize..6,
        latency in 0u64..3,
    ) {
        let mut fifo = TimedFifo::new(capacity, latency);
        let mut now = 0;
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        for (seq, gap) in gaps.into_iter().enumerate() {
            now += gap;
            if fifo.push(now, seq as u64).is_ok() {
                pushed.push(seq as u64);
            }
            if let Some(v) = fifo.pop_ready(now) {
                popped.push(v);
            }
        }
        // Drain.
        now += latency + 1;
        while let Some(v) = fifo.pop_ready(now) {
            popped.push(v);
        }
        prop_assert_eq!(popped, pushed);
    }
}
