//! Criterion benches of the simulator itself: how fast the models run
//! on the host. Useful to size experiments and catch performance
//! regressions in the kernel primitives.

use axi::types::BurstSize;
use axi::{ArBeat, AxiInterconnect};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_timed_fifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/timed_fifo");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut f = sim::TimedFifo::new(16, 1);
            for now in 0..1024u64 {
                let _ = f.push(now, now);
                black_box(f.pop_ready(now));
            }
            f
        })
    });
    g.finish();
}

fn bench_hyperconnect_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/system_cycles");
    const CYCLES: u64 = 100_000;
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("contended_2port_100k", |b| {
        b.iter(|| {
            let mut sys = bench::make_system(bench::Design::HyperConnect);
            sys.add_accelerator(Box::new(ha::traffic::BandwidthStealer::new(
                "a",
                0x1000_0000,
                1 << 20,
                16,
                BurstSize::B16,
            )))
            .unwrap();
            sys.add_accelerator(Box::new(ha::traffic::BandwidthStealer::new(
                "b",
                0x3000_0000,
                1 << 20,
                256,
                BurstSize::B16,
            )))
            .unwrap();
            sys.run_for(CYCLES);
            black_box(sys.now())
        })
    });
    g.finish();
}

fn bench_interconnect_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/interconnect_tick");
    const CYCLES: u64 = 100_000;
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("hyperconnect_idle_100k", |b| {
        b.iter(|| {
            use sim::Component;
            let mut hc = hyperconnect::HyperConnect::new(hyperconnect::HcConfig::new(2));
            for now in 0..CYCLES {
                hc.tick(now);
            }
            black_box(hc.is_idle())
        })
    });
    g.bench_function("hyperconnect_loaded_100k", |b| {
        b.iter(|| {
            use sim::Component;
            let mut hc = hyperconnect::HyperConnect::new(hyperconnect::HcConfig::new(2));
            for now in 0..CYCLES {
                let _ = hc
                    .port((now % 2) as usize)
                    .ar
                    .push(now, ArBeat::new(now * 64, 16, BurstSize::B4));
                hc.tick(now);
                while hc.mem_port().ar.pop_ready(now).is_some() {}
            }
            black_box(hc.num_ports())
        })
    });
    g.finish();
}

fn bench_efifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/efifo");
    const BEATS: u64 = 1024;
    g.throughput(Throughput::Elements(BEATS));
    g.bench_function("ar_push_pop_1k", |b| {
        b.iter(|| {
            let mut e = hyperconnect::efifo::EFifo::new(8, 64, 8);
            let mut popped = 0u64;
            for now in 0..BEATS {
                let _ = e
                    .port
                    .ar
                    .push(now, ArBeat::new(now * 64, 16, BurstSize::B4));
                popped += e.pop_ar(now).is_some() as u64;
            }
            black_box(popped)
        })
    });
    g.finish();
}

fn bench_efifo_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/efifo");
    const CYCLES: u64 = 1024;
    g.throughput(Throughput::Elements(CYCLES));
    // Full-queue backpressure: a producer pushes every cycle but the
    // consumer drains only every other cycle, so the queue saturates
    // and half the pushes bounce off the full FIFO — the contended
    // steady state of Fig. 3(b)'s 4 MiB point.
    g.bench_function("ar_contended_backpressure_1k", |b| {
        b.iter(|| {
            let mut e = hyperconnect::efifo::EFifo::new(8, 64, 8);
            let mut accepted = 0u64;
            for now in 0..CYCLES {
                accepted += e
                    .port
                    .ar
                    .push(now, ArBeat::new(now * 64, 16, BurstSize::B4))
                    .is_ok() as u64;
                if now % 2 == 0 {
                    black_box(e.pop_ar(now));
                }
            }
            black_box(accepted)
        })
    });
    g.finish();
}

fn bench_payload_transfer(c: &mut Criterion) {
    use axi::{Payload, WBeat};

    let mut g = c.benchmark_group("kernel/payload");
    const BEATS: u64 = 1024;
    g.throughput(Throughput::Bytes(BEATS * 64));
    // The per-beat data path of every W/R channel: synthesize a 64-byte
    // payload, move the beat through a ring-backed FIFO, and read it on
    // the far side. With inline payload storage this is alloc-free; the
    // bench guards the zero-heap property's cycle cost.
    g.bench_function("wbeat_64b_through_fifo_1k", |b| {
        b.iter(|| {
            let mut f: sim::TimedFifo<WBeat> = sim::TimedFifo::new(16, 1);
            let mut sum = 0u64;
            for now in 0..BEATS {
                let data = Payload::from_fn(64, |i| (now as u8).wrapping_add(i as u8));
                let _ = f.push(now, WBeat::new(data, true));
                if let Some(beat) = f.pop_ready(now) {
                    sum += beat.data[0] as u64;
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_exbar_arbitration(c: &mut Criterion) {
    use hyperconnect::exbar::Exbar;
    use hyperconnect::supervisor::SubAr;
    use hyperconnect::TransactionSupervisor;

    let mut g = c.benchmark_group("kernel/exbar");
    const CYCLES: u64 = 4096;
    const PORTS: usize = 4;
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("arbitrate_ar_4port", |b| {
        b.iter(|| {
            // Routing depth sized so the route queue never backpressures:
            // the bench measures round-robin grant cost, not R-channel
            // completion flow.
            let mut exbar = Exbar::new(PORTS, CYCLES as usize);
            let mut sups: Vec<TransactionSupervisor> =
                (0..PORTS).map(|_| TransactionSupervisor::new(64)).collect();
            let mut mem_port = axi::AxiPort::new(axi::PortConfig::wire());
            for now in 0..CYCLES {
                for (p, ts) in sups.iter_mut().enumerate() {
                    if !ts.ar_stage.is_full() {
                        let beat = ArBeat::new(((p as u64) << 28) | (now * 64), 15, BurstSize::B4);
                        let _ = ts.ar_stage.push(
                            now,
                            SubAr {
                                beat,
                                final_sub: true,
                            },
                        );
                    }
                }
                exbar.arbitrate_ar(now, &mut sups);
                exbar.move_to_mem(now, &mut mem_port);
                while mem_port.ar.pop_ready(now).is_some() {}
            }
            black_box(exbar.stats().ar_grants.iter().sum::<u64>())
        })
    });
    g.finish();
}

criterion_group!(
    kernel,
    bench_timed_fifo,
    bench_hyperconnect_cycles,
    bench_interconnect_only,
    bench_efifo,
    bench_efifo_contended,
    bench_payload_transfer,
    bench_exbar_arbitration
);
criterion_main!(kernel);
