//! Criterion benches — one per paper artifact.
//!
//! Each bench runs the corresponding experiment harness (with a reduced
//! measurement window where the full figure uses a long one, so `cargo
//! bench` completes in minutes) and asserts the paper's qualitative
//! result so a regression in the models fails the bench rather than
//! silently producing a wrong figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BENCH_WINDOW: u64 = 2_000_000;

fn bench_fig3a(c: &mut Criterion) {
    c.bench_function("fig3a_channel_latencies", |b| {
        b.iter(|| {
            let f = bench::fig3a::run();
            assert_eq!((f.hc.d_ar, f.hc.d_r), (4, 2));
            assert!(f.sc.d_ar > f.hc.d_ar);
            black_box(f)
        })
    });
}

fn bench_fig3b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b_access_time");
    g.sample_size(10);
    for bytes in [4u64, 64, 16 << 10] {
        g.bench_function(format!("{bytes}B"), |b| {
            b.iter(|| {
                let hc = bench::fig3b::access_time(bench::Design::HyperConnect, bytes, 1);
                let sc = bench::fig3b::access_time(bench::Design::SmartConnect, bytes, 1);
                assert!(hc <= sc);
                black_box((hc, sc))
            })
        });
    }
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_isolation");
    g.sample_size(10);
    g.bench_function("both_designs", |b| {
        b.iter(|| {
            let rows = bench::fig4::run_with_window(BENCH_WINDOW);
            black_box(rows)
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_contention");
    g.sample_size(10);
    g.bench_function("sc_vs_hc9010", |b| {
        b.iter(|| {
            let sc = bench::fig5::smartconnect_contention(BENCH_WINDOW);
            let hc = bench::fig5::hyperconnect_contention(90, BENCH_WINDOW);
            assert!(hc.chaidnn_fps >= sc.chaidnn_fps);
            black_box((sc, hc))
        })
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_resources", |b| {
        b.iter(|| {
            let rows = bench::table1::run();
            assert!(rows[0].modeled.ff < rows[1].modeled.ff);
            black_box(rows)
        })
    });
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("a2_fairness", |b| {
        b.iter(|| black_box(bench::ablation::fairness_sweep(500_000)))
    });
    g.bench_function("a4_scaling", |b| {
        b.iter(|| black_box(bench::ablation::scaling_sweep()))
    });
    g.bench_function("a5_worst_case", |b| {
        b.iter(|| {
            for p in bench::ablation::worst_case_check(500_000) {
                assert!(p.observed_worst <= p.bound);
            }
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig3a,
    bench_fig3b,
    bench_fig4,
    bench_fig5,
    bench_table1,
    bench_ablations
);
criterion_main!(figures);
