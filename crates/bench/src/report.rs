//! Plain-text table formatting for the experiment binaries.

/// Renders a fixed-width table: a header row plus data rows. Column
/// widths adapt to the longest cell.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Percentage improvement of `new` over `baseline` (positive = new is
/// smaller/faster), as the paper reports latency improvements.
pub fn improvement_percent(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    100.0 * (baseline - new) / baseline
}

/// Formats a byte count with a binary-prefix unit.
pub fn human_bytes(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 20 => format!("{} MiB", b >> 20),
        b if b >= 1 << 10 => format!("{} KiB", b >> 10),
        b => format!("{b} B"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        // Columns aligned: "value" header starts where "22" starts.
        let header_col = lines[0].find("value").unwrap();
        let cell_col = lines[3].find("22").unwrap();
        assert_eq!(header_col, cell_col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_percent(12.0, 4.0), 66.66666666666667);
        assert_eq!(improvement_percent(0.0, 4.0), 0.0);
        assert!(improvement_percent(4.0, 12.0) < 0.0);
    }

    #[test]
    fn byte_units() {
        assert_eq!(human_bytes(4), "4 B");
        assert_eq!(human_bytes(64), "64 B");
        assert_eq!(human_bytes(16 << 10), "16 KiB");
        assert_eq!(human_bytes(4 << 20), "4 MiB");
    }
}
