//! Design-choice ablations (DESIGN.md experiments A1–A6).
//!
//! These go beyond the paper's figures to probe the *reasons* behind
//! the HyperConnect's design decisions:
//!
//! * **A1 granularity** — worst-case interference grows with the
//!   round-robin granularity `g` (paper §V-B: `g × (N − 1)`);
//! * **A2 fairness** — unfairness under plain round robin scales with
//!   the burst-length ratio; equalization removes it;
//! * **A3 reservation** — achieved bandwidth tracks the programmed
//!   budget and respects the analytical guarantee;
//! * **A4 scaling** — propagation latency stays fixed as ports are
//!   added, while area grows linearly;
//! * **A5 worst case** — simulated worst-case read latency never
//!   exceeds the closed-form bound of `hyperconnect::analysis`;
//! * **A6 PS protection** — throttling FPGA traffic (budget + the
//!   outstanding limit) bounds the latency that PS software sees at the
//!   shared memory controller.

use axi::lite::LiteBus;
use axi::types::BurstSize;
use axi::AxiInterconnect;
use ha::dma::{Dma, DmaConfig};
use ha::traffic::BandwidthStealer;
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::Hypervisor;
use mem::{MemConfig, MemoryController};
use sim::Cycle;
use smartconnect::{GranularityPolicy, ScConfig, SmartConnect};

use crate::{make_interconnect_n, Design, SocSystemBoxed};

/// A1 — victim worst-case burst latency under contention, as a function
/// of the arbiter's fixed granularity `g`. Four ports: one victim with a
/// single-transaction window against three saturating aggressors, so up
/// to `g x (N-1)` aggressor transactions can be granted between two
/// victim grants (paper §V-B). The HyperConnect corresponds to `g = 1`.
pub fn granularity_sweep(window: Cycle) -> Vec<(u32, Cycle)> {
    [1u32, 2, 4, 8]
        .iter()
        .map(|&g| {
            let sc = SmartConnect::new(ScConfig::new(4).granularity(GranularityPolicy::Fixed(g)));
            // A shallow memory pipeline keeps queueing delay small so
            // the *arbitration* interference dominates — the regime the
            // paper's g x (N-1) argument addresses.
            let mem_cfg = MemConfig::zcu102().first_word_latency(4).pipeline_depth(2);
            let mut sys = axi_hyperconnect::SocSystem::new(
                Box::new(sc) as Box<dyn AxiInterconnect>,
                MemoryController::new(mem_cfg),
            );
            // Victim: modest 16-beat bursts, one transaction at a time.
            sys.add_accelerator(Box::new(Dma::new(
                "victim",
                DmaConfig {
                    read_bytes: 1 << 20,
                    write_bytes: 0,
                    burst_beats: 16,
                    max_outstanding: 1,
                    jobs: None,
                    ..DmaConfig::case_study()
                },
            )))
            .unwrap();
            // Three aggressors with matching burst sizes and deep
            // pipelining: enough queued work for any granularity.
            for i in 1..4u64 {
                sys.add_accelerator(Box::new(BandwidthStealer::new(
                    "aggressor",
                    0x3000_0000 + (i << 24),
                    1 << 20,
                    16,
                    BurstSize::B16,
                )))
                .unwrap();
            }
            sys.run_for(window);
            let victim: &Dma = sys
                .accelerator(0)
                .unwrap()
                .as_any()
                .downcast_ref()
                .expect("victim is a Dma");
            let worst = victim.read_txn_latency().and_then(|l| l.max()).unwrap_or(0);
            (g, worst)
        })
        .collect()
}

/// A2 — unfairness ratio (aggressor bytes / victim bytes) as a function
/// of the aggressor's burst length, on both designs. Victim uses
/// 16-beat bursts throughout.
pub fn fairness_sweep(window: Cycle) -> Vec<(u32, f64, f64)> {
    let run = |design: Design, burst: u32| -> f64 {
        let mut sys = crate::make_system(design);
        sys.add_accelerator(Box::new(BandwidthStealer::new(
            "victim",
            0x1000_0000,
            1 << 20,
            16,
            BurstSize::B16,
        )))
        .unwrap();
        sys.add_accelerator(Box::new(BandwidthStealer::new(
            "aggr",
            0x3000_0000,
            1 << 20,
            burst,
            BurstSize::B16,
        )))
        .unwrap();
        sys.run_for(window);
        let victim = sys.accelerator(0).unwrap().jobs_completed() * 16;
        let aggr = sys.accelerator(1).unwrap().jobs_completed() * burst as u64;
        aggr as f64 / victim.max(1) as f64
    };
    [16u32, 32, 64, 128, 256]
        .iter()
        .map(|&b| {
            (
                b,
                run(Design::SmartConnect, b),
                run(Design::HyperConnect, b),
            )
        })
        .collect()
}

/// A3 result row.
#[derive(Debug, Clone, Copy)]
pub struct ReservationPoint {
    /// Percent share programmed for port 0.
    pub share: u32,
    /// Bytes port 0 actually moved in the window.
    pub achieved_bytes: u64,
    /// Analytical minimum bytes guaranteed by the budget.
    pub guaranteed_bytes: u64,
}

/// A3 — achieved versus guaranteed bandwidth as the programmed share of
/// a saturating reader sweeps from 10% to 90% (the other port takes the
/// complement).
pub fn reservation_sweep(window: Cycle) -> Vec<ReservationPoint> {
    const HC_BASE: u64 = 0xA000_0000;
    const PERIOD: u32 = 50_000;
    [10u32, 30, 50, 70, 90]
        .iter()
        .map(|&share| {
            let hc = HyperConnect::new(HcConfig::new(2));
            let mut bus = LiteBus::new();
            bus.map(HC_BASE, 0x1000, hc.regs().clone());
            let hv = Hypervisor::new(bus, HC_BASE).expect("device present");
            hv.hc().set_period(PERIOD).unwrap();
            let mem_lat = MemConfig::zcu102().first_word_latency;
            let budgets = hv
                .set_bandwidth_shares(&[share, 100 - share], mem_lat)
                .unwrap();
            let mut sys = axi_hyperconnect::SocSystem::new(
                Box::new(hc) as Box<dyn AxiInterconnect>,
                MemoryController::new(MemConfig::zcu102()),
            );
            for (name, base) in [("a", 0x1000_0000u64), ("b", 0x3000_0000)] {
                sys.add_accelerator(Box::new(BandwidthStealer::new(
                    name,
                    base,
                    1 << 20,
                    16,
                    BurstSize::B16,
                )))
                .unwrap();
            }
            sys.run_for(window);
            let stealer: &BandwidthStealer = sys
                .accelerator(0)
                .unwrap()
                .as_any()
                .downcast_ref()
                .expect("port 0 is a stealer");
            let model = ServiceModel::hyperconnect(2, 16, mem_lat);
            let per_period = model.guaranteed_bytes_per_period(budgets[0], 16);
            let periods = window / PERIOD as u64;
            ReservationPoint {
                share,
                achieved_bytes: stealer.bytes_received(),
                guaranteed_bytes: per_period * periods,
            }
        })
        .collect()
}

/// A4 result row.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Port count.
    pub ports: usize,
    /// Measured AR propagation latency (must stay 4 cycles).
    pub d_ar: Cycle,
    /// Modeled LUTs.
    pub lut: u64,
    /// Modeled FFs.
    pub ff: u64,
}

/// A4 — latency and area versus port count.
pub fn scaling_sweep() -> Vec<ScalingPoint> {
    use sim::Component;
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&n| {
            let mut ic = make_interconnect_n(Design::HyperConnect, n);
            ic.port(0)
                .ar
                .push(0, axi::ArBeat::new(0x100, 1, BurstSize::B4))
                .unwrap();
            let mut d_ar = 0;
            for now in 0..100 {
                ic.tick(now);
                if ic.mem_port().ar.has_ready(now) {
                    d_ar = now;
                    break;
                }
            }
            let area = resources::hyperconnect(resources::ModelParams {
                num_ports: n,
                ..resources::ModelParams::default()
            })
            .total;
            ScalingPoint {
                ports: n,
                d_ar,
                lut: area.lut,
                ff: area.ff,
            }
        })
        .collect()
}

/// A5 result.
#[derive(Debug, Clone, Copy)]
pub struct WorstCasePoint {
    /// Port count.
    pub ports: usize,
    /// Worst observed sub-transaction read latency (cycles).
    pub observed_worst: Cycle,
    /// Closed-form bound from `hyperconnect::analysis`.
    pub bound: Cycle,
}

/// A5 — adversarial worst-case versus the analytical bound: one
/// monitored port against N−1 saturating aggressors, all equalized.
pub fn worst_case_check(window: Cycle) -> Vec<WorstCasePoint> {
    [2usize, 4]
        .iter()
        .map(|&n| {
            let mut sys: SocSystemBoxed = axi_hyperconnect::SocSystem::new(
                make_interconnect_n(Design::HyperConnect, n),
                MemoryController::new(MemConfig::zcu102()),
            );
            sys.add_accelerator(Box::new(Dma::new(
                "probe",
                DmaConfig {
                    read_bytes: 1 << 18,
                    write_bytes: 0,
                    burst_beats: 16,
                    max_outstanding: 1,
                    jobs: None,
                    ..DmaConfig::case_study()
                },
            )))
            .unwrap();
            for i in 1..n {
                sys.add_accelerator(Box::new(BandwidthStealer::new(
                    "aggr",
                    0x3000_0000 + ((i as u64) << 24),
                    1 << 20,
                    256,
                    BurstSize::B16,
                )))
                .unwrap();
            }
            sys.run_for(window);
            let probe: &Dma = sys
                .accelerator(0)
                .unwrap()
                .as_any()
                .downcast_ref()
                .expect("probe is a Dma");
            let observed = probe
                .read_txn_latency()
                .and_then(|l| l.max())
                .expect("probe issued transactions");
            let mem = MemConfig::zcu102();
            let model = ServiceModel::hyperconnect(n, 16, mem.first_word_latency);
            WorstCasePoint {
                ports: n,
                observed_worst: observed,
                bound: model.worst_case_read_latency(),
            }
        })
        .collect()
}

/// A6 result.
#[derive(Debug, Clone, Copy)]
pub struct PsProtectionPoint {
    /// Percent of the memory capacity budgeted to the FPGA side
    /// (`None` = reservation off, default outstanding limit).
    pub fpga_share: Option<u32>,
    /// Outstanding sub-transaction limit programmed per FPGA port.
    pub max_outstanding: u32,
    /// Worst-case PS (CPU) line-read latency observed, cycles.
    pub ps_worst: Cycle,
    /// Mean PS latency, cycles.
    pub ps_mean: f64,
}

/// A6 — throttling FPGA traffic protects PS software (paper §V-A: the
/// reservation mechanism also controls "the overall memory traffic
/// coming from the FPGA fabric directed to the shared memory subsystem,
/// which can delay the execution of software running on the
/// processors"). A CPU model reads cache lines through the PS port of
/// the memory controller while two saturating accelerators run behind a
/// HyperConnect; the sweep tightens the FPGA budget.
pub fn ps_protection_sweep(window: Cycle) -> Vec<PsProtectionPoint> {
    const HC_BASE: u64 = 0xA000_0000;
    const PERIOD: u32 = 20_000;
    let run = |fpga_share: Option<u32>, max_out: u32| -> PsProtectionPoint {
        let hc = HyperConnect::new(HcConfig::new(2));
        let mut bus = LiteBus::new();
        bus.map(HC_BASE, 0x1000, hc.regs().clone());
        let hv = Hypervisor::new(bus, HC_BASE).expect("device present");
        hv.hc().set_period(PERIOD).unwrap();
        if let Some(share) = fpga_share {
            let capacity = hyperconnect::analysis::period_capacity_txns(
                PERIOD as u64,
                16,
                MemConfig::zcu102().first_word_latency,
            );
            let per_port = capacity * share / 100 / 2;
            hv.hc().set_budget(0, per_port).unwrap();
            hv.hc().set_budget(1, per_port).unwrap();
        }
        // The outstanding limit bounds the *instantaneous* FPGA backlog
        // inside the memory controller (the budget bounds the rate).
        hv.hc().set_max_outstanding(0, max_out).unwrap();
        hv.hc().set_max_outstanding(1, max_out).unwrap();
        let mut hc = hc;
        let mut memory = MemoryController::new(MemConfig::zcu102());
        memory.enable_ps_port();
        let mut cpu = mem::PsCpu::new(200);
        let mut gens = [
            BandwidthStealer::new("g0", 0x1000_0000, 1 << 20, 256, BurstSize::B16),
            BandwidthStealer::new("g1", 0x3000_0000, 1 << 20, 256, BurstSize::B16),
        ];
        use ha::Accelerator;
        use sim::Component;
        for now in 0..window {
            for (i, g) in gens.iter_mut().enumerate() {
                g.tick(now, hc.port(i));
            }
            hc.tick(now);
            cpu.tick(now, memory.ps_port_mut());
            memory.tick(now, hc.mem_port());
        }
        PsProtectionPoint {
            fpga_share,
            max_outstanding: max_out,
            ps_worst: cpu.latency().max().unwrap_or(0),
            ps_mean: cpu.latency().mean().unwrap_or(0.0),
        }
    };
    vec![run(None, 4), run(Some(60), 2), run(Some(20), 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Cycle = 1_000_000;

    #[test]
    fn a1_interference_grows_with_granularity() {
        let sweep = granularity_sweep(W);
        assert_eq!(sweep.len(), 4);
        let g1 = sweep[0].1;
        let g8 = sweep[3].1;
        assert!(
            g8 > g1,
            "worst case must grow with granularity: g1={g1} g8={g8}"
        );
    }

    #[test]
    fn a2_equalization_bounds_unfairness() {
        let sweep = fairness_sweep(W);
        for (burst, sc_ratio, hc_ratio) in sweep {
            assert!(
                hc_ratio < 1.5,
                "HyperConnect unfair at burst {burst}: {hc_ratio}"
            );
            if burst >= 64 {
                assert!(
                    sc_ratio > 2.0,
                    "SmartConnect should be unfair at burst {burst}: {sc_ratio}"
                );
            }
        }
    }

    #[test]
    fn a3_achieved_tracks_guarantee() {
        let sweep = reservation_sweep(2_000_000);
        for p in &sweep {
            assert!(
                p.achieved_bytes as f64 >= 0.9 * p.guaranteed_bytes as f64,
                "share {}: achieved {} below guarantee {}",
                p.share,
                p.achieved_bytes,
                p.guaranteed_bytes
            );
        }
        // Monotone in the share.
        for w in sweep.windows(2) {
            assert!(w[1].achieved_bytes > w[0].achieved_bytes);
        }
    }

    #[test]
    fn a4_latency_flat_area_linear() {
        let sweep = scaling_sweep();
        for p in &sweep {
            assert_eq!(p.d_ar, 4, "AR latency must not grow with {} ports", p.ports);
        }
        assert!(sweep[4].lut > 4 * sweep[0].lut);
    }

    #[test]
    fn a6_throttling_fpga_protects_ps() {
        let sweep = ps_protection_sweep(500_000);
        assert_eq!(sweep.len(), 3);
        let unmanaged = sweep[0].ps_worst;
        let tight = sweep[2].ps_worst;
        assert!(
            tight < unmanaged,
            "tight FPGA budget must reduce PS worst case: {unmanaged} -> {tight}"
        );
        assert!(sweep[2].ps_mean < sweep[0].ps_mean);
    }

    #[test]
    fn a5_simulation_within_bound() {
        for p in worst_case_check(W) {
            assert!(
                p.observed_worst <= p.bound,
                "N={}: observed {} exceeds bound {}",
                p.ports,
                p.observed_worst,
                p.bound
            );
        }
    }
}
