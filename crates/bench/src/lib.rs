//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment lives in its own module and returns a structured
//! result; thin binaries (`src/bin/*`) print the paper-style rows, and
//! the Criterion benches (`benches/`) wrap the same functions. The
//! absolute numbers come from the behavioral models and the modeled
//! ZCU102 memory, so they are not expected to match the paper's
//! hardware measurements exactly — the *shape* (who wins, by what
//! factor, where crossovers fall) is the reproduction target, and each
//! module documents the paper's reference values next to the measured
//! ones.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig3a`] | Fig. 3(a) — per-channel propagation latency |
//! | [`fig3b`] | Fig. 3(b) — memory access time vs data size |
//! | [`fig4`] | Fig. 4 — CHaiDNN / DMA performance in isolation |
//! | [`fig5`] | Fig. 5 — contention + `HC-X-Y` reservation sweep |
//! | [`table1`] | Table I — resource consumption |
//! | [`ablation`] | design-choice ablations (granularity, fairness, reservation, scaling, worst-case bounds) |
//! | [`tree100`] | 100-node cascaded tree — the sharded scheduler's showcase scenario |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig3a;
pub mod fig3b;
pub mod fig4;
pub mod fig5;
pub mod report;
pub mod table1;
pub mod tree100;

use axi::AxiInterconnect;
use axi_hyperconnect::SocSystem;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use smartconnect::{ScConfig, SmartConnect};

/// Which interconnect an experiment instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// The paper's contribution.
    HyperConnect,
    /// The Xilinx baseline model.
    SmartConnect,
}

impl Design {
    /// Both designs, in report order.
    pub const BOTH: [Design; 2] = [Design::HyperConnect, Design::SmartConnect];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Design::HyperConnect => "HyperConnect",
            Design::SmartConnect => "SmartConnect",
        }
    }
}

/// A fresh two-port instance of the given design.
pub fn make_interconnect(design: Design) -> Box<dyn AxiInterconnect> {
    make_interconnect_n(design, 2)
}

/// A fresh N-port instance of the given design.
pub fn make_interconnect_n(design: Design, n: usize) -> Box<dyn AxiInterconnect> {
    match design {
        Design::HyperConnect => Box::new(HyperConnect::new(HcConfig::new(n))),
        Design::SmartConnect => Box::new(SmartConnect::new(ScConfig::new(n))),
    }
}

/// A system whose interconnect is selected at run time.
pub type SocSystemBoxed = SocSystem<Box<dyn AxiInterconnect>>;

/// The standard system used by the figure experiments: the given
/// design with the ZCU102-like memory model.
pub fn make_system(design: Design) -> SocSystemBoxed {
    SocSystem::new(
        make_interconnect(design),
        MemoryController::new(MemConfig::zcu102()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_produce_the_right_designs() {
        assert_eq!(
            make_interconnect(Design::HyperConnect).name(),
            "HyperConnect"
        );
        assert_eq!(
            make_interconnect(Design::SmartConnect).name(),
            "SmartConnect"
        );
        assert_eq!(make_interconnect_n(Design::HyperConnect, 4).num_ports(), 4);
    }

    #[test]
    fn boxed_interconnect_ticks() {
        use sim::Component;
        let mut ic = make_interconnect(Design::HyperConnect);
        ic.tick(0);
        assert!(ic.is_idle());
    }
}
