//! Fig. 3(a): propagation latency introduced on each AXI channel.
//!
//! Paper reference (ZCU102): HyperConnect d_AR = d_AW = 4 cycles,
//! d_R = d_W = d_B = 2 cycles; improvements over the SmartConnect of
//! 66% (AR/AW), 82% (R), 33% (W) and 0% (B) — i.e. SmartConnect ≈ 12,
//! 12, 11, 3, 2 cycles.
//!
//! Measurement mirrors the paper's FPGA timer: a beat is injected at a
//! port boundary and the cycle of its appearance at the opposite
//! boundary is recorded, on an otherwise idle interconnect (steady
//! state for the data channels, whose routing is established by their
//! address request).

use axi::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};
use axi::types::{AxiId, BurstSize};
use axi::AxiInterconnect;
use sim::Cycle;

use crate::{make_interconnect, Design};

/// Measured per-channel latencies, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelLatencies {
    /// Read-address channel.
    pub d_ar: Cycle,
    /// Write-address channel.
    pub d_aw: Cycle,
    /// Read-data channel.
    pub d_r: Cycle,
    /// Write-data channel (steady state, routing established).
    pub d_w: Cycle,
    /// Write-response channel.
    pub d_b: Cycle,
}

impl ChannelLatencies {
    /// Total latency added to a read transaction (paper: d_AR + d_R).
    pub fn read_total(&self) -> Cycle {
        self.d_ar + self.d_r
    }

    /// Total latency added to a write transaction
    /// (paper: d_AW + d_W + d_B).
    pub fn write_total(&self) -> Cycle {
        self.d_aw + self.d_w + self.d_b
    }
}

const PROBE_LIMIT: Cycle = 200;

fn tick_until<I: AxiInterconnect>(
    ic: &mut I,
    start: Cycle,
    mut probe: impl FnMut(&mut I, Cycle) -> bool,
) -> Cycle {
    for now in start..start + PROBE_LIMIT {
        ic.tick(now);
        if probe(ic, now) {
            return now;
        }
    }
    panic!("probe not observed within {PROBE_LIMIT} cycles");
}

/// Measures all five channel latencies for a fresh instance of
/// `design`.
pub fn measure(design: Design) -> ChannelLatencies {
    // d_AR: push at 0, observe at the master port.
    let mut ic = make_interconnect(design);
    ic.port(0)
        .ar
        .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    let d_ar = tick_until(&mut ic, 0, |ic, now| ic.mem_port().ar.has_ready(now));

    // d_AW.
    let mut ic = make_interconnect(design);
    ic.port(0)
        .aw
        .push(0, AwBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    let d_aw = tick_until(&mut ic, 0, |ic, now| ic.mem_port().aw.has_ready(now));

    // d_R: establish routing with a read, then inject the data beat at
    // the master port and watch the slave port.
    let mut ic = make_interconnect(design);
    ic.port(0)
        .ar
        .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    let granted = tick_until(&mut ic, 0, |ic, now| {
        ic.mem_port().ar.pop_ready(now).is_some()
    });
    let inject = granted + 1;
    ic.mem_port()
        .r
        .push(inject, RBeat::new(AxiId(0), vec![0; 4], true))
        .unwrap();
    let seen = tick_until(&mut ic, inject, |ic, now| ic.port(0).r.has_ready(now));
    let d_r = seen - inject;

    // d_W: issue a 2-beat write, let the first beat establish routing,
    // then measure a fresh beat in steady state.
    let mut ic = make_interconnect(design);
    ic.port(0)
        .aw
        .push(0, AwBeat::new(0x100, 2, BurstSize::B4))
        .unwrap();
    ic.port(0).w.push(0, WBeat::new(vec![0; 4], false)).unwrap();
    let first = tick_until(&mut ic, 0, |ic, now| {
        ic.mem_port().w.pop_ready(now).is_some()
    });
    let inject = first + 1;
    ic.port(0)
        .w
        .push(inject, WBeat::new(vec![0; 4], true))
        .unwrap();
    let seen = tick_until(&mut ic, inject, |ic, now| ic.mem_port().w.has_ready(now));
    let d_w = seen - inject;

    // d_B: complete the write's routing, then inject the response.
    let mut ic = make_interconnect(design);
    ic.port(0)
        .aw
        .push(0, AwBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    ic.port(0).w.push(0, WBeat::new(vec![0; 4], true)).unwrap();
    let drained = tick_until(&mut ic, 0, |ic, now| {
        ic.mem_port().aw.pop_ready(now);
        ic.mem_port().w.pop_ready(now).is_some()
    });
    let inject = drained + 1;
    ic.mem_port().b.push(inject, BBeat::new(AxiId(0))).unwrap();
    let seen = tick_until(&mut ic, inject, |ic, now| ic.port(0).b.has_ready(now));
    let d_b = seen - inject;

    ChannelLatencies {
        d_ar,
        d_aw,
        d_r,
        d_w,
        d_b,
    }
}

/// The complete Fig. 3(a) dataset: both designs plus improvements.
#[derive(Debug, Clone, Copy)]
pub struct Fig3a {
    /// HyperConnect latencies.
    pub hc: ChannelLatencies,
    /// SmartConnect latencies.
    pub sc: ChannelLatencies,
}

/// Runs the experiment.
pub fn run() -> Fig3a {
    Fig3a {
        hc: measure(Design::HyperConnect),
        sc: measure(Design::SmartConnect),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperconnect_matches_paper_constants() {
        let hc = measure(Design::HyperConnect);
        assert_eq!(
            hc,
            ChannelLatencies {
                d_ar: 4,
                d_aw: 4,
                d_r: 2,
                d_w: 2,
                d_b: 2
            }
        );
        assert_eq!(hc.read_total(), 6);
        assert_eq!(hc.write_total(), 8);
    }

    #[test]
    fn smartconnect_matches_calibration() {
        let sc = measure(Design::SmartConnect);
        assert_eq!(
            sc,
            ChannelLatencies {
                d_ar: 12,
                d_aw: 12,
                d_r: 11,
                d_w: 3,
                d_b: 2
            }
        );
    }

    #[test]
    fn improvements_match_paper_shape() {
        let f = run();
        let imp = |b: Cycle, n: Cycle| 100.0 * (b - n) as f64 / b as f64;
        // Paper: 66% AR/AW, 82% R, 33% W, 0% B.
        assert!((imp(f.sc.d_ar, f.hc.d_ar) - 66.7).abs() < 1.0);
        assert!((imp(f.sc.d_r, f.hc.d_r) - 81.8).abs() < 1.0);
        assert!((imp(f.sc.d_w, f.hc.d_w) - 33.3).abs() < 1.0);
        assert_eq!(f.sc.d_b, f.hc.d_b);
        // Paper: 74% per read transaction, 41% per write. (The paper's
        // own per-channel numbers give ~53% for writes; we assert the
        // direction and a generous band around both.)
        assert!((imp(f.sc.read_total(), f.hc.read_total()) - 74.0).abs() < 1.0);
        let w_imp = imp(f.sc.write_total(), f.hc.write_total());
        assert!((35.0..60.0).contains(&w_imp), "{w_imp}");
    }
}
