//! Runs all six design-choice ablations (DESIGN.md A1–A6).

use bench::ablation;
use bench::report::render_table;

const WINDOW: u64 = 3_000_000;

fn main() {
    println!("A1 — worst-case victim burst latency vs RR granularity g\n");
    let rows: Vec<Vec<String>> = ablation::granularity_sweep(WINDOW)
        .iter()
        .map(|&(g, worst)| vec![g.to_string(), worst.to_string()])
        .collect();
    print!("{}", render_table(&["g", "worst case (cycles)"], &rows));
    println!("(the EXBAR fixes g = 1; interference grows as g x (N-1))\n");

    println!("A2 — unfairness (aggressor/victim bytes) vs aggressor burst length\n");
    let rows: Vec<Vec<String>> = ablation::fairness_sweep(WINDOW)
        .iter()
        .map(|&(b, sc, hc)| {
            vec![
                format!("{b} beats"),
                format!("{sc:.1}x"),
                format!("{hc:.2}x"),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["aggressor burst", "SmartConnect", "HyperConnect"], &rows)
    );
    println!("(equalization holds the ratio near 1 regardless of burst length)\n");

    println!("A3 — achieved vs guaranteed bandwidth under reservation\n");
    let rows: Vec<Vec<String>> = ablation::reservation_sweep(WINDOW)
        .iter()
        .map(|p| {
            vec![
                format!("{}%", p.share),
                format!("{:.2} MiB", p.achieved_bytes as f64 / (1 << 20) as f64),
                format!("{:.2} MiB", p.guaranteed_bytes as f64 / (1 << 20) as f64),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["share", "achieved", "analytical guarantee"], &rows)
    );
    println!("(achieved >= guarantee at every operating point)\n");

    println!("A4 — scalability with port count\n");
    let rows: Vec<Vec<String>> = ablation::scaling_sweep()
        .iter()
        .map(|p| {
            vec![
                p.ports.to_string(),
                p.d_ar.to_string(),
                p.lut.to_string(),
                p.ff.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["ports", "d_AR (cycles)", "LUT", "FF"], &rows)
    );
    println!("(propagation latency is independent of N; area grows linearly)\n");

    println!("A5 — simulated worst case vs closed-form bound\n");
    let rows: Vec<Vec<String>> = ablation::worst_case_check(WINDOW)
        .iter()
        .map(|p| {
            vec![
                p.ports.to_string(),
                p.observed_worst.to_string(),
                p.bound.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["ports", "observed worst", "bound"], &rows)
    );
    println!("(the analysis of hyperconnect::analysis is never violated)\n");

    println!("A6 — PS (CPU) memory latency vs FPGA throttling\n");
    let rows: Vec<Vec<String>> = ablation::ps_protection_sweep(WINDOW)
        .iter()
        .map(|p| {
            vec![
                p.fpga_share.map_or("off".to_string(), |s| format!("{s}%")),
                p.max_outstanding.to_string(),
                p.ps_worst.to_string(),
                format!("{:.1}", p.ps_mean),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "FPGA budget",
                "max outstanding",
                "PS worst (cycles)",
                "PS mean"
            ],
            &rows
        )
    );
    println!("(bounding FPGA traffic bounds the delay seen by PS software)");
}
