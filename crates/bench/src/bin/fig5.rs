//! Regenerates Fig. 5: contention + the `HC-X-Y` reservation sweep.

use bench::report::render_table;

fn main() {
    println!(
        "Fig. 5 — CHaiDNN + interfering HA_DMA (both active), {} cycles/bar\n",
        bench::fig5::DEFAULT_WINDOW
    );
    let bars = bench::fig5::run();
    let iso_fps = bars[0].chaidnn_fps;
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|bar| {
            vec![
                bar.label.clone(),
                format!("{:.1}", bar.chaidnn_fps),
                format!("{:.0}%", 100.0 * bar.chaidnn_fps / iso_fps.max(1e-9)),
                format!("{:.1}", bar.dma_jobs),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["config", "CHaiDNN fps", "vs isolation", "DMA jobs/s"],
            &rows
        )
    );
    println!(
        "\npaper: under the SmartConnect the greedy DMA keeps most of the\n\
         bandwidth with no way to redistribute; HC-90-10 brings CHaiDNN\n\
         close to isolation, and the sweep trades fps for DMA jobs."
    );
}
