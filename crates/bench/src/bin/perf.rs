//! `perf`: the simulator's own performance harness.
//!
//! Measures host-side throughput (simulated cycles per wall-clock
//! second) across the paper's scenario classes and emits
//! `BENCH_simulator.json` so the perf trajectory is tracked from PR to
//! PR:
//!
//! 1. **Fig. 3(a) goldens** — the channel-latency probes, re-checked
//!    against the paper constants (a warped pipeline fails the run).
//! 2. **Idle-heavy probe** — a single DMA against `MemConfig::zcu102()`
//!    that finishes early and leaves the window mostly idle; run under
//!    both schedulers to demonstrate the event-horizon speedup.
//! 3. **Figure sweeps** — the independent Fig. 3(b)/4/5 scenario points
//!    executed on `std::thread` workers, reporting per-point wall time,
//!    the per-figure worker count actually used, and the
//!    parallel-runner gain over serial execution. The Fig. 5 sweep runs
//!    its systems under `SchedulerMode::Sharded` (single-interconnect
//!    plans fall through to the exact fast-forward path, so the numbers
//!    are unchanged — the sweep exercises the sharded dispatch).
//! 4. **100-node tree** — the [`bench::tree100`] scenario run under the
//!    sequential fast-forward oracle and then `SchedulerMode::Sharded`
//!    at a worker sweep; every sharded run is asserted byte-identical
//!    (and must report zero ambiguous entry-gate stalls), and
//!    `parallel_speedup` is the oracle wall time over the best sharded
//!    wall time at ≥ 2 workers. On few-core hosts the win comes from
//!    the sharded executor fast-forwarding idle shards *locally* while
//!    the busy shard pins the global clock — a real algorithmic
//!    speedup, not a thread-count artifact.
//!
//! Usage: `perf [--quick | --full] [--out PATH] [--workers N]
//! [--min-cycles-per-sec N]`
//!
//! `--workers N` sizes both the figure-sweep thread pool and the
//! sharded worker sweep (default: available parallelism, and the
//! sharded sweep always includes 2 workers).
//!
//! Exits non-zero if the Fig. 3(a) goldens regress, a sharded tree run
//! diverges from the sequential oracle, or the fast-forward idle-heavy
//! throughput falls below the `--min-cycles-per-sec` floor (the CI
//! perf-smoke gate).

#![cfg_attr(not(feature = "alloc-count"), forbid(unsafe_code))]

use std::sync::{Arc, Mutex};
use std::time::Instant;

use axi::lite::LiteBus;
use axi::observe::BoundReport;
use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::{SchedulerMode, SocSystem};
use bench::{fig3a, fig3b, fig4, fig5, tree100, Design};
use ha::dma::{Dma, DmaConfig};
use ha::traffic::{BandwidthStealer, PeriodicReader, RandomTraffic};
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::HcDriver;
use mem::{MemConfig, MemoryController};
use sim::Cycle;

/// A counting wrapper around the system allocator, compiled only under
/// the `alloc-count` feature. The sole overhead is one relaxed atomic
/// increment per allocation — negligible precisely when the hot path
/// allocates nothing, which is the property the probe verifies.
#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Heap allocations (incl. reallocations) since process start.
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: every method delegates directly to `System`, which
    // upholds the `GlobalAlloc` contract; the counter is a side effect.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// The global allocation count, when the counting allocator is armed.
fn alloc_count() -> Option<u64> {
    #[cfg(feature = "alloc-count")]
    {
        Some(counting_alloc::ALLOCS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

/// One schedulable scenario point: a closure returning the simulated
/// cycle count it covered (approximate for the latency sweeps, where
/// the workload length is data-dependent).
struct Point {
    name: String,
    run: Box<dyn FnOnce() -> u64 + Send>,
}

struct PointResult {
    name: String,
    wall_ms: f64,
    cycles: u64,
}

struct FigureReport {
    figure: &'static str,
    /// Scheduler the scenario systems ran under.
    scheduler: &'static str,
    /// Worker threads the point pool actually used (≤ requested,
    /// never more than the number of points).
    workers: usize,
    points: Vec<PointResult>,
    wall_ms_parallel: f64,
    peak_rss_kb_after: u64,
}

impl FigureReport {
    fn wall_ms_serial_sum(&self) -> f64 {
        self.points.iter().map(|p| p.wall_ms).sum()
    }

    fn sim_cycles(&self) -> u64 {
        self.points.iter().map(|p| p.cycles).sum()
    }

    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles() as f64 / (self.wall_ms_parallel / 1e3).max(1e-9)
    }
}

fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Runs the points on a fixed-size `std::thread` worker pool and
/// returns the results in submission order.
fn run_parallel(
    figure: &'static str,
    scheduler: &'static str,
    pool_workers: usize,
    points: Vec<Point>,
) -> FigureReport {
    let workers = pool_workers.max(1).min(points.len().max(1));
    let n = points.len();
    let queue: Arc<Mutex<Vec<(usize, Point)>>> =
        Arc::new(Mutex::new(points.into_iter().enumerate().rev().collect()));
    let results: Arc<Mutex<Vec<Option<PointResult>>>> =
        Arc::new(Mutex::new((0..n).map(|_| None).collect()));

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let results = Arc::clone(&results);
            scope.spawn(move || loop {
                let Some((idx, point)) = queue.lock().unwrap().pop() else {
                    return;
                };
                let t0 = Instant::now();
                let cycles = (point.run)();
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                results.lock().unwrap()[idx] = Some(PointResult {
                    name: point.name,
                    wall_ms,
                    cycles,
                });
            });
        }
    });
    let wall_ms_parallel = start.elapsed().as_secs_f64() * 1e3;

    let points = Arc::try_unwrap(results)
        .ok()
        .expect("all workers joined")
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every point ran"))
        .collect();
    FigureReport {
        figure,
        scheduler,
        workers,
        points,
        wall_ms_parallel,
        peak_rss_kb_after: peak_rss_kb(),
    }
}

/// The idle-heavy acceptance scenario: a single DMA reader that
/// finishes its jobs early in the window, leaving the SoC idle for the
/// remainder — the exact case event-horizon scheduling targets.
fn idle_heavy(mode: SchedulerMode, window: Cycle) -> (f64, u64, Cycle, u64) {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(1)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(Dma::new(
        "probe",
        DmaConfig {
            jobs: Some(4),
            ..DmaConfig::reader(256 * 1024, 16, BurstSize::B16)
        },
    )))
    .unwrap();
    let t0 = Instant::now();
    sys.run_for(window);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (
        wall_ms,
        sys.accelerator(0).unwrap().jobs_completed(),
        sys.skipped_cycles(),
        sys.memory().stats().bytes_served,
    )
}

/// The observability probe: the quickstart scenario (two 64 KiB-per-job
/// DMAs behind a 2-port HyperConnect against `MemConfig::zcu102()`) run
/// to completion with and without the metrics registry + runtime bound
/// monitor armed — reporting the host-side cost of always-on
/// observability and the bound monitor's verdict on real traffic.
fn observed_probe(observe: bool) -> (f64, Cycle, Option<BoundReport>) {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.memory_mut().fill_pattern(0x1000_0000, 64 * 1024);
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(2)), memory);
    if observe {
        sys.enable_observability();
    }
    for (name, src, dst) in [
        ("dma0", 0x1000_0000u64, 0x2000_0000u64),
        ("dma1", 0x3000_0000, 0x3800_0000),
    ] {
        sys.add_accelerator(Box::new(Dma::new(
            name,
            DmaConfig {
                src_base: src,
                dst_base: dst,
                read_bytes: 64 * 1024,
                write_bytes: 64 * 1024,
                jobs: Some(8),
                ..DmaConfig::case_study()
            },
        )))
        .unwrap();
    }
    let t0 = Instant::now();
    let outcome = sys.run_until_done(10_000_000);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.is_done(), "observability probe did not finish");
    (wall_ms, sys.now(), sys.interconnect_ref().bound_report())
}

/// The QoS regulation probe: the mixed-criticality scenario from the
/// `qos_regulation` example (a hard-RT periodic victim plus three
/// free-running greedy DMA readers on a 4-port HyperConnect) run bare
/// and with per-port credit regulators programmed over AXI-Lite —
/// reporting the host-side cost of the regulation hot path, the total
/// throttle events, and the tightened-bound verdict on real traffic.
fn qos_probe(regulate: bool, window: Cycle) -> (f64, u64, u64, u64, u64, usize) {
    const BASE: u64 = 0xA000_0000;
    let hc = HyperConnect::new(HcConfig::new(4));
    let mut bus = LiteBus::new();
    bus.map(BASE, 0x1000, hc.regs().clone());
    let drv = HcDriver::probe(&bus, BASE).expect("HyperConnect at BASE");
    if regulate {
        drv.set_regulation_window(256).unwrap();
        for port in 1..4 {
            drv.set_rate(port, 2).unwrap();
            drv.set_reg_burst(port, 2).unwrap();
            drv.set_out_cap(port, 2).unwrap();
        }
    }
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.enable_observability();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        200,
    )))
    .unwrap();
    for i in 0..3u64 {
        sys.add_accelerator(Box::new(Dma::new(
            format!("swarm{i}"),
            DmaConfig {
                src_base: 0x3000_0000 + i * 0x0100_0000,
                jobs: None,
                ..DmaConfig::reader(256 * 1024, 16, BurstSize::B16)
            },
        )))
        .unwrap();
    }
    let t0 = Instant::now();
    sys.run_for(window);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let throttle: u64 = (1..4)
        .map(|p| u64::from(drv.throttle_events(p).unwrap()))
        .sum();
    let mon = sys
        .interconnect_ref()
        .bound_monitor()
        .expect("observability armed");
    (
        wall_ms,
        sys.accelerator(0).unwrap().jobs_completed(),
        throttle,
        mon.read_bound(),
        mon.port_read_bound(0),
        mon.violations().len(),
    )
}

/// The snapshot probe: the stress topology (four mixed masters — two
/// random-traffic generators, a greedy stealer and the case-study DMA —
/// behind a 4-port HyperConnect with the protocol monitor armed) frozen
/// after `window` cycles. Reports the `hcsim-snapshot/v1` image size,
/// the save and restore wall times, and whether the round-trip is
/// canonical (a restored system re-saves to byte-identical bytes).
fn snapshot_probe(window: Cycle) -> (f64, f64, usize, bool) {
    fn build() -> SocSystem<HyperConnect> {
        let mut memory = MemoryController::new(MemConfig::zcu102());
        memory.attach_monitor();
        let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(4)), memory);
        sys.add_accelerator(Box::new(RandomTraffic::new(
            "rnd0",
            0x1000_0000,
            1 << 20,
            BurstSize::B16,
            64,
            10,
            1,
        )))
        .unwrap();
        sys.add_accelerator(Box::new(BandwidthStealer::new(
            "steal",
            0x3000_0000,
            1 << 20,
            256,
            BurstSize::B16,
        )))
        .unwrap();
        sys.add_accelerator(Box::new(RandomTraffic::new(
            "rnd1",
            0x5000_0000,
            1 << 20,
            BurstSize::B4,
            32,
            50,
            2,
        )))
        .unwrap();
        sys.add_accelerator(Box::new(Dma::new("dma", DmaConfig::case_study())))
            .unwrap();
        sys
    }
    let mut sys = build();
    sys.run_for(window);
    let t0 = Instant::now();
    let bytes = sys.snapshot_bytes();
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut restored = build();
    let t1 = Instant::now();
    restored
        .restore_snapshot_bytes(&bytes)
        .expect("stress snapshot restores into a fresh build");
    let restore_ms = t1.elapsed().as_secs_f64() * 1e3;
    let roundtrip = restored.now() == window && restored.snapshot_bytes() == bytes;
    (save_ms, restore_ms, bytes.len(), roundtrip)
}

fn json_points(points: &[PointResult]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":\"{}\",\"wall_ms\":{:.3},\"sim_cycles\":{},\"cycles_per_sec\":{:.0}}}",
                p.name,
                p.wall_ms,
                p.cycles,
                p.cycles as f64 / (p.wall_ms / 1e3).max(1e-9)
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_simulator.json".to_string();
    let mut floor: f64 = 0.0;
    let mut mode = "default";
    let mut workers_override: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => mode = "quick",
            "--full" => mode = "full",
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--workers" => {
                i += 1;
                workers_override = Some(args[i].parse().expect("numeric worker count"));
            }
            "--min-cycles-per-sec" => {
                i += 1;
                floor = args[i].parse().expect("numeric floor");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let pool_workers = workers_override.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
    });
    let (window, repeats, idle_window, tree_cycles): (Cycle, u64, Cycle, Cycle) = match mode {
        "quick" => (1_000_000, 2, 2_000_000, 150_000),
        "full" => (
            fig4::DEFAULT_WINDOW,
            5,
            20_000_000,
            2 * tree100::DEFAULT_CYCLES,
        ),
        _ => (3_000_000, 3, 5_000_000, tree100::DEFAULT_CYCLES),
    };

    // 1. Fig. 3(a) goldens — fail fast on a warped pipeline.
    let t0 = Instant::now();
    let lat = fig3a::measure(Design::HyperConnect);
    let fig3a_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let goldens_ok = (lat.d_ar, lat.d_aw, lat.d_r, lat.d_w, lat.d_b) == (4, 4, 2, 2, 2);
    println!(
        "fig3a: d_AR={} d_AW={} d_R={} d_W={} d_B={} ({})",
        lat.d_ar,
        lat.d_aw,
        lat.d_r,
        lat.d_w,
        lat.d_b,
        if goldens_ok { "golden" } else { "REGRESSED" }
    );

    // 2. Idle-heavy probe, naive vs fast-forward.
    let (naive_ms, naive_jobs, _, naive_bytes) = idle_heavy(SchedulerMode::Naive, idle_window);
    let (ff_ms, ff_jobs, skipped, ff_bytes) = idle_heavy(SchedulerMode::FastForward, idle_window);
    assert_eq!(
        (naive_jobs, naive_bytes),
        (ff_jobs, ff_bytes),
        "schedulers diverged on the idle-heavy probe"
    );
    let speedup = naive_ms / ff_ms.max(1e-9);
    let ff_cps = idle_window as f64 / (ff_ms / 1e3).max(1e-9);
    let naive_cps = idle_window as f64 / (naive_ms / 1e3).max(1e-9);
    println!(
        "idle-heavy ({idle_window} cycles): naive {naive_ms:.1} ms ({naive_cps:.2e} c/s) \
         vs fast-forward {ff_ms:.1} ms ({ff_cps:.2e} c/s) — {speedup:.1}x, {skipped} skipped"
    );

    // 3. Observability probe: instrumented vs bare run of the same
    // scenario, plus the runtime bound monitor's verdict.
    let (base_ms, _, _) = observed_probe(false);
    let (obs_ms, obs_cycles, report) = observed_probe(true);
    let report = report.expect("observability armed");
    let obs_overhead = obs_ms / base_ms.max(1e-9);
    println!(
        "observability ({obs_cycles} cycles): bare {base_ms:.1} ms vs observed {obs_ms:.1} ms \
         ({obs_overhead:.2}x), {} reads / {} writes checked, {} violations",
        report.checked_reads, report.checked_writes, report.violations
    );

    // 3b. Allocation probe: the contended Fig. 3(b) point (HyperConnect,
    // 4 MiB — a DMA reader saturating the R channel back-to-back) run
    // serially under the counting allocator. Each run builds a fresh
    // system, so the count includes construction and ring growth to
    // working occupancy; amortized over the ~1 M simulated cycles a
    // zero-alloc steady state shows up as allocs_per_sim_cycle << 1.
    let probe_bytes = *fig3b::SIZES.last().expect("fig3b has sizes");
    let alloc_probe_json = match alloc_count() {
        Some(before) => {
            let (_, mean) = fig3b::access_stats(Design::HyperConnect, probe_bytes, 1);
            let probe_cycles = mean.max(1.0) as u64;
            let allocs = alloc_count().expect("counter armed") - before;
            let per_cycle = allocs as f64 / probe_cycles as f64;
            println!(
                "alloc probe (fig3b HyperConnect_{probe_bytes}B): {allocs} allocs over \
                 {probe_cycles} cycles = {per_cycle:.4} allocs/sim-cycle"
            );
            format!(
                "{{\"enabled\":true,\"scenario\":\"fig3b HyperConnect_{probe_bytes}B, serial\",\
                 \"allocs\":{allocs},\"sim_cycles\":{probe_cycles},\
                 \"allocs_per_sim_cycle\":{per_cycle:.6}}}"
            )
        }
        None => "{\"enabled\":false}".to_string(),
    };

    // 3c. QoS regulation probe: the mixed-criticality scenario bare vs
    // with per-port credit regulators armed, reporting the host-side
    // cost of the regulation hot path and the tightened-bound verdict.
    let qos_window: Cycle = match mode {
        "quick" => 60_000,
        "full" => 400_000,
        _ => 200_000,
    };
    let (qos_bare_ms, qos_bare_jobs, _, _, _, qos_bare_violations) = qos_probe(false, qos_window);
    let (qos_reg_ms, qos_reg_jobs, qos_throttle, qos_global, qos_bound, qos_violations) =
        qos_probe(true, qos_window);
    let qos_overhead = qos_reg_ms / qos_bare_ms.max(1e-9);
    let qos_cps = qos_window as f64 / (qos_reg_ms / 1e3).max(1e-9);
    println!(
        "qos ({qos_window} cycles): bare {qos_bare_ms:.1} ms vs regulated {qos_reg_ms:.1} ms \
         ({qos_overhead:.2}x, {qos_cps:.2e} c/s), victim bound {qos_global} -> {qos_bound}, \
         {qos_throttle} throttle events, {qos_violations} violations"
    );

    // 3d. Snapshot probe: freeze the stress topology mid-run, time the
    // hcsim-snapshot/v1 save and the restore into a fresh build, and
    // verify the round-trip is canonical.
    let snap_window = qos_window;
    let (snap_save_ms, snap_restore_ms, snap_bytes, snap_roundtrip) = snapshot_probe(snap_window);
    println!(
        "snapshot (stress @ {snap_window} cycles): {snap_bytes} B, save {snap_save_ms:.2} ms, \
         restore {snap_restore_ms:.2} ms{}",
        if snap_roundtrip {
            ""
        } else {
            " — ROUND-TRIP DIVERGED"
        }
    );

    // 4. Figure sweeps on the parallel runner.
    let mut fig3b_points: Vec<Point> = Vec::new();
    for design in Design::BOTH {
        for bytes in fig3b::SIZES {
            fig3b_points.push(Point {
                name: format!("{}_{}B", design.name(), bytes),
                run: Box::new(move || {
                    let (_, mean) = fig3b::access_stats(design, bytes, repeats);
                    (mean * repeats as f64) as u64
                }),
            });
        }
    }
    let fig3b_report = run_parallel("fig3b", "default", pool_workers, fig3b_points);

    let mut fig4_points: Vec<Point> = Vec::new();
    for design in Design::BOTH {
        fig4_points.push(Point {
            name: format!("chaidnn_{}", design.name()),
            run: Box::new(move || {
                fig4::chaidnn_isolation(design, window);
                window
            }),
        });
        fig4_points.push(Point {
            name: format!("dma_{}", design.name()),
            run: Box::new(move || {
                fig4::dma_isolation(design, window);
                window
            }),
        });
    }
    let fig4_report = run_parallel("fig4", "default", pool_workers, fig4_points);

    // The Fig. 5 sweep runs its systems under the sharded dispatch
    // path (exact single-shard fallback — the bars are unchanged).
    let fig5_mode = SchedulerMode::Sharded {
        workers: pool_workers.max(2),
    };
    let mut fig5_points: Vec<Point> = vec![
        Point {
            name: "isolation".into(),
            run: Box::new(move || {
                fig5::isolation_mode(window, fig5_mode);
                2 * window
            }),
        },
        Point {
            name: "sc_contention".into(),
            run: Box::new(move || {
                fig5::smartconnect_contention_mode(window, fig5_mode);
                window
            }),
        },
    ];
    for share in fig5::SHARES {
        fig5_points.push(Point {
            name: format!("hc_{share}_{}", 100 - share),
            run: Box::new(move || {
                fig5::hyperconnect_contention_mode(share, window, fig5_mode);
                window
            }),
        });
    }
    let fig5_report = run_parallel("fig5", "sharded", pool_workers, fig5_points);

    for report in [&fig3b_report, &fig4_report, &fig5_report] {
        println!(
            "{}: {} points on {} workers ({}), {:.1} ms parallel ({:.1} ms serial-sum, {:.2}x), \
             {:.2e} cycles/s",
            report.figure,
            report.points.len(),
            report.workers,
            report.scheduler,
            report.wall_ms_parallel,
            report.wall_ms_serial_sum(),
            report.wall_ms_serial_sum() / report.wall_ms_parallel.max(1e-9),
            report.cycles_per_sec()
        );
    }

    // 5. The 100-node tree: sequential fast-forward oracle, then the
    // sharded executor at a worker sweep, byte-identity enforced.
    let tree_seq = tree100::run(SchedulerMode::FastForward, tree_cycles);
    let seq_cps = tree_cycles as f64 / (tree_seq.wall_ms / 1e3).max(1e-9);
    println!(
        "tree100 ({} nodes, {tree_cycles} cycles): sequential {:.1} ms ({seq_cps:.2e} c/s, \
         {} skipped)",
        tree100::node_count(),
        tree_seq.wall_ms,
        tree_seq.skipped
    );
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if let Some(w) = workers_override {
        if !sweep.contains(&w) {
            sweep.push(w);
        }
    }
    let mut tree_runs: Vec<(usize, tree100::TreeRun)> = Vec::new();
    let mut tree_identical = true;
    for &workers in &sweep {
        let run = tree100::run(SchedulerMode::Sharded { workers }, tree_cycles);
        let rep = run.report.expect("sharded run reports");
        let identical = run.fingerprint == tree_seq.fingerprint && rep.ambiguous_stalls == 0;
        tree_identical &= identical;
        println!(
            "tree100 sharded w={workers}: {:.1} ms ({:.2}x), {} shards, window {}, \
             {} rounds, {} engine-skipped, {} msgs, {} stalls{}",
            run.wall_ms,
            tree_seq.wall_ms / run.wall_ms.max(1e-9),
            rep.shards,
            rep.window,
            rep.rounds,
            rep.engine_skipped,
            rep.messages,
            rep.ambiguous_stalls,
            if identical { "" } else { " — DIVERGED" }
        );
        tree_runs.push((workers, run));
    }
    let (tree_workers, tree_best) = tree_runs
        .iter()
        .filter(|(w, _)| *w >= 2)
        .min_by(|a, b| a.1.wall_ms.total_cmp(&b.1.wall_ms))
        .map(|(w, r)| (*w, r.wall_ms))
        .expect("sweep includes a multi-worker run");
    let tree_speedup = tree_seq.wall_ms / tree_best.max(1e-9);
    let workers = pool_workers.max(tree_workers);

    // 6. Emit BENCH_simulator.json.
    let figures_json = [&fig3b_report, &fig4_report, &fig5_report]
        .iter()
        .map(|r| {
            format!(
                "{{\"figure\":\"{}\",\"scheduler\":\"{}\",\"workers\":{},\
                 \"wall_ms_parallel\":{:.3},\"wall_ms_serial_sum\":{:.3},\
                 \"parallel_speedup\":{:.3},\"sim_cycles\":{},\"cycles_per_sec\":{:.0},\
                 \"peak_rss_kb_after\":{},\"points\":[{}]}}",
                r.figure,
                r.scheduler,
                r.workers,
                r.wall_ms_parallel,
                r.wall_ms_serial_sum(),
                r.wall_ms_serial_sum() / r.wall_ms_parallel.max(1e-9),
                r.sim_cycles(),
                r.cycles_per_sec(),
                r.peak_rss_kb_after,
                json_points(&r.points)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let tree_sharded_json = tree_runs
        .iter()
        .map(|(w, r)| {
            let rep = r.report.expect("sharded run reports");
            format!(
                "{{\"workers\":{w},\"wall_ms\":{:.3},\"shards\":{},\"window\":{},\
                 \"rounds\":{},\"engine_skipped\":{},\"messages\":{},\
                 \"ambiguous_stalls\":{},\"byte_identical\":{}}}",
                r.wall_ms,
                rep.shards,
                rep.window,
                rep.rounds,
                rep.engine_skipped,
                rep.messages,
                rep.ambiguous_stalls,
                r.fingerprint == tree_seq.fingerprint
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let obs_report = report.to_json();
    let json = format!(
        "{{\n\
         \"schema\":\"axi-hyperconnect/bench-simulator/v1\",\n\
         \"mode\":\"{mode}\",\n\
         \"workers\":{workers},\n\
         \"fig3a\":{{\"wall_ms\":{fig3a_wall_ms:.3},\"goldens_ok\":{goldens_ok}}},\n\
         \"idle_heavy\":{{\"scenario\":\"single 256 KiB x4 DMA reader vs zcu102, {idle_window}-cycle window\",\
         \"sim_cycles\":{idle_window},\
         \"naive_wall_ms\":{naive_ms:.3},\"naive_cycles_per_sec\":{naive_cps:.0},\
         \"fast_forward_wall_ms\":{ff_ms:.3},\"fast_forward_cycles_per_sec\":{ff_cps:.0},\
         \"skipped_cycles\":{skipped},\"speedup\":{speedup:.2}}},\n\
         \"observability\":{{\"scenario\":\"quickstart 2x8 64 KiB DMA jobs vs zcu102, run to completion\",\
         \"sim_cycles\":{obs_cycles},\
         \"bare_wall_ms\":{base_ms:.3},\"observed_wall_ms\":{obs_ms:.3},\
         \"overhead\":{obs_overhead:.3},\"bound_monitor\":{obs_report}}},\n\
         \"alloc_probe\":{alloc_probe_json},\n\
         \"qos\":{{\"scenario\":\"hard-RT victim + 3 greedy DMA readers on 4 ports, \
         {qos_window}-cycle window, swarm regulated to 2 credits / 256 cycles, 2 outstanding\",\
         \"sim_cycles\":{qos_window},\
         \"bare_wall_ms\":{qos_bare_ms:.3},\"regulated_wall_ms\":{qos_reg_ms:.3},\
         \"regulated_cycles_per_sec\":{qos_cps:.0},\"overhead\":{qos_overhead:.3},\
         \"victim_jobs_bare\":{qos_bare_jobs},\"victim_jobs_regulated\":{qos_reg_jobs},\
         \"throttle_events\":{qos_throttle},\
         \"victim_bound_unregulated\":{qos_global},\"victim_bound_tightened\":{qos_bound},\
         \"bound_violations\":{qos_violations}}},\n\
         \"snapshot\":{{\"scenario\":\"stress 4-master topology frozen after {snap_window} \
         cycles, saved + restored into a fresh build\",\
         \"bytes\":{snap_bytes},\"save_wall_ms\":{snap_save_ms:.3},\
         \"restore_wall_ms\":{snap_restore_ms:.3},\
         \"roundtrip_byte_identical\":{snap_roundtrip}}},\n\
         \"figures\":[{figures_json}],\n\
         \"tree100\":{{\"scenario\":\"{} nodes: 1 busy + 6 periodic clusters behind latency-{} \
         bridges, {tree_cycles}-cycle window\",\
         \"nodes\":{},\"sim_cycles\":{tree_cycles},\
         \"sequential_wall_ms\":{:.3},\"sequential_cycles_per_sec\":{seq_cps:.0},\
         \"sequential_skipped\":{},\
         \"workers\":{tree_workers},\"parallel_speedup\":{tree_speedup:.3},\
         \"speedup_basis\":\"sequential fast-forward oracle wall time over best sharded wall \
         time at >= 2 workers; on few-core hosts the gain is the sharded executor's decoupled \
         per-shard fast-forward, not thread throughput\",\
         \"sharded\":[{tree_sharded_json}]}},\n\
         \"peak_rss_kb\":{}\n\
         }}\n",
        tree100::node_count(),
        tree100::BRIDGE_LATENCY,
        tree100::node_count(),
        tree_seq.wall_ms,
        tree_seq.skipped,
        peak_rss_kb()
    );
    std::fs::write(&out_path, json).expect("write BENCH_simulator.json");
    println!("wrote {out_path}");

    // 7. Gates.
    if !goldens_ok {
        eprintln!("FAIL: Fig. 3(a) channel-latency goldens regressed");
        std::process::exit(1);
    }
    if !tree_identical {
        eprintln!("FAIL: a sharded tree100 run diverged from the sequential oracle");
        std::process::exit(1);
    }
    if report.violations > 0 {
        eprintln!(
            "FAIL: runtime bound monitor recorded {} violations (worst read {} vs bound {}, \
             worst write {} vs bound {})",
            report.violations,
            report.worst_read,
            report.read_bound,
            report.worst_write,
            report.write_bound
        );
        std::process::exit(1);
    }
    if qos_bare_violations + qos_violations > 0 || qos_bound >= qos_global || qos_throttle == 0 {
        eprintln!(
            "FAIL: QoS probe regressed — {qos_bare_violations}+{qos_violations} bound \
             violations, victim bound {qos_global} -> {qos_bound}, {qos_throttle} throttle events"
        );
        std::process::exit(1);
    }
    if !snap_roundtrip {
        eprintln!("FAIL: snapshot probe round-trip was not byte-identical");
        std::process::exit(1);
    }
    if floor > 0.0 && ff_cps < floor {
        eprintln!(
            "FAIL: fast-forward idle-heavy throughput {ff_cps:.0} c/s below floor {floor:.0}"
        );
        std::process::exit(1);
    }
}
