//! Regenerates Table I: resource consumption on the ZCU102.

use bench::report::render_table;

fn main() {
    println!("Table I — resource consumption (two-input instances, ZCU102)\n");
    let rows: Vec<Vec<String>> = bench::table1::run()
        .iter()
        .map(|row| {
            vec![
                row.design.to_string(),
                format!(
                    "{} ({:.1}%)",
                    row.modeled.lut,
                    100.0 * row.modeled.lut_fraction()
                ),
                format!(
                    "{} ({:.1}%)",
                    row.modeled.ff,
                    100.0 * row.modeled.ff_fraction()
                ),
                row.modeled.bram.to_string(),
                row.modeled.dsp.to_string(),
                format!("{} / {}", row.paper.lut, row.paper.ff),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "design",
                "LUT (274080)",
                "FF (548160)",
                "BRAM",
                "DSP",
                "paper LUT/FF"
            ],
            &rows
        )
    );
    println!("\nmodeled by the analytical area model in `resources` (see DESIGN.md).");
    // Per-module breakdown of the HyperConnect.
    println!("\nHyperConnect per-module breakdown (raw structural counts):");
    let report = resources::hyperconnect(resources::ModelParams::default());
    for (module, r) in &report.breakdown {
        println!("  {module:<16} {:>5} LUT  {:>5} FF", r.lut, r.ff);
    }
}
