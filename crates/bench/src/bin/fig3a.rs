//! Regenerates Fig. 3(a): per-channel propagation latency.

use bench::report::{improvement_percent, render_table};

fn main() {
    let f = bench::fig3a::run();
    let rows: Vec<Vec<String>> = [
        ("AR", f.hc.d_ar, f.sc.d_ar, 66.0),
        ("AW", f.hc.d_aw, f.sc.d_aw, 66.0),
        ("R", f.hc.d_r, f.sc.d_r, 82.0),
        ("W", f.hc.d_w, f.sc.d_w, 33.0),
        ("B", f.hc.d_b, f.sc.d_b, 0.0),
    ]
    .iter()
    .map(|&(ch, hc, sc, paper)| {
        vec![
            ch.to_string(),
            hc.to_string(),
            sc.to_string(),
            format!("{:.0}%", improvement_percent(sc as f64, hc as f64)),
            format!("{paper:.0}%"),
        ]
    })
    .collect();
    println!("Fig. 3(a) — propagation latency per AXI channel (cycles)\n");
    print!(
        "{}",
        render_table(
            &[
                "channel",
                "HyperConnect",
                "SmartConnect",
                "improvement",
                "paper"
            ],
            &rows
        )
    );
    println!(
        "\nread transaction (AR+R):   {} vs {} cycles ({:.0}% better; paper: 74%)",
        f.hc.read_total(),
        f.sc.read_total(),
        improvement_percent(f.sc.read_total() as f64, f.hc.read_total() as f64)
    );
    println!(
        "write transaction (AW+W+B): {} vs {} cycles ({:.0}% better; paper: 41%)",
        f.hc.write_total(),
        f.sc.write_total(),
        improvement_percent(f.sc.write_total() as f64, f.hc.write_total() as f64)
    );
}
