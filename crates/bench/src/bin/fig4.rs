//! Regenerates Fig. 4: isolation performance of CHaiDNN and `HA_DMA`.

use bench::report::render_table;

fn main() {
    println!("Fig. 4 — performance in isolation (no contention)\n");
    let rows: Vec<Vec<String>> = bench::fig4::run()
        .iter()
        .map(|row| {
            vec![
                row.name.to_string(),
                format!("{:.1}", row.hc_rate),
                format!("{:.1}", row.sc_rate),
                format!("{:.3}", row.ratio()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["accelerator", "HyperConnect", "SmartConnect", "HC/SC"],
            &rows
        )
    );
    println!("\npaper: no performance degradation with the HyperConnect (ratio = 1).");
}
