//! Regenerates Fig. 3(b): maximum memory access time vs data size.

use bench::report::{human_bytes, render_table};

fn main() {
    println!("Fig. 3(b) — maximum memory access time (cycles; 16-word bursts)\n");
    let rows_data = bench::fig3b::run();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            vec![
                human_bytes(row.bytes),
                row.hc_cycles.to_string(),
                row.sc_cycles.to_string(),
                format!("{:.0}%", row.improvement_percent()),
                format!("{:.1}%", 100.0 * row.mean_max_gap()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["data", "HC max", "SC max", "improvement", "mean/max gap"],
            &rows
        )
    );
    println!(
        "\npaper: 28% (single word), 25% (16-word burst), comparable\n\
         throughput on 16 KiB and 4 MiB; averages within 5% of maxima."
    );
}
