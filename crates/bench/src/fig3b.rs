//! Fig. 3(b): maximum memory access time versus amount of data.
//!
//! Paper reference (ZCU102): with the HyperConnect, response times for
//! single-word (4 B) and 16-word-burst (64 B) accesses improve by 28%
//! and 25% respectively over the SmartConnect, while the throughput on
//! 16 KiB (256 bursts) and 4 MiB (65536 bursts) transfers is the same
//! (the interconnect latency is amortized by pipelining).
//!
//! The experiment issues a DMA read of each size through each design
//! into the modeled ZCU102 memory and records the completion time from
//! first request to last data beat, repeating each access several times
//! and keeping the maximum (the paper reports maxima; averages differ
//! by less than 5%).

use axi::types::BurstSize;
use ha::dma::{Dma, DmaConfig};
use sim::Cycle;

use crate::{make_system, Design};

/// The data sizes of the paper's sweep.
pub const SIZES: [u64; 4] = [4, 64, 16 << 10, 4 << 20];

/// Result row: one data size, both designs.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Max completion cycles through the HyperConnect.
    pub hc_cycles: Cycle,
    /// Max completion cycles through the SmartConnect.
    pub sc_cycles: Cycle,
    /// Mean completion cycles through the HyperConnect.
    pub hc_mean: f64,
    /// Mean completion cycles through the SmartConnect.
    pub sc_mean: f64,
}

impl Row {
    /// Percent improvement of the HyperConnect over the SmartConnect.
    pub fn improvement_percent(&self) -> f64 {
        crate::report::improvement_percent(self.sc_cycles as f64, self.hc_cycles as f64)
    }

    /// Largest mean-to-max deviation across both designs, as a
    /// fraction — the paper reports averages differ from maxima by
    /// less than 5%.
    pub fn mean_max_gap(&self) -> f64 {
        let hc = 1.0 - self.hc_mean / self.hc_cycles.max(1) as f64;
        let sc = 1.0 - self.sc_mean / self.sc_cycles.max(1) as f64;
        hc.max(sc)
    }
}

/// Maximum access time over `repeats` accesses of `bytes` via `design`.
pub fn access_time(design: Design, bytes: u64, repeats: u64) -> Cycle {
    access_stats(design, bytes, repeats).0
}

/// `(max, mean)` access time over `repeats` accesses.
pub fn access_stats(design: Design, bytes: u64, repeats: u64) -> (Cycle, f64) {
    let mut sys = make_system(design);
    // The paper's DMAs issue 16-word (16 x 4 B) bursts.
    let cfg = DmaConfig::reader(bytes, 16, BurstSize::B4).jobs(repeats);
    sys.add_accelerator(Box::new(Dma::new("probe", cfg)))
        .unwrap();
    let out = sys.run_until_done(1_000_000_000);
    assert!(out.is_done(), "access did not complete: {out}");
    // Job latency covers issue-to-last-beat of the whole access.
    let dma: &Dma = sys
        .accelerator(0)
        .unwrap()
        .as_any()
        .downcast_ref()
        .expect("probe is a Dma");
    (
        dma.job_latency().max().expect("at least one job"),
        dma.job_latency().mean().expect("at least one job"),
    )
}

/// Runs the full sweep.
pub fn run() -> Vec<Row> {
    run_with_repeats(5)
}

/// Runs the sweep with a configurable repeat count (the big transfers
/// are deterministic; repeats mostly matter for the small ones).
pub fn run_with_repeats(repeats: u64) -> Vec<Row> {
    SIZES
        .iter()
        .map(|&bytes| {
            let (hc_cycles, hc_mean) = access_stats(Design::HyperConnect, bytes, repeats);
            let (sc_cycles, sc_mean) = access_stats(Design::SmartConnect, bytes, repeats);
            Row {
                bytes,
                hc_cycles,
                sc_cycles,
                hc_mean,
                sc_mean,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_accesses_improve_like_the_paper() {
        // Single word: paper reports 28% improvement; 16-word burst 25%.
        let (hc_cycles, hc_mean) = access_stats(Design::HyperConnect, 4, 3);
        let (sc_cycles, sc_mean) = access_stats(Design::SmartConnect, 4, 3);
        let one_word = Row {
            bytes: 4,
            hc_cycles,
            sc_cycles,
            hc_mean,
            sc_mean,
        };
        let imp = one_word.improvement_percent();
        assert!((20.0..45.0).contains(&imp), "1-word improvement {imp}%");
        let (hc_cycles, hc_mean) = access_stats(Design::HyperConnect, 64, 3);
        let (sc_cycles, sc_mean) = access_stats(Design::SmartConnect, 64, 3);
        let burst = Row {
            bytes: 64,
            hc_cycles,
            sc_cycles,
            hc_mean,
            sc_mean,
        };
        let imp = burst.improvement_percent();
        assert!((15.0..40.0).contains(&imp), "16-word improvement {imp}%");
    }

    #[test]
    fn averages_within_five_percent_of_maxima() {
        // Paper: "Average times differ by less than 5% with respect to
        // maximum times".
        for row in run_with_repeats(5) {
            if row.bytes > 4 << 20 {
                continue;
            }
            assert!(
                row.mean_max_gap() < 0.05,
                "{} B: mean/max gap {:.3}",
                row.bytes,
                row.mean_max_gap()
            );
        }
    }

    #[test]
    fn throughput_comparable_at_16kib() {
        let hc = access_time(Design::HyperConnect, 16 << 10, 1);
        let sc = access_time(Design::SmartConnect, 16 << 10, 1);
        let ratio = sc as f64 / hc as f64;
        assert!(
            (0.95..1.1).contains(&ratio),
            "16 KiB throughput must be comparable: {hc} vs {sc}"
        );
    }
}
