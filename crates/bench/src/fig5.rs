//! Fig. 5: CHaiDNN + interfering `HA_DMA` under contention, with the
//! HyperConnect's bandwidth reservation sweep (`HC-X-Y`).
//!
//! Paper reference: with the SmartConnect the greedy DMA takes most of
//! the bandwidth and CHaiDNN keeps only a small share, with no way to
//! redistribute; with the HyperConnect, assigning X% of the bandwidth
//! to CHaiDNN (X ∈ {90, 70, 50, 30, 10}) trades DNN frames for DMA
//! jobs, and `HC-90-10` brings CHaiDNN close to its isolation rate.

use axi::lite::LiteBus;
use axi_hyperconnect::SchedulerMode;
use mem::MemConfig;
use sim::Cycle;

use crate::{make_system, Design};
use ha::chaidnn::{Chaidnn, ChaidnnConfig};
use ha::dma::{Dma, DmaConfig};
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::Hypervisor;
use mem::MemoryController;

/// Default measurement window: 200 ms at 150 MHz.
pub const DEFAULT_WINDOW: Cycle = 30_000_000;

/// Reservation period used for the sweep.
pub const PERIOD: u32 = 50_000;

/// The `X` values of the paper's `HC-X-Y` bars (CHaiDNN's share).
pub const SHARES: [u32; 5] = [90, 70, 50, 30, 10];

/// One bar pair of Fig. 5.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Configuration label (`isolation`, `SC`, `HC-90-10`, ...).
    pub label: String,
    /// CHaiDNN frames per second.
    pub chaidnn_fps: f64,
    /// DMA jobs per second.
    pub dma_jobs: f64,
}

fn contended_system(design: Design) -> crate::SocSystemBoxed {
    let mut sys = make_system(design);
    sys.add_accelerator(Box::new(Chaidnn::googlenet(ChaidnnConfig::default())))
        .unwrap();
    sys.add_accelerator(Box::new(Dma::new("HA_DMA", DmaConfig::case_study())))
        .unwrap();
    sys
}

/// Contention run on the SmartConnect (no reservation possible).
pub fn smartconnect_contention(window: Cycle) -> Bar {
    smartconnect_contention_mode(window, SchedulerMode::default())
}

/// [`smartconnect_contention`] under an explicit scheduler mode.
pub fn smartconnect_contention_mode(window: Cycle, mode: SchedulerMode) -> Bar {
    let mut sys = contended_system(Design::SmartConnect);
    sys.set_scheduler(mode);
    sys.run_for(window);
    Bar {
        label: "SC".into(),
        chaidnn_fps: sys.rate_per_second(0),
        dma_jobs: sys.rate_per_second(1),
    }
}

/// Contention run on the HyperConnect with `share`% of the bandwidth
/// reserved to CHaiDNN via the hypervisor (the paper's `HC-X-Y`).
pub fn hyperconnect_contention(share: u32, window: Cycle) -> Bar {
    hyperconnect_contention_mode(share, window, SchedulerMode::default())
}

/// [`hyperconnect_contention`] under an explicit scheduler mode.
pub fn hyperconnect_contention_mode(share: u32, window: Cycle, mode: SchedulerMode) -> Bar {
    const HC_BASE: u64 = 0xA000_0000;
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let hv = Hypervisor::new(bus, HC_BASE).expect("device present");
    hv.hc().set_period(PERIOD).unwrap();
    hv.set_bandwidth_shares(
        &[share, 100 - share],
        MemConfig::zcu102().first_word_latency,
    )
    .unwrap();

    let mut sys = axi_hyperconnect::SocSystem::new(
        Box::new(hc) as Box<dyn axi::AxiInterconnect>,
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(Chaidnn::googlenet(ChaidnnConfig::default())))
        .unwrap();
    sys.add_accelerator(Box::new(Dma::new("HA_DMA", DmaConfig::case_study())))
        .unwrap();
    sys.run_for(window);
    Bar {
        label: format!("HC-{share}-{}", 100 - share),
        chaidnn_fps: sys.rate_per_second(0),
        dma_jobs: sys.rate_per_second(1),
    }
}

/// Isolation reference bar (leftmost pair of the figure).
pub fn isolation(window: Cycle) -> Bar {
    isolation_mode(window, SchedulerMode::default())
}

/// [`isolation`] under an explicit scheduler mode.
pub fn isolation_mode(window: Cycle, mode: SchedulerMode) -> Bar {
    Bar {
        label: "isolation".into(),
        chaidnn_fps: crate::fig4::chaidnn_isolation_mode(Design::HyperConnect, window, mode),
        dma_jobs: crate::fig4::dma_isolation_mode(Design::HyperConnect, window, mode),
    }
}

/// Runs the full Fig. 5 experiment: isolation, SmartConnect contention,
/// and the five `HC-X-Y` configurations.
pub fn run() -> Vec<Bar> {
    run_with_window(DEFAULT_WINDOW)
}

/// Runs with a custom measurement window.
pub fn run_with_window(window: Cycle) -> Vec<Bar> {
    let mut bars = vec![isolation(window), smartconnect_contention(window)];
    for share in SHARES {
        bars.push(hyperconnect_contention(share, window));
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Cycle = 10_000_000;

    #[test]
    fn smartconnect_contention_starves_the_dnn() {
        let iso = isolation(W);
        let sc = smartconnect_contention(W);
        assert!(
            sc.chaidnn_fps < 0.7 * iso.chaidnn_fps,
            "expected starvation: {} vs isolation {}",
            sc.chaidnn_fps,
            iso.chaidnn_fps
        );
    }

    #[test]
    fn hc_90_10_restores_near_isolation() {
        let iso = isolation(W);
        let hc90 = hyperconnect_contention(90, W);
        assert!(
            hc90.chaidnn_fps > 0.8 * iso.chaidnn_fps,
            "HC-90-10 must be close to isolation: {} vs {}",
            hc90.chaidnn_fps,
            iso.chaidnn_fps
        );
        let sc = smartconnect_contention(W);
        assert!(hc90.chaidnn_fps > sc.chaidnn_fps);
    }

    #[test]
    fn reservation_sweep_trades_fps_for_dma_jobs() {
        let bars: Vec<Bar> = [90u32, 50, 10]
            .iter()
            .map(|&s| hyperconnect_contention(s, W))
            .collect();
        // CHaiDNN fps decreases monotonically as its share shrinks...
        assert!(bars[0].chaidnn_fps > bars[1].chaidnn_fps);
        assert!(bars[1].chaidnn_fps >= bars[2].chaidnn_fps);
        // ...while the DMA picks up the released bandwidth.
        assert!(bars[2].dma_jobs > bars[0].dma_jobs);
    }
}
