//! The 100-node tree scenario: the sharded scheduler's showcase.
//!
//! Seven accelerator clusters hang off a single root HyperConnect, each
//! behind a deeply registered [`axi::AxiBridge`] (latency
//! [`BRIDGE_LATENCY`]), for 100 nodes total: 1 memory + 1 root + 7
//! cluster interconnects + 91 accelerators. Cluster 0 carries thirteen
//! random-traffic masters whose staggered bursts keep the cluster
//! active nearly every cycle — pinning the global clock so the
//! sequential schedulers can never skip — while staying below the
//! bridge's beat-per-cycle capacity (a saturated cut lives in the
//! entry gates' ambiguity band, outside the exactness envelope; the
//! paper's reservation model keeps real designs below saturation for
//! the same reason). The other six clusters carry periodic readers
//! with long, staggered idle gaps.
//!
//! That shape is exactly where conservative-lookahead sharding wins
//! even on a single core: the sequential fast-forward scheduler must
//! tick all 100 nodes every cycle (the busy cluster holds the global
//! horizon at `now + 1`), while the sharded executor ticks the busy
//! shard and fast-forwards the six idle shards *locally* inside each
//! exchange window. The speedup reported by the `perf` bin is measured
//! wall clock against the sequential fast-forward oracle, and every
//! sharded run is checked byte-identical against it.

use std::time::Instant;

use axi::types::BurstSize;
use axi::BridgeConfig;
use axi_hyperconnect::{SchedulerMode, ShardRunReport, SocTopology, TopologyBuilder};
use ha::traffic::{PeriodicReader, RandomTraffic};
use ha::Accelerator;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use sim::Cycle;

/// Clusters cascaded off the root interconnect.
pub const CLUSTERS: usize = 7;

/// Accelerators per cluster.
pub const ACCS_PER_CLUSTER: usize = 13;

/// Latency of every root→cluster bridge — and therefore the sharded
/// exchange window. Deep enough to amortize the per-round barriers.
pub const BRIDGE_LATENCY: Cycle = 32;

/// Default measurement window for the perf harness.
pub const DEFAULT_CYCLES: Cycle = 400_000;

/// Total node count of the scenario (memory + root + clusters +
/// accelerators).
pub fn node_count() -> usize {
    2 + CLUSTERS * (1 + ACCS_PER_CLUSTER)
}

/// Builds the tree under the given scheduler mode.
pub fn build(mode: SchedulerMode) -> SocTopology {
    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(CLUSTERS)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.connect_memory(root, mem).unwrap();

    let mut acc_idx = 0usize;
    for c in 0..CLUSTERS {
        let cluster = b
            .add_interconnect(
                format!("cluster{c}"),
                HyperConnect::new(HcConfig::new(ACCS_PER_CLUSTER)),
            )
            .unwrap();
        // Deep elastic staging: headroom above the default port
        // capacities so burst collisions never pin a pipe at capacity
        // (which would put the sharded entry gates in their ambiguity
        // band and void the byte-identity proof).
        let bridge = BridgeConfig {
            addr_capacity: 32,
            data_capacity: 256,
            resp_capacity: 32,
            ..BridgeConfig::wire()
        }
        .latency(BRIDGE_LATENCY);
        b.cascade_with(cluster, root, c, bridge).unwrap();
        for p in 0..ACCS_PER_CLUSTER {
            let base = 0x1000_0000 + acc_idx as u64 * 0x0020_0000;
            let name = format!("a{acc_idx}");
            let acc: Box<dyn Accelerator> = if c == 0 {
                // The busy cluster: thirteen random masters whose
                // staggered short bursts keep the shard active nearly
                // every cycle at ~0.3 beats/cycle aggregate — well
                // under the cut's 1 beat/cycle, so the bridge pipes
                // never fill.
                Box::new(RandomTraffic::new(
                    &name,
                    base,
                    1 << 19,
                    BurstSize::B16,
                    16,
                    250 + (p as u64 * 37) % 250,
                    p as u64 * 31 + 17,
                ))
            } else {
                // Idle clusters: short periodic bursts separated by
                // long, staggered gaps — the local fast-forward target.
                Box::new(PeriodicReader::new(
                    &name,
                    base,
                    1 << 19,
                    16,
                    BurstSize::B16,
                    8_000 + (acc_idx as Cycle * 211) % 3_000,
                ))
            };
            let a = b.add_accelerator(&name, acc).unwrap();
            b.attach(a, cluster, p).unwrap();
            acc_idx += 1;
        }
    }
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

/// Byte-exact digest of everything observable after a run: the clock,
/// every accelerator's job counter, the memory service counters, every
/// cluster bridge's beat counters and the full metrics snapshot.
pub fn fingerprint(topo: &mut SocTopology) -> String {
    let mut fp = format!("now={}", topo.now());
    for i in 0..topo.num_accelerators() {
        let acc = topo.accelerator(i).unwrap();
        fp.push_str(&format!(" {}={}", acc.name(), acc.jobs_completed()));
    }
    for c in 0..CLUSTERS {
        let id = topo.node_by_label(&format!("cluster{c}")).unwrap();
        let s = topo.bridge_stats(id).unwrap();
        fp.push_str(&format!(" b{c}={}/{}", s.beats_down, s.beats_up));
    }
    let mem_id = topo.node_by_label("ddr").unwrap();
    let stats = topo.memory(mem_id).unwrap().stats();
    fp.push_str(&format!(
        " mem=[{} {} {} {} {}]",
        stats.reads_served,
        stats.writes_served,
        stats.beats_served,
        stats.bytes_served,
        stats.busy_cycles,
    ));
    fp.push_str(" metrics=");
    fp.push_str(&topo.metrics_snapshot_json());
    fp
}

/// One timed run of the scenario.
#[derive(Debug, Clone)]
pub struct TreeRun {
    /// Wall-clock time of the `run_for` call.
    pub wall_ms: f64,
    /// Byte-exact state digest (see [`fingerprint`]).
    pub fingerprint: String,
    /// Cycles the scheduler fast-forwarded.
    pub skipped: Cycle,
    /// The sharded executor's report (`None` for sequential modes).
    pub report: Option<ShardRunReport>,
}

/// Builds and runs the tree for `cycles` under `mode`, returning the
/// timing and the state digest.
pub fn run(mode: SchedulerMode, cycles: Cycle) -> TreeRun {
    let mut topo = build(mode);
    let t0 = Instant::now();
    topo.run_for(cycles);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    TreeRun {
        wall_ms,
        fingerprint: fingerprint(&mut topo),
        skipped: topo.skipped_cycles(),
        report: topo.shard_run_report().copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_one_hundred_nodes_and_a_shard_per_cluster() {
        let topo = build(SchedulerMode::FastForward);
        assert_eq!(topo.num_nodes(), node_count());
        assert_eq!(node_count(), 100);
        let plan = topo.shard_plan();
        assert_eq!(plan.shards.len(), CLUSTERS + 1);
        assert_eq!(plan.window, Some(BRIDGE_LATENCY));
    }

    #[test]
    fn sharded_run_is_byte_identical_to_sequential() {
        const CYCLES: Cycle = 30_000;
        let seq = run(SchedulerMode::FastForward, CYCLES);
        for workers in [2, 4] {
            let sh = run(SchedulerMode::Sharded { workers }, CYCLES);
            assert_eq!(seq.fingerprint, sh.fingerprint, "workers={workers}");
            let rep = sh.report.expect("sharded run reports");
            assert_eq!(rep.ambiguous_stalls, 0);
            assert_eq!(rep.window, BRIDGE_LATENCY);
        }
    }
}
