//! Fig. 4: CHaiDNN and `HA_DMA` performance *in isolation* under both
//! interconnects.
//!
//! Paper reference: no performance degradation when using the
//! HyperConnect with respect to the SmartConnect — each accelerator,
//! running alone, achieves the same rate per second through either
//! design (the HyperConnect's latency advantage is negligible against
//! whole-workload runtimes; its equalization does not reduce
//! throughput).

use axi_hyperconnect::SchedulerMode;
use sim::Cycle;

use crate::{make_system, Design};
use ha::chaidnn::{Chaidnn, ChaidnnConfig};
use ha::dma::{Dma, DmaConfig};

/// Default measurement window: 200 ms at 150 MHz.
pub const DEFAULT_WINDOW: Cycle = 30_000_000;

/// One accelerator's isolation rates under both designs.
#[derive(Debug, Clone, Copy)]
pub struct IsolationRow {
    /// Accelerator label.
    pub name: &'static str,
    /// Rate per second through the HyperConnect.
    pub hc_rate: f64,
    /// Rate per second through the SmartConnect.
    pub sc_rate: f64,
}

impl IsolationRow {
    /// `hc_rate / sc_rate` — the paper expects ≈ 1.0.
    pub fn ratio(&self) -> f64 {
        self.hc_rate / self.sc_rate.max(1e-12)
    }
}

/// CHaiDNN frames/s alone on `design` over `window` cycles.
pub fn chaidnn_isolation(design: Design, window: Cycle) -> f64 {
    chaidnn_isolation_mode(design, window, SchedulerMode::default())
}

/// [`chaidnn_isolation`] under an explicit scheduler mode.
pub fn chaidnn_isolation_mode(design: Design, window: Cycle, mode: SchedulerMode) -> f64 {
    let mut sys = make_system(design);
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(Chaidnn::googlenet(ChaidnnConfig::default())))
        .unwrap();
    sys.run_for(window);
    sys.rate_per_second(0)
}

/// DMA jobs/s (4 MiB in + 4 MiB out per job) alone on `design`.
pub fn dma_isolation(design: Design, window: Cycle) -> f64 {
    dma_isolation_mode(design, window, SchedulerMode::default())
}

/// [`dma_isolation`] under an explicit scheduler mode.
pub fn dma_isolation_mode(design: Design, window: Cycle, mode: SchedulerMode) -> f64 {
    let mut sys = make_system(design);
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(Dma::new("HA_DMA", DmaConfig::case_study())))
        .unwrap();
    sys.run_for(window);
    sys.rate_per_second(0)
}

/// Runs the full Fig. 4 experiment.
pub fn run() -> Vec<IsolationRow> {
    run_with_window(DEFAULT_WINDOW)
}

/// Runs with a custom measurement window.
pub fn run_with_window(window: Cycle) -> Vec<IsolationRow> {
    vec![
        IsolationRow {
            name: "CHaiDNN (fps)",
            hc_rate: chaidnn_isolation(Design::HyperConnect, window),
            sc_rate: chaidnn_isolation(Design::SmartConnect, window),
        },
        IsolationRow {
            name: "HA_DMA (jobs/s)",
            hc_rate: dma_isolation(Design::HyperConnect, window),
            sc_rate: dma_isolation(Design::SmartConnect, window),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_rates_match_across_designs() {
        // A shorter window keeps the test fast; rates are per-second so
        // the comparison is window-independent once a few jobs land.
        let rows = run_with_window(8_000_000);
        for row in &rows {
            assert!(row.hc_rate > 0.0, "{} idle on HyperConnect", row.name);
            assert!(row.sc_rate > 0.0, "{} idle on SmartConnect", row.name);
            let ratio = row.ratio();
            assert!(
                (0.9..1.15).contains(&ratio),
                "{}: isolation ratio {ratio} (hc {} vs sc {})",
                row.name,
                row.hc_rate,
                row.sc_rate
            );
        }
    }
}
