//! Table I: resource consumption of the two-input instances on the
//! ZCU102.
//!
//! Paper reference: HyperConnect 3020 LUT (1.1%) / 1289 FF (0.3%) /
//! 0 BRAM / 0 DSP; SmartConnect 3785 LUT (1.4%) / 7137 FF (1.3%) /
//! 0 / 0. (The paper's printed "11%"/"14%" LUT shares are typos for
//! 1.1%/1.4% against the 274080 LUTs it lists.) This reproduction uses
//! the analytical area model of the `resources` crate, calibrated to
//! these values; its *shape* claims (fewer LUTs, far fewer FFs, no
//! BRAM/DSP) come from the model structure.

use resources::{hyperconnect, smartconnect, table1, ModelParams, Resources};

/// One row of the table: a design's modeled and paper-reported numbers.
#[derive(Debug, Clone)]
pub struct Row {
    /// Design name.
    pub design: &'static str,
    /// Modeled resources.
    pub modeled: Resources,
    /// The paper's measured values.
    pub paper: Resources,
}

/// Regenerates Table I for the default two-port, 128-bit instances.
pub fn run() -> Vec<Row> {
    let params = ModelParams::default();
    vec![
        Row {
            design: "HyperConnect",
            modeled: hyperconnect(params).total,
            paper: table1::HYPERCONNECT,
        },
        Row {
            design: "SmartConnect",
            modeled: smartconnect(params).total,
            paper: table1::SMARTCONNECT,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_within_2_percent() {
        for row in run() {
            let lut_err = row.modeled.lut.abs_diff(row.paper.lut) as f64 / row.paper.lut as f64;
            let ff_err = row.modeled.ff.abs_diff(row.paper.ff) as f64 / row.paper.ff as f64;
            assert!(lut_err < 0.02, "{}: LUT error {lut_err}", row.design);
            assert!(ff_err < 0.02, "{}: FF error {ff_err}", row.design);
            assert_eq!(row.modeled.bram, row.paper.bram);
            assert_eq!(row.modeled.dsp, row.paper.dsp);
        }
    }

    #[test]
    fn hyperconnect_leaner_than_smartconnect() {
        let rows = run();
        assert!(rows[0].modeled.lut < rows[1].modeled.lut);
        assert!(rows[0].modeled.ff * 4 < rows[1].modeled.ff);
    }
}
