//! The deterministic per-case RNG behind the [`proptest!`] macro.
//!
//! [`proptest!`]: crate::proptest

/// A self-contained xoshiro256++ generator seeded per test case.
///
/// Unlike upstream proptest's OS-seeded runner, every case index maps
/// to a fixed seed, so a failing case number is enough to reproduce it.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for test case number `case`.
    pub fn deterministic(case: u64) -> Self {
        // Golden-ratio offset decorrelates neighbouring case indices.
        let mut s = case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CAFE_F00D_D00D;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// One raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        self.state = [n0, n1, n2, n3.rotate_left(45)];
        result
    }

    /// An unbiased uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::deterministic(3);
        let mut b = TestRng::deterministic(3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn neighbouring_cases_decorrelate() {
        let mut a = TestRng::deterministic(0);
        let mut b = TestRng::deterministic(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::deterministic(9);
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
