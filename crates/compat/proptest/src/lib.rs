//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, dependency-free re-implementation of
//! the proptest API subset its tests use: `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Strategy` with `prop_map`/`prop_flat_map`, `Just`,
//! `any`, ranges, tuples and `collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! - generation is **deterministic**: case `i` of every test draws from
//!   a fixed per-case seed, so failures reproduce without a persistence
//!   file (`proptest-regressions` files are kept but unused);
//! - there is **no shrinking**: a failing case reports its panic as-is.

pub mod test_runner;

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// returns for it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            S: Strategy,
            F: Fn(Self::Value) -> S + Clone,
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of a strategy, for [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let next = (self.f)(self.inner.generate(rng));
            next.generate(rng)
        }
    }

    /// Uniform choice among type-erased alternatives — what
    /// [`prop_oneof!`](crate::prop_oneof) builds.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Self {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + rng.below(span + 1) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for full-domain strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy over the whole domain of `T` — see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($ty:ty),*) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for [`vec()`]: a fixed length or a range.
    pub trait SizeRange: Clone {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration: the subset of upstream's knobs the workspace
/// uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, running each body over `config.cases` deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_case_rng =
                    $crate::test_runner::TestRng::deterministic(case as u64);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_case_rng,
                    );
                )+
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4, "y = {}", y);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..5).prop_map(|n| n * 2), 1..8),
            k in prop_oneof![Just(Kind::A), any::<u8>().prop_map(Kind::B)],
            (a, b) in (0u8..4, 8u8..16).prop_flat_map(|(a, b)| (Just(a), b..=b)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|n| n % 2 == 0 && *n < 10));
            match k {
                Kind::A | Kind::B(_) => {}
            }
            prop_assert!(a < 4 && (8..16).contains(&b));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = (0u64..1000, crate::collection::vec(0u32..9, 2..6));
        let mut r1 = TestRng::deterministic(7);
        let mut r2 = TestRng::deterministic(7);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
