//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this dependency-free re-implementation of the
//! criterion API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Throughput`], [`criterion_group!`] and
//! [`criterion_main!`]. Measurement is a simple mean over a fixed
//! number of wall-clock samples, reported as plain text — enough to
//! compare runs by hand, with none of upstream's statistics.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (upstream defaults to 100;
/// this stub keeps runs short).
const DEFAULT_SAMPLES: usize = 10;

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// Work-rate annotation attached to a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-iteration timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            elapsed: Vec::new(),
        }
    }

    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.elapsed.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.elapsed.is_empty() {
            return Duration::ZERO;
        }
        self.elapsed.iter().sum::<Duration>() / self.elapsed.len() as u32
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = bencher.mean();
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Elements(n) => format!(" ({:.3e} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.3e} B/s)", per_sec(n)),
        }
    });
    println!(
        "bench: {name:<40} mean {:>12.3?} over {} samples{}",
        mean,
        bencher.elapsed.len(),
        rate.unwrap_or_default()
    );
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        Criterion::default().bench_function("t", |b| {
            b.iter(|| calls += 1);
        });
        // Warm-up + samples.
        assert_eq!(calls, 1 + DEFAULT_SAMPLES as u32);
    }

    #[test]
    fn group_configuration_applies() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 4);
    }

    mod macro_surface {
        fn target(c: &mut crate::Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        crate::criterion_group!(benches, target);

        #[test]
        fn group_macro_compiles_and_runs() {
            benches();
        }
    }
}
