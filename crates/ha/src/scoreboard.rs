//! End-to-end data-integrity oracle: a master that *knows* what memory
//! should contain.
//!
//! [`ScoreboardMaster`] writes seeded payloads to seeded burst-aligned
//! offsets inside its span, then reads each burst back and compares the
//! delivered bytes against a shadow copy of expected memory contents.
//! Any delivered-vs-expected mismatch that the fabric did **not**
//! announce through an error response is a *silent corruption* — the
//! one failure mode a predictable interconnect must never exhibit, and
//! the invariant every fabric-fault chaos campaign asserts is zero.
//!
//! Announced errors (SLVERR on an otherwise-good burst, uncorrectable
//! ECC) are *transient* from the master's point of view: the op is
//! re-issued under a capped-exponential [`RetryPolicy`], and the cycles
//! from the op's first issue to its eventual success are tracked so a
//! campaign can check the closed-form
//! [`completion bound`](axi::retry::RetryPolicy::completion_bound).
//!
//! The shadow only commits on a B-OK response, matching the memory
//! controller's semantics (an errored write never reaches the backing
//! store) — so a retried write is idempotent on both sides of the
//! comparison. When the hypervisor quarantines a region onto a zeroed
//! spare, [`ScoreboardMaster::note_remap`] re-zeroes the shadowed
//! window so the oracle tracks the *post-degradation* truth.

use axi::beat::{ArBeat, AwBeat, WBeat};
use axi::retry::RetryPolicy;
use axi::types::{AxiId, BurstSize, Resp};
use axi::{AxiPort, Payload};
use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};
use sim::{Cycle, SimRng};

use crate::Accelerator;

/// AXI ID the scoreboard issues under (distinct from the fault models'
/// `0xE0..=0xE4` and the traffic generators' low IDs).
const SCOREBOARD_ID: AxiId = AxiId(0xD0);

/// Saturating counters of everything the oracle observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreboardStats {
    /// Read-back bursts whose bytes matched the shadow exactly.
    pub bursts_verified: u64,
    /// Ops re-issued after an announced error response.
    pub retries: u64,
    /// Error responses the fabric announced (SLVERR/DECERR on R or B).
    pub announced_errors: u64,
    /// Delivered-vs-expected mismatches with an OKAY response — the
    /// zero-tolerance invariant.
    pub silent_corruptions: u64,
    /// Ops abandoned after exhausting the retry policy (hard errors).
    pub aborted_ops: u64,
    /// Worst first-issue-to-success completion of any retried op, in
    /// cycles (compare against the closed-form retry bound).
    pub worst_completion: u64,
    /// Most consecutive failures any single op saw before succeeding.
    pub worst_faults_per_op: u32,
    /// Bursts verified since the last [`ScoreboardMaster::note_remap`]
    /// (proof the degraded mapping still round-trips data).
    pub verified_after_remap: u64,
}

/// The oracle's phase within one write-then-verify job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Pick the next offset and issue the write.
    IssueWrite,
    /// AW + W issued; waiting on the B response.
    AwaitB,
    /// Issue the read-back of the burst just written.
    IssueRead,
    /// AR issued; accumulating R beats.
    AwaitR,
}

impl PersistValue for Phase {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u32(match self {
            Phase::IssueWrite => 0,
            Phase::AwaitB => 1,
            Phase::IssueRead => 2,
            Phase::AwaitR => 3,
        });
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(match r.take_u32()? {
            0 => Phase::IssueWrite,
            1 => Phase::AwaitB,
            2 => Phase::IssueRead,
            3 => Phase::AwaitR,
            _ => return Err(PersistError::Corrupt("scoreboard phase out of range")),
        })
    }
}

/// A write-then-verify data-integrity master (see the module docs).
///
/// One op is outstanding at a time, so every RNG draw is tied to an op
/// boundary — a beat-delivery cycle, identical under every scheduler —
/// keeping fabric-fault campaigns scheduler-equivalent.
#[derive(Debug)]
pub struct ScoreboardMaster {
    name: String,
    base: u64,
    span: u64,
    burst_beats: u32,
    size: BurstSize,
    policy: RetryPolicy,
    jobs: Option<u64>,
    gap: Cycle,
    // --- dynamic state ---
    rng: SimRng,
    shadow: Vec<u8>,
    phase: Phase,
    /// Offset (into the span) of the burst the current job targets.
    offset: u64,
    /// Seed byte mixed into the current job's payload pattern.
    stamp: u8,
    /// W beats still to stream for the issued write.
    w_left: u32,
    /// Bytes accumulated from R beats of the in-flight read.
    rx: Vec<u8>,
    /// Worst response seen across the in-flight read burst.
    rx_resp: Resp,
    /// Consecutive failures of the current op.
    failed: u32,
    /// Cycle the current op was first issued (for the bound check).
    op_started: Cycle,
    /// Nothing issues before this cycle (backoff / pacing gap).
    wait_until: Cycle,
    jobs_completed: u64,
    stats: ScoreboardStats,
}

impl ScoreboardMaster {
    /// Creates an oracle exercising `span` bytes at `base` with
    /// `burst_beats`-beat bursts of `size`-byte words.
    ///
    /// # Panics
    ///
    /// Panics unless the span holds at least one burst-aligned burst.
    pub fn new(
        name: impl Into<String>,
        base: u64,
        span: u64,
        burst_beats: u32,
        size: BurstSize,
        seed: u64,
    ) -> Self {
        let burst_bytes = burst_beats as u64 * size.bytes();
        assert!(
            span >= burst_bytes && span.is_multiple_of(burst_bytes),
            "span must be a positive multiple of the burst size"
        );
        Self {
            name: name.into(),
            base,
            span,
            burst_beats,
            size,
            policy: RetryPolicy::default(),
            jobs: None,
            gap: 0,
            rng: SimRng::seed(seed),
            shadow: vec![0; span as usize],
            phase: Phase::IssueWrite,
            offset: 0,
            stamp: 0,
            w_left: 0,
            rx: Vec::new(),
            rx_resp: Resp::Okay,
            failed: 0,
            op_started: 0,
            wait_until: 0,
            jobs_completed: 0,
            stats: ScoreboardStats::default(),
        }
    }

    /// Overrides the retry policy (default: [`RetryPolicy::default`]).
    pub fn policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Stops after `jobs` verified (or aborted) write-verify jobs.
    pub fn jobs(mut self, jobs: u64) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Idle cycles between jobs (pacing, like a periodic RT master).
    pub fn gap(mut self, cycles: Cycle) -> Self {
        self.gap = cycles;
        self
    }

    /// The oracle's counters.
    pub fn stats(&self) -> ScoreboardStats {
        self.stats
    }

    /// The armed retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Tells the oracle the hypervisor remapped `[lo, hi)` onto a
    /// zeroed spare region: the shadowed window is re-zeroed (the old
    /// contents are gone by design — degraded mode sheds them) and the
    /// post-remap verification counter restarts.
    pub fn note_remap(&mut self, lo: u64, hi: u64) {
        let from = lo.saturating_sub(self.base).min(self.span) as usize;
        let to = hi.saturating_sub(self.base).min(self.span) as usize;
        self.shadow[from..to].fill(0);
        self.stats.verified_after_remap = 0;
    }

    fn burst_bytes(&self) -> u64 {
        self.burst_beats as u64 * self.size.bytes()
    }

    /// The payload byte for `addr` under a job's stamp.
    fn pattern_at(stamp: u8, addr: u64) -> u8 {
        (addr as u8) ^ stamp ^ 0x5A
    }

    /// The payload byte for `addr` under the current job's stamp.
    fn pattern(&self, addr: u64) -> u8 {
        Self::pattern_at(self.stamp, addr)
    }

    /// Registers a failed op attempt; returns whether to retry.
    fn on_failure(&mut self, now: Cycle) -> bool {
        self.stats.announced_errors = self.stats.announced_errors.saturating_add(1);
        self.failed += 1;
        self.stats.worst_faults_per_op = self.stats.worst_faults_per_op.max(self.failed);
        if self.failed >= self.policy.max_attempts {
            self.stats.aborted_ops = self.stats.aborted_ops.saturating_add(1);
            false
        } else {
            self.stats.retries = self.stats.retries.saturating_add(1);
            self.wait_until = now + self.policy.backoff(self.failed - 1);
            true
        }
    }

    /// Registers a successful op completion (for the bound check).
    fn on_success(&mut self, now: Cycle) {
        self.stats.worst_completion = self
            .stats
            .worst_completion
            .max(now.saturating_sub(self.op_started));
        self.failed = 0;
    }

    /// Finishes the current job and paces the next one.
    fn finish_job(&mut self, now: Cycle) {
        self.jobs_completed += 1;
        self.phase = Phase::IssueWrite;
        self.wait_until = now + self.gap;
    }
}

impl Accelerator for ScoreboardMaster {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if self.is_done() {
            return false;
        }
        let mut progress = false;
        // Stream pending W beats regardless of phase/backoff: the AW is
        // already on the wire, the data must follow.
        while self.w_left > 0 && !port.w.is_full() {
            let len = self.burst_beats;
            let beat_idx = (len - self.w_left) as u64;
            let n = self.size.bytes();
            let beat_base = self.base + self.offset + beat_idx * n;
            let data = Payload::from_fn(n as usize, |b| self.pattern(beat_base + b as u64));
            let last = self.w_left == 1;
            port.w
                .push(now, WBeat::new(data, last).with_issued_at(now))
                .expect("checked space");
            self.w_left -= 1;
            progress = true;
        }
        // Consume responses.
        if self.phase == Phase::AwaitB {
            if let Some(b) = port.b.pop_ready(now) {
                progress = true;
                if b.resp.is_ok() {
                    // Commit the expected bytes: the write reached DRAM.
                    let lo = self.offset as usize;
                    let hi = lo + self.burst_bytes() as usize;
                    let (base, offset, stamp) = (self.base, self.offset, self.stamp);
                    for (i, slot) in self.shadow[lo..hi].iter_mut().enumerate() {
                        *slot = Self::pattern_at(stamp, base + offset + i as u64);
                    }
                    self.on_success(now);
                    self.phase = Phase::IssueRead;
                    self.op_started = now;
                } else if self.on_failure(now) {
                    self.phase = Phase::IssueWrite;
                } else {
                    // Hard error: abandon the job, keep the shadow.
                    self.finish_job(now);
                }
            }
        }
        if self.phase == Phase::AwaitR {
            while let Some(beat) = port.r.pop_ready(now) {
                progress = true;
                self.rx_resp = self.rx_resp.worst(beat.resp);
                self.rx.extend_from_slice(beat.data.as_slice());
                if !beat.last {
                    continue;
                }
                if self.rx_resp.is_ok() {
                    let lo = self.offset as usize;
                    let hi = lo + self.burst_bytes() as usize;
                    if self.rx.as_slice() == &self.shadow[lo..hi] {
                        self.stats.bursts_verified = self.stats.bursts_verified.saturating_add(1);
                        self.stats.verified_after_remap =
                            self.stats.verified_after_remap.saturating_add(1);
                    } else {
                        // Delivered OKAY, bytes wrong: the failure the
                        // whole oracle exists to catch.
                        self.stats.silent_corruptions =
                            self.stats.silent_corruptions.saturating_add(1);
                    }
                    self.on_success(now);
                    self.finish_job(now);
                } else if self.on_failure(now) {
                    self.phase = Phase::IssueRead;
                } else {
                    self.finish_job(now);
                }
                break;
            }
        }
        if now < self.wait_until {
            return progress;
        }
        // Issue the next op.
        match self.phase {
            Phase::IssueWrite if !port.aw.is_full() => {
                if self.failed == 0 {
                    // A fresh job: seeded burst-aligned offset + stamp.
                    let slots = self.span / self.burst_bytes();
                    self.offset = self.rng.range_u64(0, slots - 1) * self.burst_bytes();
                    self.stamp = (self.rng.range_u64(0, 255) as u8) | 1;
                    self.op_started = now;
                }
                port.aw
                    .push(
                        now,
                        AwBeat::new(self.base + self.offset, self.burst_beats, self.size)
                            .with_id(SCOREBOARD_ID)
                            .with_tag(self.jobs_completed)
                            .with_issued_at(now),
                    )
                    .expect("checked space");
                self.w_left = self.burst_beats;
                self.phase = Phase::AwaitB;
                progress = true;
            }
            Phase::IssueRead if !port.ar.is_full() => {
                port.ar
                    .push(
                        now,
                        ArBeat::new(self.base + self.offset, self.burst_beats, self.size)
                            .with_id(SCOREBOARD_ID)
                            .with_tag(self.jobs_completed)
                            .with_issued_at(now),
                    )
                    .expect("checked space");
                self.rx.clear();
                self.rx_resp = Resp::Okay;
                self.phase = Phase::AwaitR;
                progress = true;
            }
            _ => {}
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        self.jobs.is_some_and(|j| self.jobs_completed >= j)
    }

    fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_done() {
            return None;
        }
        match self.phase {
            // Waiting on responses: purely reactive.
            Phase::AwaitB | Phase::AwaitR if self.w_left == 0 => None,
            // Backoff or pacing gap.
            _ if now < self.wait_until => Some(self.wait_until),
            _ => Some(now + 1),
        }
    }

    fn reset(&mut self) {
        // In-flight op state is gone with the fabric's pipeline; the
        // shadow and counters survive (the oracle's memory of truth).
        self.phase = Phase::IssueWrite;
        self.w_left = 0;
        self.rx.clear();
        self.rx_resp = Resp::Okay;
        self.failed = 0;
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.rng.save_value(w);
        self.shadow.save_value(w);
        self.phase.save_value(w);
        w.put_u64(self.offset);
        w.put_u32(u32::from(self.stamp));
        w.put_u32(self.w_left);
        self.rx.save_value(w);
        self.rx_resp.save_value(w);
        w.put_u32(self.failed);
        w.put_u64(self.op_started);
        w.put_u64(self.wait_until);
        w.put_u64(self.jobs_completed);
        let s = &self.stats;
        w.put_u64(s.bursts_verified);
        w.put_u64(s.retries);
        w.put_u64(s.announced_errors);
        w.put_u64(s.silent_corruptions);
        w.put_u64(s.aborted_ops);
        w.put_u64(s.worst_completion);
        w.put_u32(s.worst_faults_per_op);
        w.put_u64(s.verified_after_remap);
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
        // Decode fully before mutating anything.
        let rng = SimRng::load_value(r)?;
        let shadow = Vec::<u8>::load_value(r)?;
        if shadow.len() != self.span as usize {
            return Err(PersistError::ShapeMismatch("scoreboard shadow span"));
        }
        let phase = Phase::load_value(r)?;
        let offset = r.take_u64()?;
        let stamp = r.take_u32()? as u8;
        let w_left = r.take_u32()?;
        let rx = Vec::<u8>::load_value(r)?;
        let rx_resp = Resp::load_value(r)?;
        let failed = r.take_u32()?;
        let op_started = r.take_u64()?;
        let wait_until = r.take_u64()?;
        let jobs_completed = r.take_u64()?;
        let stats = ScoreboardStats {
            bursts_verified: r.take_u64()?,
            retries: r.take_u64()?,
            announced_errors: r.take_u64()?,
            silent_corruptions: r.take_u64()?,
            aborted_ops: r.take_u64()?,
            worst_completion: r.take_u64()?,
            worst_faults_per_op: r.take_u32()?,
            verified_after_remap: r.take_u64()?,
        };
        self.rng = rng;
        self.shadow = shadow;
        self.phase = phase;
        self.offset = offset;
        self.stamp = stamp;
        self.w_left = w_left;
        self.rx = rx;
        self.rx_resp = rx_resp;
        self.failed = failed;
        self.op_started = op_started;
        self.wait_until = wait_until;
        self.jobs_completed = jobs_completed;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::{MemConfig, MemFaultConfig, MemoryController};

    fn run(
        sb: &mut ScoreboardMaster,
        ctrl: &mut MemoryController,
        port: &mut AxiPort,
        cycles: Cycle,
    ) {
        for now in 0..cycles {
            sb.tick(now, port);
            ctrl.tick(now, port);
        }
    }

    fn oracle(seed: u64) -> ScoreboardMaster {
        ScoreboardMaster::new("sb", 0x1000, 4096, 4, BurstSize::B4, seed).jobs(20)
    }

    #[test]
    fn clean_fabric_verifies_every_burst() {
        let mut sb = oracle(1);
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        let mut port = AxiPort::default();
        run(&mut sb, &mut ctrl, &mut port, 3_000);
        let s = sb.stats();
        assert!(sb.is_done(), "{s:?}");
        assert_eq!(s.bursts_verified, 20);
        assert_eq!(s.silent_corruptions, 0);
        assert_eq!(s.announced_errors, 0);
        assert_eq!(s.aborted_ops, 0);
    }

    #[test]
    fn silent_flips_are_caught_as_corruption() {
        let mut sb = oracle(2);
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.attach_fault_injector(MemFaultConfig::new(7).flip_single(1.0));
        let mut port = AxiPort::default();
        run(&mut sb, &mut ctrl, &mut port, 3_000);
        let s = sb.stats();
        assert!(sb.is_done());
        assert_eq!(s.silent_corruptions, 20, "{s:?}");
        assert_eq!(s.bursts_verified, 0);
    }

    #[test]
    fn ecc_turns_the_same_flips_into_verified_bursts() {
        let mut sb = oracle(2);
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.attach_fault_injector(MemFaultConfig::new(7).flip_single(1.0).ecc(true));
        let mut port = AxiPort::default();
        run(&mut sb, &mut ctrl, &mut port, 3_000);
        let s = sb.stats();
        assert!(sb.is_done());
        assert_eq!(s.silent_corruptions, 0, "{s:?}");
        assert_eq!(s.bursts_verified, 20);
    }

    #[test]
    fn transient_errors_retry_to_success_within_the_bound() {
        let mut sb = oracle(3).policy(RetryPolicy {
            max_attempts: 20,
            backoff_base: 2,
            backoff_cap: 32,
        });
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.attach_fault_injector(MemFaultConfig::new(11).spurious_slverr(0.3));
        let mut port = AxiPort::default();
        run(&mut sb, &mut ctrl, &mut port, 20_000);
        let s = sb.stats();
        assert!(sb.is_done(), "{s:?}");
        assert_eq!(s.silent_corruptions, 0);
        assert_eq!(s.aborted_ops, 0, "{s:?}");
        assert_eq!(s.bursts_verified, 20);
        assert!(s.retries > 0, "fault rate 0.3 must trigger retries");
        // Direct path: per-attempt is bounded by the burst round trip;
        // use a generous per-attempt figure and the observed fault max.
        let bound = sb
            .retry_policy()
            .completion_bound(200, s.worst_faults_per_op);
        assert!(
            s.worst_completion <= bound,
            "worst {} exceeds bound {bound}",
            s.worst_completion
        );
    }

    #[test]
    fn hard_errors_abort_after_the_policy_gives_up() {
        let mut sb = ScoreboardMaster::new("sb", 0x1000, 64, 4, BurstSize::B4, 5)
            .jobs(3)
            .policy(RetryPolicy {
                max_attempts: 3,
                backoff_base: 1,
                backoff_cap: 4,
            });
        // The whole span is a hard-error region.
        let mut ctrl = MemoryController::new(MemConfig::ideal().slverr_range(0x1000, 0x1040));
        let mut port = AxiPort::default();
        run(&mut sb, &mut ctrl, &mut port, 3_000);
        let s = sb.stats();
        assert!(sb.is_done());
        assert_eq!(s.aborted_ops, 3, "{s:?}");
        assert_eq!(s.bursts_verified, 0);
        assert_eq!(s.silent_corruptions, 0, "errors were announced, not silent");
    }

    #[test]
    fn quarantine_remap_restores_verified_round_trips() {
        let mut sb =
            ScoreboardMaster::new("sb", 0x1000, 64, 4, BurstSize::B4, 5).policy(RetryPolicy {
                max_attempts: 4,
                backoff_base: 1,
                backoff_cap: 4,
            });
        let mut ctrl = MemoryController::new(MemConfig::ideal().slverr_range(0x1000, 0x1040));
        let mut port = AxiPort::default();
        run(&mut sb, &mut ctrl, &mut port, 1_000);
        assert!(sb.stats().aborted_ops > 0, "hard region must abort ops");
        // Hypervisor decision: quarantine the region onto a spare.
        ctrl.quarantine_remap(mem::RegionRemap {
            lo: 0x1000,
            hi: 0x1040,
            spare_base: 0x10_0000,
        });
        sb.note_remap(0x1000, 0x1040);
        let before = sb.stats().silent_corruptions;
        for now in 1_000..4_000 {
            sb.tick(now, &mut port);
            ctrl.tick(now, &mut port);
        }
        let s = sb.stats();
        assert!(s.verified_after_remap > 0, "{s:?}");
        assert_eq!(s.silent_corruptions, before, "remap introduced mismatches");
    }

    #[test]
    fn scoreboard_state_round_trips_mid_job() {
        let build = || {
            ScoreboardMaster::new("sb", 0x1000, 1024, 4, BurstSize::B4, 9).policy(RetryPolicy {
                max_attempts: 10,
                backoff_base: 2,
                backoff_cap: 16,
            })
        };
        let mut sb = build();
        let mut ctrl = MemoryController::new(MemConfig::zcu102());
        ctrl.attach_fault_injector(MemFaultConfig::new(3).spurious_slverr(0.2));
        let mut port = AxiPort::default();
        run(&mut sb, &mut ctrl, &mut port, 500);
        let mut w = SnapshotWriter::new();
        sb.save_state(&mut w);
        ctrl.save_state(&mut w);
        port.save_value(&mut w);
        let bytes = w.into_bytes();

        let mut sb2 = build();
        let mut ctrl2 = MemoryController::new(MemConfig::zcu102());
        let mut r = SnapshotReader::new(&bytes);
        sb2.restore_state(&mut r).unwrap();
        ctrl2.restore_state(&mut r).unwrap();
        let mut port2 = AxiPort::load_value(&mut r).unwrap();

        let drive = |sb: &mut ScoreboardMaster,
                     ctrl: &mut MemoryController,
                     port: &mut AxiPort|
         -> (u32, ScoreboardStats) {
            for now in 500..3_000 {
                sb.tick(now, port);
                ctrl.tick(now, port);
            }
            let mut w = SnapshotWriter::new();
            sb.save_state(&mut w);
            (sim::persist::crc32(&w.into_bytes()), sb.stats())
        };
        assert_eq!(
            drive(&mut sb, &mut ctrl, &mut port),
            drive(&mut sb2, &mut ctrl2, &mut port2),
            "restored oracle diverged"
        );
    }
}
