//! A CHaiDNN-style DNN accelerator model — the paper's `HA_CHaiDNN`.
//!
//! CHaiDNN (Xilinx) accelerates DNN inference on FPGA SoCs with a
//! shared-memory paradigm: per layer it streams weights and input
//! activations from DRAM, computes on the DSP array, and writes output
//! activations back (paper §VI-C). What matters for the interconnect
//! experiments is its *bus traffic pattern* — memory-intensive but with
//! dependent, shallow-outstanding accesses, i.e. far less greedy than a
//! DMA — and its frames-per-second completion rate. This model replays
//! a per-layer traffic schedule; the bundled [`googlenet`] schedule is
//! derived from the quantized GoogleNet the paper runs (layer parameter
//! and activation sizes from the GoogleNet architecture, compute cycles
//! scaled to a CHaiDNN-class DSP array).
//!
//! [`googlenet`]: Chaidnn::googlenet

use axi::types::{AxiId, BurstSize};
use axi::AxiPort;
use sim::stats::LatencyStat;
use sim::Cycle;

use crate::engine::{ReadEngine, WriteEngine};
use crate::Accelerator;

/// One layer of the traffic schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name, for reports.
    pub name: &'static str,
    /// Weight bytes streamed from DRAM.
    pub weight_bytes: u64,
    /// Input-activation bytes read from DRAM.
    pub input_bytes: u64,
    /// Output-activation bytes written to DRAM.
    pub output_bytes: u64,
    /// Cycles the DSP array computes with the bus idle.
    pub compute_cycles: u64,
}

impl Layer {
    /// Total bus bytes moved by the layer.
    pub fn traffic_bytes(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }
}

/// Configuration of a [`Chaidnn`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaidnnConfig {
    /// Base address of the weight arena.
    pub weights_base: u64,
    /// Base address of the activation arena.
    pub activations_base: u64,
    /// Burst length used on the bus.
    pub burst_beats: u32,
    /// Beat size.
    pub size: BurstSize,
    /// Outstanding requests — dependent accesses keep this shallow.
    pub max_outstanding: u32,
    /// Frames to process (`None` = free-running).
    pub frames: Option<u64>,
}

impl Default for ChaidnnConfig {
    fn default() -> Self {
        Self {
            weights_base: 0x4000_0000,
            activations_base: 0x5000_0000,
            burst_beats: 16,
            size: BurstSize::B16,
            max_outstanding: 4,
            frames: None,
        }
    }
}

#[derive(Debug)]
enum Phase {
    Weights(ReadEngine),
    Inputs(ReadEngine),
    /// Busy-computing until the stored absolute cycle (exclusive: the
    /// layer advances on the first tick at or after `until`).
    Compute {
        until: Cycle,
    },
    Outputs(WriteEngine),
}

/// The DNN accelerator model: replays a layer schedule frame by frame.
///
/// # Example
///
/// ```
/// use ha::chaidnn::{Chaidnn, ChaidnnConfig};
///
/// let dnn = Chaidnn::googlenet(ChaidnnConfig::default());
/// // Quantized GoogleNet moves >10 MiB of bus traffic per frame.
/// assert!(dnn.frame_traffic_bytes() > 10 << 20);
/// ```
pub struct Chaidnn {
    name: String,
    config: ChaidnnConfig,
    layers: Vec<Layer>,
    layer_idx: usize,
    phase: Option<Phase>,
    frames_completed: u64,
    frame_started_at: Option<Cycle>,
    frame_latency: LatencyStat,
    bytes_moved: u64,
}

impl std::fmt::Debug for Chaidnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chaidnn")
            .field("name", &self.name)
            .field("layers", &self.layers.len())
            .field("frames_completed", &self.frames_completed)
            .finish()
    }
}

/// Rounds a byte count up to a whole number of beats.
fn round_beats(bytes: u64, size: BurstSize) -> u64 {
    let b = size.bytes();
    bytes.div_ceil(b) * b
}

impl Chaidnn {
    /// Creates an accelerator replaying `layers`.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>, config: ChaidnnConfig) -> Self {
        assert!(!layers.is_empty(), "a schedule needs at least one layer");
        Self {
            name: name.into(),
            config,
            layers,
            layer_idx: 0,
            phase: None,
            frames_completed: 0,
            frame_started_at: None,
            frame_latency: LatencyStat::new(),
            bytes_moved: 0,
        }
    }

    /// The quantized-GoogleNet schedule of the paper's case study.
    ///
    /// Weight sizes follow the GoogleNet layer parameter counts at
    /// 8-bit quantization; activation sizes follow the 224×224
    /// architecture; compute cycles model a CHaiDNN-class DSP array
    /// (~1 GMAC of work spread across the layers).
    pub fn googlenet(config: ChaidnnConfig) -> Self {
        // (name, weights, input act, output act, compute cycles)
        const L: &[(&str, u64, u64, u64, u64)] = &[
            ("conv1-7x7", 9_600, 150_528, 802_816, 60_000),
            ("conv2-3x3", 114_688, 200_704, 602_112, 110_000),
            ("incep-3a", 163_840, 150_528, 200_704, 40_000),
            ("incep-3b", 389_120, 200_704, 376_320, 80_000),
            ("incep-4a", 376_832, 94_080, 100_352, 50_000),
            ("incep-4b", 449_536, 100_352, 100_352, 55_000),
            ("incep-4c", 510_976, 100_352, 100_352, 60_000),
            ("incep-4d", 605_184, 100_352, 103_488, 65_000),
            ("incep-4e", 868_352, 103_488, 163_072, 90_000),
            ("incep-5a", 1_071_104, 40_768, 50_176, 70_000),
            ("incep-5b", 1_388_544, 50_176, 50_176, 85_000),
            ("fc-1000", 1_024_000, 1_024, 1_024, 20_000),
        ];
        let layers = L
            .iter()
            .map(|&(name, w, i, o, c)| Layer {
                name,
                weight_bytes: w,
                input_bytes: i,
                output_bytes: o,
                compute_cycles: c,
            })
            .collect();
        Self::new("CHaiDNN-GoogleNet", layers, config)
    }

    /// A quantized-AlexNet schedule (the other classic network CHaiDNN
    /// ships support for). AlexNet is weight-dominated: its fully
    /// connected layers stream far more parameters per frame than
    /// GoogleNet, making it an even more memory-bound workload.
    pub fn alexnet(config: ChaidnnConfig) -> Self {
        const L: &[(&str, u64, u64, u64, u64)] = &[
            ("conv1-11x11", 35_000, 154_587, 290_400, 50_000),
            ("conv2-5x5", 307_200, 69_984, 186_624, 90_000),
            ("conv3-3x3", 884_736, 43_264, 64_896, 60_000),
            ("conv4-3x3", 663_552, 64_896, 64_896, 45_000),
            ("conv5-3x3", 442_368, 64_896, 43_264, 30_000),
            ("fc6", 37_748_736, 9_216, 4_096, 40_000),
            ("fc7", 16_777_216, 4_096, 4_096, 18_000),
            ("fc8", 4_096_000, 4_096, 1_000, 5_000),
        ];
        let layers = L
            .iter()
            .map(|&(name, w, i, o, c)| Layer {
                name,
                weight_bytes: w,
                input_bytes: i,
                output_bytes: o,
                compute_cycles: c,
            })
            .collect();
        Self::new("CHaiDNN-AlexNet", layers, config)
    }

    /// The layer schedule.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Frame-completion-time distribution, in cycles.
    pub fn frame_latency(&self) -> &LatencyStat {
        &self.frame_latency
    }

    /// Total bus bytes moved since reset.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Bus bytes one frame moves (after beat rounding).
    pub fn frame_traffic_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                round_beats(l.weight_bytes, self.config.size)
                    + round_beats(l.input_bytes, self.config.size)
                    + round_beats(l.output_bytes, self.config.size)
            })
            .sum()
    }

    fn enter_layer(&mut self) {
        let layer = &self.layers[self.layer_idx];
        let c = &self.config;
        let bytes = round_beats(layer.weight_bytes, c.size);
        self.phase = Some(Phase::Weights(
            ReadEngine::new(c.weights_base, bytes, c.burst_beats, c.size)
                .max_outstanding(c.max_outstanding)
                .id(AxiId(2)),
        ));
    }

    fn advance_phase(&mut self, now: Cycle) {
        let layer = self.layers[self.layer_idx].clone();
        let c = self.config;
        let next = match self.phase.take().expect("phase exists") {
            Phase::Weights(_) => {
                let bytes = round_beats(layer.input_bytes, c.size);
                Phase::Inputs(
                    ReadEngine::new(c.activations_base, bytes, c.burst_beats, c.size)
                        .max_outstanding(c.max_outstanding)
                        .id(AxiId(2)),
                )
            }
            Phase::Inputs(_) => Phase::Compute {
                until: now + layer.compute_cycles,
            },
            Phase::Compute { .. } => {
                let bytes = round_beats(layer.output_bytes, c.size);
                Phase::Outputs(
                    WriteEngine::new(
                        c.activations_base + 0x0100_0000,
                        bytes,
                        c.burst_beats,
                        c.size,
                        mem::backing::pattern_byte,
                    )
                    .max_outstanding(c.max_outstanding)
                    .id(AxiId(3)),
                )
            }
            Phase::Outputs(_) => {
                // Layer done.
                self.layer_idx += 1;
                if self.layer_idx >= self.layers.len() {
                    self.layer_idx = 0;
                    self.frames_completed += 1;
                    let started = self.frame_started_at.take().expect("frame started");
                    self.frame_latency.record(now.saturating_sub(started));
                }
                self.phase = None;
                return;
            }
        };
        self.phase = Some(next);
    }
}

impl Accelerator for Chaidnn {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if self.is_done() {
            return false;
        }
        if self.phase.is_none() {
            if self.frame_started_at.is_none() {
                self.frame_started_at = Some(now);
            }
            self.enter_layer();
        }
        let mut progress = false;
        let advance = match self.phase.as_mut().expect("phase set above") {
            Phase::Weights(eng) | Phase::Inputs(eng) => {
                let before = eng.received_beats();
                progress |= eng.tick(now, port);
                self.bytes_moved += (eng.received_beats() - before) * self.config.size.bytes();
                eng.is_done()
            }
            Phase::Compute { until } => {
                // Pure waiting: no observable state changes until the
                // compute window elapses, so the fast-forward scheduler
                // may jump straight to `until`.
                now >= *until
            }
            Phase::Outputs(eng) => {
                progress |= eng.tick(now, port);
                eng.is_done()
            }
        };
        if advance {
            if let Some(Phase::Outputs(_)) = &self.phase {
                self.bytes_moved +=
                    round_beats(self.layers[self.layer_idx].output_bytes, self.config.size);
            }
            self.advance_phase(now);
            progress = true;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        self.config
            .frames
            .is_some_and(|frames| self.frames_completed >= frames)
    }

    fn jobs_completed(&self) -> u64 {
        self.frames_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_done() {
            return None;
        }
        match &self.phase {
            // Next tick enters the first layer of a new frame.
            None => Some(now + 1),
            // The compute window is the one place the model idles with a
            // known wake-up time.
            Some(Phase::Compute { until }) => Some((*until).max(now + 1)),
            // Burst engines are purely reactive: they wake when the port
            // drains or data returns, both covered by the interconnect.
            Some(_) => None,
        }
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        use sim::persist::{Persist, PersistValue};
        w.put_usize(self.layer_idx);
        // Phase wire codes (append-only): 0 = between layers,
        // 1 = Weights, 2 = Inputs, 3 = Compute, 4 = Outputs.
        match &self.phase {
            None => w.put_u8(0),
            Some(Phase::Weights(eng)) => {
                w.put_u8(1);
                eng.save_value(w);
            }
            Some(Phase::Inputs(eng)) => {
                w.put_u8(2);
                eng.save_value(w);
            }
            Some(Phase::Compute { until }) => {
                w.put_u8(3);
                w.put_u64(*until);
            }
            Some(Phase::Outputs(eng)) => {
                w.put_u8(4);
                eng.save(w);
            }
        }
        w.put_u64(self.frames_completed);
        self.frame_started_at.save_value(w);
        self.frame_latency.save_value(w);
        w.put_u64(self.bytes_moved);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        use sim::persist::{Persist, PersistError, PersistValue};
        self.layer_idx = r.take_usize()?;
        self.phase = match r.take_u8()? {
            0 => None,
            1 => Some(Phase::Weights(ReadEngine::load_value(r)?)),
            2 => Some(Phase::Inputs(ReadEngine::load_value(r)?)),
            3 => Some(Phase::Compute {
                until: r.take_u64()?,
            }),
            4 => {
                // The output engine's fill is the free function
                // `pattern_byte`, so a placeholder engine is built and
                // overlaid from the stream.
                let c = self.config;
                let mut eng =
                    WriteEngine::new(0, c.size.bytes(), 1, c.size, mem::backing::pattern_byte);
                eng.restore(r)?;
                Some(Phase::Outputs(eng))
            }
            _ => return Err(PersistError::Corrupt("unknown chaidnn phase")),
        };
        if self.layer_idx >= self.layers.len() {
            return Err(PersistError::ShapeMismatch("chaidnn layer index"));
        }
        self.frames_completed = r.take_u64()?;
        self.frame_started_at = Option::load_value(r)?;
        self.frame_latency = LatencyStat::load_value(r)?;
        self.bytes_moved = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::AxiInterconnect;
    use hyperconnect::{HcConfig, HyperConnect};
    use mem::{MemConfig, MemoryController};
    use sim::Component;

    fn tiny_schedule() -> Vec<Layer> {
        vec![
            Layer {
                name: "l0",
                weight_bytes: 256,
                input_bytes: 128,
                output_bytes: 128,
                compute_cycles: 50,
            },
            Layer {
                name: "l1",
                weight_bytes: 128,
                input_bytes: 128,
                output_bytes: 64,
                compute_cycles: 30,
            },
        ]
    }

    fn run_frames(mut dnn: Chaidnn, max_cycles: Cycle) -> Chaidnn {
        let mut hc = HyperConnect::new(HcConfig::new(1));
        let mut ctrl = MemoryController::new(MemConfig::default());
        for now in 0..max_cycles {
            dnn.tick(now, hc.port(0));
            hc.tick(now);
            ctrl.tick(now, hc.mem_port());
            if dnn.is_done() {
                break;
            }
        }
        dnn
    }

    #[test]
    fn completes_one_frame() {
        let cfg = ChaidnnConfig {
            frames: Some(1),
            ..ChaidnnConfig::default()
        };
        let dnn = run_frames(Chaidnn::new("t", tiny_schedule(), cfg), 50_000);
        assert_eq!(dnn.jobs_completed(), 1);
        assert!(dnn.is_done());
        assert_eq!(dnn.frame_latency().count(), 1);
        // The frame takes at least the pure compute time.
        assert!(dnn.frame_latency().min().unwrap() >= 80);
    }

    #[test]
    fn frame_traffic_accounts_all_phases() {
        let dnn = Chaidnn::new("t", tiny_schedule(), ChaidnnConfig::default());
        // 256+128+128 + 128+128+64 = 832 bytes, already beat-aligned.
        assert_eq!(dnn.frame_traffic_bytes(), 832);
    }

    #[test]
    fn free_running_processes_multiple_frames() {
        let dnn = run_frames(
            Chaidnn::new("t", tiny_schedule(), ChaidnnConfig::default()),
            100_000,
        );
        assert!(dnn.jobs_completed() >= 2, "{}", dnn.jobs_completed());
        assert!(!dnn.is_done());
    }

    #[test]
    fn googlenet_schedule_is_plausible() {
        let dnn = Chaidnn::googlenet(ChaidnnConfig::default());
        assert_eq!(dnn.layers().len(), 12);
        let weights: u64 = dnn.layers().iter().map(|l| l.weight_bytes).sum();
        // Quantized GoogleNet weighs in around 7 MB at 8 bits.
        assert!((6 << 20..8 << 20).contains(&weights), "{weights}");
        let traffic = dnn.frame_traffic_bytes();
        assert!(traffic > 10 << 20, "memory-intensive workload: {traffic}");
        let compute: u64 = dnn.layers().iter().map(|l| l.compute_cycles).sum();
        assert!((500_000..1_500_000).contains(&compute), "{compute}");
    }

    #[test]
    fn alexnet_is_weight_dominated() {
        let alex = Chaidnn::alexnet(ChaidnnConfig::default());
        assert_eq!(alex.layers().len(), 8);
        let weights: u64 = alex.layers().iter().map(|l| l.weight_bytes).sum();
        // ~61M parameters at 8 bits.
        assert!((55 << 20..65 << 20).contains(&weights), "{weights}");
        // Weights dominate the per-frame traffic by a wide margin.
        let acts: u64 = alex
            .layers()
            .iter()
            .map(|l| l.input_bytes + l.output_bytes)
            .sum();
        assert!(weights > 20 * acts);
        // And its frame is heavier than GoogleNet's.
        let goog = Chaidnn::googlenet(ChaidnnConfig::default());
        assert!(alex.frame_traffic_bytes() > 4 * goog.frame_traffic_bytes());
    }

    #[test]
    fn alexnet_completes_a_frame() {
        let cfg = ChaidnnConfig {
            frames: Some(1),
            ..ChaidnnConfig::default()
        };
        let dnn = run_frames(Chaidnn::alexnet(cfg), 30_000_000);
        assert_eq!(dnn.jobs_completed(), 1);
    }

    #[test]
    fn bytes_rounded_to_beats() {
        let layers = vec![Layer {
            name: "odd",
            weight_bytes: 100, // not a multiple of 16
            input_bytes: 7,
            output_bytes: 1,
            compute_cycles: 1,
        }];
        let dnn = Chaidnn::new("odd", layers, ChaidnnConfig::default());
        assert_eq!(dnn.frame_traffic_bytes(), 112 + 16 + 16);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_schedule_panics() {
        let _ = Chaidnn::new("e", vec![], ChaidnnConfig::default());
    }
}
