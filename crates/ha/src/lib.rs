//! Hardware-accelerator models: the bus masters of the evaluation.
//!
//! The paper evaluates the interconnects with Xilinx AXI DMAs (which
//! saturate the platform's memory bandwidth) and with the CHaiDNN deep
//! neural network accelerator running quantized GoogleNet. This crate
//! provides behavioral models of both, plus synthetic traffic generators
//! for the fairness/reservation ablations:
//!
//! * [`engine`] — reusable read/write burst engines (issue logic,
//!   outstanding limiting, 4 KiB clamping, latency bookkeeping);
//! * [`dma`] — a Xilinx-AXI-DMA-like engine moving configurable amounts
//!   of data per job (`HA_DMA` in the paper's case study);
//! * [`chaidnn`] — a layer-schedule replay of a CHaiDNN-style DNN
//!   accelerator, with a bundled quantized-GoogleNet schedule
//!   (`HA_CHaiDNN`);
//! * [`traffic`] — synthetic masters: constant-rate readers, the
//!   *bandwidth stealer* of the fairness experiment, and a seeded
//!   random mix;
//! * [`fault`] — deliberately misbehaving masters (illegal addresses,
//!   4 KiB-crossing bursts, WLAST corruption, hung W channels, runaway
//!   issue rates) for the fault-injection experiments.
//!
//! All models implement [`Accelerator`] and drive one interconnect
//! slave port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaidnn;
pub mod dma;
pub mod engine;
pub mod fault;
pub mod scoreboard;
pub mod traffic;

use axi::AxiPort;
use sim::Cycle;

/// A bus master occupying one interconnect slave port.
///
/// `Send` is a supertrait: accelerator models are plain owned data, and
/// requiring it lets the sharded scheduler move the shard that owns a
/// model onto a worker thread.
pub trait Accelerator: std::any::Any + Send {
    /// Advances the accelerator one cycle against its port. Returns
    /// `true` if any state changed.
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool;

    /// Short human-readable name for reports.
    fn name(&self) -> &str;

    /// Whether the accelerator has completed a finite workload (always
    /// `false` for free-running generators).
    fn is_done(&self) -> bool;

    /// Completed work items (DMA jobs, DNN frames, ...).
    fn jobs_completed(&self) -> u64;

    /// Type-erased view for downcasting to the concrete model (the
    /// benchmark harness uses this to read model-specific statistics).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Event-horizon hint (see [`sim::Component::next_event`]): the
    /// earliest future cycle this accelerator could make progress at,
    /// assuming nothing arrives on its port before then. `None` means
    /// purely reactive (only port traffic can wake it). Implementations
    /// may under-promise but must never over-promise. The default of
    /// `Some(now + 1)` is always safe.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// Appends the model's dynamic state to a snapshot writer (see
    /// [`sim::persist`]). Paired with [`Self::restore_state`]; every
    /// model must serialize enough to make a restored run cycle-exact,
    /// including any embedded RNG streams and FSM phases.
    fn save_state(&self, w: &mut sim::persist::SnapshotWriter);

    /// Restores state saved by [`Self::save_state`] into a model
    /// constructed with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`sim::persist::PersistError`] if the stream is
    /// truncated, corrupt or shaped for a different configuration.
    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError>;

    /// Models a hardware reset of the accelerator (the PL reset line
    /// the hypervisor pulses during recovery, or a partial
    /// reconfiguration swap). Implementations drop all internal
    /// protocol state and either resume nominal operation or — for
    /// models of permanently broken hardware — come back still faulty,
    /// which is how the recovery campaign exercises the quarantine
    /// path. The default is a no-op: a stateless generator just keeps
    /// generating.
    fn reset(&mut self) {}
}
