//! Reusable burst engines: the issue/consume logic shared by every
//! accelerator model.

use axi::beat::{ArBeat, AwBeat, WBeat};
use axi::burst::BOUNDARY_4K;
use axi::types::{AxiId, BurstSize};
use axi::{AxiPort, Payload};
use sim::stats::LatencyStat;
use sim::Cycle;

/// Clamps a burst so it never crosses a 4 KiB boundary: returns the
/// number of beats (at most `want_beats`) that fit from `addr` to the
/// boundary.
///
/// # Panics
///
/// Panics if `addr` is not aligned to the beat size.
pub fn clamp_to_4k(addr: u64, want_beats: u32, size: BurstSize) -> u32 {
    assert_eq!(addr % size.bytes(), 0, "unaligned burst start");
    let room = BOUNDARY_4K - (addr % BOUNDARY_4K);
    let fit = (room / size.bytes()) as u32;
    want_beats.min(fit).max(1)
}

/// A streaming read engine: reads `total_bytes` from `base` in bursts
/// of up to `burst_beats`, keeping up to `max_outstanding` requests in
/// flight.
#[derive(Debug, Clone)]
pub struct ReadEngine {
    id: AxiId,
    base: u64,
    total_beats: u64,
    burst_beats: u32,
    size: BurstSize,
    max_outstanding: u32,
    issued_beats: u64,
    received_beats: u64,
    outstanding: u32,
    next_tag: u64,
    started_at: Option<Cycle>,
    finished_at: Option<Cycle>,
    txn_latency: LatencyStat,
    /// Most recent data beat received (for integrity checks).
    last_data: Payload,
}

impl ReadEngine {
    /// Creates a read engine for `total_bytes` from `base`.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not a positive multiple of the beat
    /// size, or `burst_beats` is zero.
    pub fn new(base: u64, total_bytes: u64, burst_beats: u32, size: BurstSize) -> Self {
        assert!(burst_beats > 0, "burst length must be non-zero");
        assert!(
            total_bytes > 0 && total_bytes.is_multiple_of(size.bytes()),
            "total bytes must be a positive multiple of the beat size"
        );
        Self {
            id: AxiId(0),
            base,
            total_beats: total_bytes / size.bytes(),
            burst_beats,
            size,
            max_outstanding: 4,
            issued_beats: 0,
            received_beats: 0,
            outstanding: 0,
            next_tag: 0,
            started_at: None,
            finished_at: None,
            txn_latency: LatencyStat::new(),
            last_data: Payload::new(),
        }
    }

    /// Sets the outstanding-request limit.
    pub fn max_outstanding(mut self, n: u32) -> Self {
        self.max_outstanding = n.max(1);
        self
    }

    /// Sets the AXI ID used on requests.
    pub fn id(mut self, id: AxiId) -> Self {
        self.id = id;
        self
    }

    /// Whether every requested beat has been received.
    pub fn is_done(&self) -> bool {
        self.received_beats >= self.total_beats
    }

    /// Cycle the first request was issued, if any.
    pub fn started_at(&self) -> Option<Cycle> {
        self.started_at
    }

    /// Cycle the final beat arrived, if done.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Per-burst latency distribution (AR issue to that burst's final
    /// beat, as stamped through the interconnect).
    pub fn txn_latency(&self) -> &LatencyStat {
        &self.txn_latency
    }

    /// Beats received so far.
    pub fn received_beats(&self) -> u64 {
        self.received_beats
    }

    /// The last data beat's payload (for integrity checks).
    pub fn last_data(&self) -> &[u8] {
        &self.last_data
    }

    /// Restarts the engine for another pass over the same region.
    pub fn restart(&mut self) {
        self.issued_beats = 0;
        self.received_beats = 0;
        self.outstanding = 0;
        self.started_at = None;
        self.finished_at = None;
    }

    /// Issues at most one request and consumes any arrived data beats.
    pub fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        // Issue.
        if self.issued_beats < self.total_beats
            && self.outstanding < self.max_outstanding
            && !port.ar.is_full()
        {
            let addr = self.base + self.issued_beats * self.size.bytes();
            let remaining = (self.total_beats - self.issued_beats) as u32;
            let len = clamp_to_4k(addr, self.burst_beats.min(remaining), self.size);
            let beat = ArBeat::new(addr, len, self.size)
                .with_id(self.id)
                .with_tag(self.next_tag)
                .with_issued_at(now);
            port.ar.push(now, beat).expect("checked space");
            self.next_tag += 1;
            self.issued_beats += len as u64;
            self.outstanding += 1;
            if self.started_at.is_none() {
                self.started_at = Some(now);
            }
            progress = true;
        }
        // Consume (up to one beat per cycle: a single R channel).
        if let Some(beat) = port.r.pop_ready(now) {
            self.received_beats += 1;
            self.last_data = beat.data;
            if beat.last {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.txn_latency.record(now.saturating_sub(beat.issued_at));
            }
            if self.received_beats >= self.total_beats {
                self.finished_at = Some(now);
            }
            progress = true;
        }
        progress
    }
}

/// A streaming write engine: writes `total_bytes` to `base` in bursts
/// of up to `burst_beats`, producing data via a fill function.
pub struct WriteEngine {
    id: AxiId,
    base: u64,
    total_beats: u64,
    burst_beats: u32,
    size: BurstSize,
    max_outstanding: u32,
    issued_beats: u64,
    /// W beats still to stream for already-issued AWs: (addr, last).
    w_backlog: sim::ring::Ring<(u64, bool)>,
    acked_bursts: u64,
    issued_bursts: u64,
    outstanding: u32,
    next_tag: u64,
    started_at: Option<Cycle>,
    finished_at: Option<Cycle>,
    txn_latency: LatencyStat,
    fill: Box<dyn FnMut(u64) -> u8 + Send>,
}

impl std::fmt::Debug for WriteEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteEngine")
            .field("base", &self.base)
            .field("issued_beats", &self.issued_beats)
            .field("acked_bursts", &self.acked_bursts)
            .field("outstanding", &self.outstanding)
            .finish()
    }
}

impl WriteEngine {
    /// Creates a write engine producing each byte via `fill(address)`.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not a positive multiple of the beat
    /// size, or `burst_beats` is zero.
    pub fn new(
        base: u64,
        total_bytes: u64,
        burst_beats: u32,
        size: BurstSize,
        fill: impl FnMut(u64) -> u8 + Send + 'static,
    ) -> Self {
        assert!(burst_beats > 0, "burst length must be non-zero");
        assert!(
            total_bytes > 0 && total_bytes.is_multiple_of(size.bytes()),
            "total bytes must be a positive multiple of the beat size"
        );
        Self {
            id: AxiId(0),
            base,
            total_beats: total_bytes / size.bytes(),
            burst_beats,
            size,
            max_outstanding: 4,
            issued_beats: 0,
            w_backlog: sim::ring::Ring::new(),
            acked_bursts: 0,
            issued_bursts: 0,
            outstanding: 0,
            next_tag: 0,
            started_at: None,
            finished_at: None,
            txn_latency: LatencyStat::new(),
            fill: Box::new(fill),
        }
    }

    /// Sets the outstanding-request limit.
    pub fn max_outstanding(mut self, n: u32) -> Self {
        self.max_outstanding = n.max(1);
        self
    }

    /// Sets the AXI ID used on requests.
    pub fn id(mut self, id: AxiId) -> Self {
        self.id = id;
        self
    }

    /// Whether every burst has been acknowledged.
    pub fn is_done(&self) -> bool {
        self.issued_beats >= self.total_beats
            && self.w_backlog.is_empty()
            && self.acked_bursts >= self.issued_bursts
    }

    /// Cycle the first request was issued, if any.
    pub fn started_at(&self) -> Option<Cycle> {
        self.started_at
    }

    /// Cycle the final acknowledgment arrived, if done.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Per-burst latency distribution (AW issue to its B response).
    pub fn txn_latency(&self) -> &LatencyStat {
        &self.txn_latency
    }

    /// Restarts the engine for another pass over the same region.
    pub fn restart(&mut self) {
        self.issued_beats = 0;
        self.w_backlog.clear();
        self.acked_bursts = 0;
        self.issued_bursts = 0;
        self.outstanding = 0;
        self.started_at = None;
        self.finished_at = None;
    }

    /// Issues at most one request, streams at most one W beat, and
    /// consumes any arrived responses.
    pub fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        // Issue the next burst's address.
        if self.issued_beats < self.total_beats
            && self.outstanding < self.max_outstanding
            && !port.aw.is_full()
        {
            let addr = self.base + self.issued_beats * self.size.bytes();
            let remaining = (self.total_beats - self.issued_beats) as u32;
            let len = clamp_to_4k(addr, self.burst_beats.min(remaining), self.size);
            let beat = AwBeat::new(addr, len, self.size)
                .with_id(self.id)
                .with_tag(self.next_tag)
                .with_issued_at(now);
            port.aw.push(now, beat).expect("checked space");
            self.next_tag += 1;
            for i in 0..len {
                let beat_addr = addr + i as u64 * self.size.bytes();
                self.w_backlog.push_back((beat_addr, i == len - 1));
            }
            self.issued_beats += len as u64;
            self.issued_bursts += 1;
            self.outstanding += 1;
            if self.started_at.is_none() {
                self.started_at = Some(now);
            }
            progress = true;
        }
        // Stream one W beat.
        if let Some(&(addr, last)) = self.w_backlog.front() {
            if !port.w.is_full() {
                let n = self.size.bytes() as usize;
                let fill = &mut self.fill;
                let data = Payload::from_fn(n, |b| fill(addr + b as u64));
                let beat = WBeat::new(data, last).with_issued_at(now);
                port.w.push(now, beat).expect("checked space");
                self.w_backlog.pop_front();
                progress = true;
            }
        }
        // Consume acknowledgments.
        if let Some(b) = port.b.pop_ready(now) {
            self.acked_bursts += 1;
            self.outstanding = self.outstanding.saturating_sub(1);
            self.txn_latency.record(now.saturating_sub(b.issued_at));
            if self.is_done() {
                self.finished_at = Some(now);
            }
            progress = true;
        }
        progress
    }
}

impl sim::persist::PersistValue for ReadEngine {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        self.id.save_value(w);
        w.put_u64(self.base);
        w.put_u64(self.total_beats);
        w.put_u32(self.burst_beats);
        self.size.save_value(w);
        w.put_u32(self.max_outstanding);
        w.put_u64(self.issued_beats);
        w.put_u64(self.received_beats);
        w.put_u32(self.outstanding);
        w.put_u64(self.next_tag);
        self.started_at.save_value(w);
        self.finished_at.save_value(w);
        self.txn_latency.save_value(w);
        self.last_data.save_value(w);
    }

    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            id: AxiId::load_value(r)?,
            base: r.take_u64()?,
            total_beats: r.take_u64()?,
            burst_beats: r.take_u32()?,
            size: BurstSize::load_value(r)?,
            max_outstanding: r.take_u32()?,
            issued_beats: r.take_u64()?,
            received_beats: r.take_u64()?,
            outstanding: r.take_u32()?,
            next_tag: r.take_u64()?,
            started_at: Option::load_value(r)?,
            finished_at: Option::load_value(r)?,
            txn_latency: LatencyStat::load_value(r)?,
            last_data: Payload::load_value(r)?,
        })
    }
}

/// The fill closure cannot be serialized, so the [`WriteEngine`]
/// restores in place: every plain field is overlaid from the snapshot
/// and the engine keeps the closure it was constructed with (models are
/// required to rebuild with the same configuration before restoring).
impl sim::persist::Persist for WriteEngine {
    fn save(&self, w: &mut sim::persist::SnapshotWriter) {
        use sim::persist::PersistValue;
        self.id.save_value(w);
        w.put_u64(self.base);
        w.put_u64(self.total_beats);
        w.put_u32(self.burst_beats);
        self.size.save_value(w);
        w.put_u32(self.max_outstanding);
        w.put_u64(self.issued_beats);
        self.w_backlog.save_value(w);
        w.put_u64(self.acked_bursts);
        w.put_u64(self.issued_bursts);
        w.put_u32(self.outstanding);
        w.put_u64(self.next_tag);
        self.started_at.save_value(w);
        self.finished_at.save_value(w);
        self.txn_latency.save_value(w);
    }

    fn restore(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        use sim::persist::PersistValue;
        self.id = AxiId::load_value(r)?;
        self.base = r.take_u64()?;
        self.total_beats = r.take_u64()?;
        self.burst_beats = r.take_u32()?;
        self.size = BurstSize::load_value(r)?;
        self.max_outstanding = r.take_u32()?;
        self.issued_beats = r.take_u64()?;
        self.w_backlog = sim::ring::Ring::load_value(r)?;
        self.acked_bursts = r.take_u64()?;
        self.issued_bursts = r.take_u64()?;
        self.outstanding = r.take_u32()?;
        self.next_tag = r.take_u64()?;
        self.started_at = Option::load_value(r)?;
        self.finished_at = Option::load_value(r)?;
        self.txn_latency = LatencyStat::load_value(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_within_page() {
        assert_eq!(clamp_to_4k(0, 16, BurstSize::B16), 16);
        // 0x0FC0 leaves 64 bytes = 4 beats of 16.
        assert_eq!(clamp_to_4k(0x0FC0, 16, BurstSize::B16), 4);
        // At a page boundary the full burst fits again.
        assert_eq!(clamp_to_4k(0x1000, 16, BurstSize::B16), 16);
    }

    #[test]
    fn clamp_never_returns_zero() {
        assert_eq!(clamp_to_4k(0x0FFC, 16, BurstSize::B4), 1);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn clamp_rejects_unaligned() {
        let _ = clamp_to_4k(0x0FFD, 4, BurstSize::B4);
    }

    #[test]
    fn read_engine_issues_until_outstanding_limit() {
        let mut eng = ReadEngine::new(0, 4096, 16, BurstSize::B4).max_outstanding(2);
        let mut port = AxiPort::default();
        for now in 0..10 {
            eng.tick(now, &mut port);
        }
        // Only 2 requests issued (limit), none completed.
        assert_eq!(port.ar.len(), 2);
        assert!(!eng.is_done());
    }

    #[test]
    fn read_engine_completes_on_all_beats() {
        let mut eng = ReadEngine::new(0, 64, 16, BurstSize::B4);
        let mut port = AxiPort::default();
        eng.tick(0, &mut port);
        let ar = port.ar.pop_ready(0).unwrap();
        assert_eq!(ar.len, 16);
        // Feed 16 beats back.
        for i in 0..16u32 {
            port.r
                .push(
                    i as u64,
                    axi::RBeat::new(AxiId(0), vec![0; 4], i == 15)
                        .with_tag(ar.tag)
                        .with_issued_at(ar.issued_at),
                )
                .unwrap();
        }
        for now in 0..40 {
            eng.tick(now, &mut port);
        }
        assert!(eng.is_done());
        assert_eq!(eng.received_beats(), 16);
        assert_eq!(eng.txn_latency().count(), 1);
        assert!(eng.finished_at().is_some());
    }

    #[test]
    fn read_engine_restart() {
        let mut eng = ReadEngine::new(0, 4, 1, BurstSize::B4);
        let mut port = AxiPort::default();
        eng.tick(0, &mut port);
        eng.restart();
        assert_eq!(eng.received_beats(), 0);
        assert!(eng.started_at().is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of the beat size")]
    fn read_engine_rejects_ragged_total() {
        let _ = ReadEngine::new(0, 65, 16, BurstSize::B4);
    }

    #[test]
    fn write_engine_streams_data_and_completes() {
        // 64 bytes of 4-byte beats in 8-beat bursts: two bursts.
        let mut eng = WriteEngine::new(0x100, 64, 8, BurstSize::B4, |addr| addr as u8);
        let mut port = AxiPort::default();
        for now in 0..40 {
            eng.tick(now, &mut port);
        }
        let aw0 = port.aw.pop_ready(40).unwrap();
        let aw1 = port.aw.pop_ready(40).unwrap();
        assert_eq!((aw0.len, aw1.len), (8, 8));
        assert_eq!(aw1.addr, 0x120);
        // All 16 beats streamed in order with correct fill and LAST at
        // each burst boundary.
        let mut beats = Vec::new();
        while let Some(w) = port.w.pop_ready(40) {
            beats.push(w);
        }
        assert_eq!(beats.len(), 16);
        assert!(beats[7].last && beats[15].last && !beats[8].last);
        assert_eq!(beats[1].data, vec![0x04, 0x05, 0x06, 0x07]);
        assert!(!eng.is_done());
        // Ack both bursts.
        for now in [41u64, 42] {
            port.b
                .push(now, axi::BBeat::new(AxiId(0)).with_issued_at(0))
                .unwrap();
        }
        for now in 43..60 {
            eng.tick(now, &mut port);
        }
        assert!(eng.is_done());
        assert_eq!(eng.txn_latency().count(), 2);
    }

    #[test]
    fn write_engine_one_w_beat_per_cycle() {
        let mut eng = WriteEngine::new(0, 64, 16, BurstSize::B4, |_| 0);
        let mut port = AxiPort::default();
        for now in 0..5 {
            eng.tick(now, &mut port);
        }
        // At most one W beat per cycle: 5 ticks -> at most 5 beats.
        assert!(port.w.len() <= 5);
    }

    #[test]
    fn engines_split_at_4k() {
        // Start 64 bytes before a page boundary with 16x16B bursts.
        let mut eng = ReadEngine::new(0x0FC0, 512, 16, BurstSize::B16).max_outstanding(8);
        let mut port = AxiPort::default();
        for now in 0..10 {
            eng.tick(now, &mut port);
        }
        let first = port.ar.pop_ready(10).unwrap();
        assert_eq!(first.len, 4, "clamped at the 4 KiB boundary");
        let second = port.ar.pop_ready(10).unwrap();
        assert_eq!(second.addr, 0x1000);
        assert_eq!(second.len, 16);
    }
}
