//! A Xilinx-AXI-DMA-like engine — the paper's `HA_DMA`.
//!
//! The paper uses AXI DMAs as representative accelerators because they
//! "can mimic the behavior on the bus of many HAs" and saturate the
//! platform's memory bandwidth (§VI-B). This model moves a configurable
//! amount of data per *job* (the case study uses 4 MiB read + 4 MiB
//! written back) with deep outstanding pipelining, and reports completed
//! jobs — the paper's DMA performance index is jobs per second.

use axi::types::{AxiId, BurstSize};
use axi::AxiPort;
use sim::stats::LatencyStat;
use sim::Cycle;

use crate::engine::{ReadEngine, WriteEngine};
use crate::Accelerator;

/// Configuration of a [`Dma`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaConfig {
    /// Source region base address (4 KiB aligned recommended).
    pub src_base: u64,
    /// Destination region base address.
    pub dst_base: u64,
    /// Bytes read from the source per job (0 disables the read stream).
    pub read_bytes: u64,
    /// Bytes written to the destination per job (0 disables writes).
    pub write_bytes: u64,
    /// Burst length in beats.
    pub burst_beats: u32,
    /// Beat size.
    pub size: BurstSize,
    /// Outstanding requests per direction — DMAs are greedy.
    pub max_outstanding: u32,
    /// Number of jobs to run (`None` = free-running).
    pub jobs: Option<u64>,
}

impl DmaConfig {
    /// The paper's case-study `HA_DMA`: move 4 MiB in and 4 MiB out per
    /// job with maximum-length bursts and deep pipelining — the paper
    /// notes this DMA "is more greedy in accessing the bus" than the
    /// DNN accelerator, which is exactly what lets it monopolize a
    /// plain round-robin interconnect.
    pub fn case_study() -> Self {
        Self {
            src_base: 0x1000_0000,
            dst_base: 0x2000_0000,
            read_bytes: 4 << 20,
            write_bytes: 4 << 20,
            burst_beats: 256,
            size: BurstSize::B16,
            max_outstanding: 8,
            jobs: None,
        }
    }

    /// A pure-read DMA of `bytes` (used for the Fig. 3(b) access-time
    /// sweep).
    pub fn reader(bytes: u64, burst_beats: u32, size: BurstSize) -> Self {
        Self {
            src_base: 0x1000_0000,
            dst_base: 0,
            read_bytes: bytes,
            write_bytes: 0,
            burst_beats,
            size,
            max_outstanding: 8,
            jobs: Some(1),
        }
    }

    /// Limits the number of jobs.
    pub fn jobs(mut self, jobs: u64) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Sets the outstanding-request limit per direction.
    pub fn max_outstanding(mut self, n: u32) -> Self {
        self.max_outstanding = n;
        self
    }
}

/// The DMA model. Each job reads `read_bytes` from the source region
/// and independently writes `write_bytes` to the destination region;
/// the job completes when both streams finish.
///
/// # Example
///
/// ```
/// use axi::types::BurstSize;
/// use ha::dma::{Dma, DmaConfig};
/// use ha::Accelerator;
///
/// let dma = Dma::new("probe", DmaConfig::reader(4096, 16, BurstSize::B16));
/// assert_eq!(dma.name(), "probe");
/// assert!(!dma.is_done());
/// ```
pub struct Dma {
    name: String,
    config: DmaConfig,
    reader: Option<ReadEngine>,
    writer: Option<WriteEngine>,
    jobs_completed: u64,
    job_started_at: Option<Cycle>,
    job_latency: LatencyStat,
}

impl std::fmt::Debug for Dma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dma")
            .field("name", &self.name)
            .field("jobs_completed", &self.jobs_completed)
            .finish()
    }
}

impl Dma {
    /// Creates a DMA with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if both streams are disabled (`read_bytes == 0` and
    /// `write_bytes == 0`).
    pub fn new(name: impl Into<String>, config: DmaConfig) -> Self {
        assert!(
            config.read_bytes > 0 || config.write_bytes > 0,
            "a DMA must read or write something"
        );
        let mut dma = Self {
            name: name.into(),
            config,
            reader: None,
            writer: None,
            jobs_completed: 0,
            job_started_at: None,
            job_latency: LatencyStat::new(),
        };
        dma.arm();
        dma
    }

    fn arm(&mut self) {
        let c = &self.config;
        self.reader = (c.read_bytes > 0).then(|| {
            ReadEngine::new(c.src_base, c.read_bytes, c.burst_beats, c.size)
                .max_outstanding(c.max_outstanding)
                .id(AxiId(0))
        });
        let dst = c.dst_base;
        self.writer = (c.write_bytes > 0).then(|| {
            WriteEngine::new(dst, c.write_bytes, c.burst_beats, c.size, move |addr| {
                mem::backing::pattern_byte(addr)
            })
            .max_outstanding(c.max_outstanding)
            .id(AxiId(1))
        });
        self.job_started_at = None;
    }

    /// Per-job completion-time distribution, in cycles.
    pub fn job_latency(&self) -> &LatencyStat {
        &self.job_latency
    }

    /// Per-read-burst latency distribution of the current/last job.
    pub fn read_txn_latency(&self) -> Option<&LatencyStat> {
        self.reader.as_ref().map(ReadEngine::txn_latency)
    }

    /// The configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }

    fn streams_done(&self) -> bool {
        self.reader.as_ref().is_none_or(ReadEngine::is_done)
            && self.writer.as_ref().is_none_or(WriteEngine::is_done)
    }
}

impl Accelerator for Dma {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if self.is_done() {
            return false;
        }
        if self.job_started_at.is_none() {
            self.job_started_at = Some(now);
        }
        let mut progress = false;
        if let Some(r) = self.reader.as_mut() {
            progress |= r.tick(now, port);
        }
        if let Some(w) = self.writer.as_mut() {
            progress |= w.tick(now, port);
        }
        if self.streams_done() {
            self.jobs_completed += 1;
            let started = self.job_started_at.expect("job was started");
            self.job_latency.record(now.saturating_sub(started));
            if !self.is_done() {
                // Immediately start the next job (greedy back-to-back).
                if let Some(r) = self.reader.as_mut() {
                    r.restart();
                }
                if let Some(w) = self.writer.as_mut() {
                    w.restart();
                }
                self.job_started_at = None;
            }
            progress = true;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        self.config
            .jobs
            .is_some_and(|jobs| self.jobs_completed >= jobs)
    }

    fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: the greedy engines issue whenever the port has
        // space and otherwise wait for responses, so only port traffic
        // (covered by the interconnect's hint) can wake a blocked DMA.
        None
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        use sim::persist::{Persist, PersistValue};
        self.reader.save_value(w);
        // The write engine carries a fill closure, so only its plain
        // state goes to the stream; presence is recorded explicitly.
        w.put_bool(self.writer.is_some());
        if let Some(eng) = self.writer.as_ref() {
            eng.save(w);
        }
        w.put_u64(self.jobs_completed);
        self.job_started_at.save_value(w);
        self.job_latency.save_value(w);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        use sim::persist::{Persist, PersistError, PersistValue};
        self.reader = Option::load_value(r)?;
        let has_writer = r.take_bool()?;
        match (has_writer, self.writer.as_mut()) {
            (true, Some(eng)) => eng.restore(r)?,
            (false, _) => self.writer = None,
            (true, None) => {
                // The snapshot had a write stream but this instance was
                // configured without one: the fill closure cannot be
                // reconstructed from bytes.
                return Err(PersistError::ShapeMismatch("dma write stream"));
            }
        }
        self.jobs_completed = r.take_u64()?;
        self.job_started_at = Option::load_value(r)?;
        self.job_latency = LatencyStat::load_value(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::AxiInterconnect;
    use hyperconnect::{HcConfig, HyperConnect};
    use mem::{MemConfig, MemoryController};
    use sim::Component;

    /// Drives a single DMA through a HyperConnect into a memory model.
    fn run_system(dma: &mut Dma, cycles: Cycle) -> (MemoryController, u64) {
        let mut hc = HyperConnect::new(HcConfig::new(1));
        let mut ctrl = MemoryController::new(MemConfig::default());
        ctrl.memory_mut().fill_pattern(
            dma.config().src_base,
            dma.config().read_bytes.max(64) as usize,
        );
        let mut finished_at = 0;
        for now in 0..cycles {
            dma.tick(now, hc.port(0));
            hc.tick(now);
            ctrl.tick(now, hc.mem_port());
            if dma.is_done() && finished_at == 0 {
                finished_at = now;
                break;
            }
        }
        (ctrl, finished_at)
    }

    #[test]
    fn single_job_reader_completes() {
        let mut dma = Dma::new("rd", DmaConfig::reader(4096, 16, BurstSize::B16));
        let (_, finished) = run_system(&mut dma, 20_000);
        assert!(finished > 0, "reader never finished");
        assert_eq!(dma.jobs_completed(), 1);
        assert_eq!(dma.job_latency().count(), 1);
    }

    #[test]
    fn copy_job_writes_pattern_to_memory() {
        let cfg = DmaConfig {
            src_base: 0x10_0000,
            dst_base: 0x20_0000,
            read_bytes: 1024,
            write_bytes: 1024,
            burst_beats: 16,
            size: BurstSize::B16,
            max_outstanding: 4,
            jobs: Some(1),
        };
        let mut dma = Dma::new("copy", cfg);
        let (ctrl, finished) = run_system(&mut dma, 50_000);
        assert!(finished > 0);
        // The write stream fills the destination with the pattern keyed
        // by destination address.
        assert!(ctrl.memory().verify_pattern(0x20_0000, 0x20_0000, 1024));
    }

    #[test]
    fn free_running_dma_repeats_jobs() {
        let cfg = DmaConfig {
            read_bytes: 256,
            write_bytes: 0,
            jobs: None,
            ..DmaConfig::case_study()
        };
        let mut dma = Dma::new("loop", cfg);
        let mut hc = HyperConnect::new(HcConfig::new(1));
        let mut ctrl = MemoryController::new(MemConfig::default());
        for now in 0..20_000 {
            dma.tick(now, hc.port(0));
            hc.tick(now);
            ctrl.tick(now, hc.mem_port());
        }
        assert!(dma.jobs_completed() > 5, "only {}", dma.jobs_completed());
        assert!(!dma.is_done());
    }

    #[test]
    fn job_limit_respected() {
        let cfg = DmaConfig::reader(64, 16, BurstSize::B16).jobs(3);
        let mut dma = Dma::new("lim", cfg);
        let mut hc = HyperConnect::new(HcConfig::new(1));
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        for now in 0..50_000 {
            dma.tick(now, hc.port(0));
            hc.tick(now);
            ctrl.tick(now, hc.mem_port());
        }
        assert_eq!(dma.jobs_completed(), 3);
        assert!(dma.is_done());
    }

    #[test]
    #[should_panic(expected = "read or write")]
    fn empty_dma_panics() {
        let cfg = DmaConfig {
            read_bytes: 0,
            write_bytes: 0,
            ..DmaConfig::case_study()
        };
        let _ = Dma::new("nil", cfg);
    }
}
