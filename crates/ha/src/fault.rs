//! Misbehaving bus masters for fault-injection experiments.
//!
//! The paper's hypervisor-level argument (§III, §V) is that an FPGA SoC
//! interconnect must stay predictable *even when an accelerator
//! misbehaves* — a buggy or malicious HA must not be able to take the
//! bus down or starve the other ports. These models deliberately break
//! the AXI rules a well-behaved master honors, one rule per model:
//!
//! * [`RogueReader`] — reads from addresses outside the decoded range;
//! * [`BoundaryViolator`] — INCR bursts that cross 4 KiB boundaries;
//! * [`WlastViolator`] — write data with WLAST in the wrong position;
//! * [`StalledWriter`] — posts write addresses, then never drives W;
//! * [`RunawayMaster`] — issues reads as fast as the port accepts them,
//!   ignoring any declared in-flight envelope.
//!
//! All of them keep consuming responses (except where hanging *is* the
//! fault), so the misbehavior under test is isolated.
//!
//! Every model also implements [`Accelerator::reset`] for the recovery
//! experiments: by default a reset *cures* the fault (the model either
//! goes quiet or, where it makes sense, resumes protocol-compliant
//! operation), while the `permanent()` builder makes the fault survive
//! resets — the path that drives a recovery campaign into permanent
//! quarantine.

use axi::types::{AxiId, BurstSize};
use axi::{ArBeat, AwBeat, AxiPort, WBeat};
use sim::Cycle;

use crate::Accelerator;

/// A master that reads from addresses beyond the decoded range, so
/// every burst earns a DECERR. Models a misprogrammed DMA pointer or a
/// malicious scatter list.
#[derive(Debug)]
pub struct RogueReader {
    name: String,
    /// First illegal address to read (caller picks something at or past
    /// the memory's decode limit).
    rogue_base: u64,
    burst_beats: u32,
    size: BurstSize,
    max_outstanding: u32,
    outstanding: u32,
    next_tag: u64,
    bursts_completed: u64,
    error_responses: u64,
    permanent: bool,
    cured: bool,
    resets: u64,
}

impl RogueReader {
    /// Creates a rogue reader issuing `burst_beats`-beat bursts at
    /// `rogue_base` (an address the caller knows is not decoded).
    pub fn new(
        name: impl Into<String>,
        rogue_base: u64,
        burst_beats: u32,
        size: BurstSize,
    ) -> Self {
        Self {
            name: name.into(),
            rogue_base,
            burst_beats: burst_beats.max(1),
            size,
            max_outstanding: 2,
            outstanding: 0,
            next_tag: 0,
            bursts_completed: 0,
            error_responses: 0,
            permanent: false,
            cured: false,
            resets: 0,
        }
    }

    /// Makes the fault survive resets (broken hardware, not a
    /// recoverable glitch).
    pub fn permanent(mut self) -> Self {
        self.permanent = true;
        self
    }

    /// Error responses (SLVERR/DECERR) observed on completed bursts.
    pub fn error_responses(&self) -> u64 {
        self.error_responses
    }

    /// Resets this model has been through.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

impl Accelerator for RogueReader {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        if !self.cured && self.outstanding < self.max_outstanding && !port.ar.is_full() {
            let beat = ArBeat::new(self.rogue_base, self.burst_beats, self.size)
                .with_id(AxiId(0xE0))
                .with_tag(self.next_tag)
                .with_issued_at(now);
            port.ar.push(now, beat).expect("checked space");
            self.next_tag += 1;
            self.outstanding += 1;
            progress = true;
        }
        while let Some(beat) = port.r.pop_ready(now) {
            if !beat.resp.is_ok() {
                self.error_responses += 1;
            }
            if beat.last {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.bursts_completed += 1;
            }
            progress = true;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        self.bursts_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: issues whenever the port has space, otherwise
        // waits on responses — both covered by the interconnect's hint.
        None
    }

    fn reset(&mut self) {
        self.resets += 1;
        self.outstanding = 0;
        self.cured = !self.permanent;
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u32(self.outstanding);
        w.put_u64(self.next_tag);
        w.put_u64(self.bursts_completed);
        w.put_u64(self.error_responses);
        w.put_bool(self.permanent);
        w.put_bool(self.cured);
        w.put_u64(self.resets);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.outstanding = r.take_u32()?;
        self.next_tag = r.take_u64()?;
        self.bursts_completed = r.take_u64()?;
        self.error_responses = r.take_u64()?;
        self.permanent = r.take_bool()?;
        self.cured = r.take_bool()?;
        self.resets = r.take_u64()?;
        Ok(())
    }
}

/// A master whose INCR read bursts straddle 4 KiB boundaries — the AXI
/// rule every compliant master must honor (A3.4.1). Models a burst
/// engine missing its boundary-clamp logic.
#[derive(Debug)]
pub struct BoundaryViolator {
    name: String,
    base: u64,
    burst_beats: u32,
    size: BurstSize,
    outstanding: u32,
    next_tag: u64,
    bursts_completed: u64,
    permanent: bool,
    cured: bool,
    resets: u64,
}

impl BoundaryViolator {
    /// Creates a violator anchored near the end of the 4 KiB page that
    /// contains `base` — each burst starts `burst_beats / 2` beats
    /// before the boundary, guaranteeing a crossing.
    pub fn new(name: impl Into<String>, base: u64, burst_beats: u32, size: BurstSize) -> Self {
        let beats = burst_beats.max(2);
        let page_end = (base | 0xFFF) + 1;
        let start = page_end - (beats as u64 / 2) * size.bytes();
        Self {
            name: name.into(),
            base: start,
            burst_beats: beats,
            size,
            outstanding: 0,
            next_tag: 0,
            bursts_completed: 0,
            permanent: false,
            cured: false,
            resets: 0,
        }
    }

    /// Makes the fault survive resets.
    pub fn permanent(mut self) -> Self {
        self.permanent = true;
        self
    }

    /// Resets this model has been through.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

impl Accelerator for BoundaryViolator {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        if !self.cured && self.outstanding < 1 && !port.ar.is_full() {
            let beat = ArBeat::new(self.base, self.burst_beats, self.size)
                .with_id(AxiId(0xE1))
                .with_tag(self.next_tag)
                .with_issued_at(now);
            port.ar.push(now, beat).expect("checked space");
            self.next_tag += 1;
            self.outstanding += 1;
            progress = true;
        }
        while let Some(beat) = port.r.pop_ready(now) {
            if beat.last {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.bursts_completed += 1;
            }
            progress = true;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        self.bursts_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: issues whenever the port has space, otherwise
        // waits on responses — both covered by the interconnect's hint.
        None
    }

    fn reset(&mut self) {
        self.resets += 1;
        self.outstanding = 0;
        self.cured = !self.permanent;
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u32(self.outstanding);
        w.put_u64(self.next_tag);
        w.put_u64(self.bursts_completed);
        w.put_bool(self.permanent);
        w.put_bool(self.cured);
        w.put_u64(self.resets);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.outstanding = r.take_u32()?;
        self.next_tag = r.take_u64()?;
        self.bursts_completed = r.take_u64()?;
        self.permanent = r.take_bool()?;
        self.cured = r.take_bool()?;
        self.resets = r.take_u64()?;
        Ok(())
    }
}

/// A writer that supplies the right number of W beats but asserts WLAST
/// in the wrong place: one beat early, and never on the true final
/// beat. Models an off-by-one in a streaming pipeline's end-of-frame
/// logic.
#[derive(Debug)]
pub struct WlastViolator {
    name: String,
    base: u64,
    burst_beats: u32,
    size: BurstSize,
    /// Beats of the current burst still to drive (0 = need a new AW).
    w_left: u32,
    in_flight: bool,
    next_tag: u64,
    bursts_completed: u64,
    permanent: bool,
    cured: bool,
    resets: u64,
}

impl WlastViolator {
    /// Creates a WLAST violator writing `burst_beats`-beat bursts at
    /// `base` (at least 2 beats, so "one early" is distinct from the
    /// real end).
    pub fn new(name: impl Into<String>, base: u64, burst_beats: u32, size: BurstSize) -> Self {
        Self {
            name: name.into(),
            base,
            burst_beats: burst_beats.max(2),
            size,
            w_left: 0,
            in_flight: false,
            next_tag: 0,
            bursts_completed: 0,
            permanent: false,
            cured: false,
            resets: 0,
        }
    }

    /// Makes the fault survive resets.
    pub fn permanent(mut self) -> Self {
        self.permanent = true;
        self
    }

    /// Resets this model has been through.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

impl Accelerator for WlastViolator {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        if !self.in_flight && !port.aw.is_full() {
            let beat = AwBeat::new(self.base, self.burst_beats, self.size)
                .with_id(AxiId(0xE2))
                .with_tag(self.next_tag)
                .with_issued_at(now);
            port.aw.push(now, beat).expect("checked space");
            self.next_tag += 1;
            self.w_left = self.burst_beats;
            self.in_flight = true;
            progress = true;
        }
        if self.w_left > 0 && !port.w.is_full() {
            // The bug: LAST goes on the second-to-last beat instead of
            // the last one. A cured model places it correctly — this is
            // the one fault master that resumes nominal operation after
            // a recovery reset instead of going quiet.
            let last = if self.cured {
                self.w_left == 1
            } else {
                self.w_left == 2
            };
            let beat = WBeat::new(
                axi::Payload::from_fn(self.size.bytes() as usize, |_| 0xAB),
                last,
            );
            port.w.push(now, beat).expect("checked space");
            self.w_left -= 1;
            progress = true;
        }
        while let Some(_b) = port.b.pop_ready(now) {
            self.in_flight = false;
            self.bursts_completed += 1;
            progress = true;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        self.bursts_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: issues whenever the port has space, otherwise
        // waits on responses — both covered by the interconnect's hint.
        None
    }

    fn reset(&mut self) {
        self.resets += 1;
        self.w_left = 0;
        self.in_flight = false;
        self.cured = !self.permanent;
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u32(self.w_left);
        w.put_bool(self.in_flight);
        w.put_u64(self.next_tag);
        w.put_u64(self.bursts_completed);
        w.put_bool(self.permanent);
        w.put_bool(self.cured);
        w.put_u64(self.resets);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.w_left = r.take_u32()?;
        self.in_flight = r.take_bool()?;
        self.next_tag = r.take_u64()?;
        self.bursts_completed = r.take_u64()?;
        self.permanent = r.take_bool()?;
        self.cured = r.take_bool()?;
        self.resets = r.take_u64()?;
        Ok(())
    }
}

/// A writer that posts a write address and then never drives a single W
/// beat — the classic hung-handshake fault that wedges an unprotected
/// interconnect (the granted write blocks every later write at the
/// arbiter). Models a crashed accelerator kernel.
#[derive(Debug)]
pub struct StalledWriter {
    name: String,
    base: u64,
    burst_beats: u32,
    size: BurstSize,
    posted: bool,
    permanent: bool,
    cured: bool,
    resets: u64,
}

impl StalledWriter {
    /// Creates a stalled writer that will post one `burst_beats`-beat
    /// write address at `base` and then hang forever.
    pub fn new(name: impl Into<String>, base: u64, burst_beats: u32, size: BurstSize) -> Self {
        Self {
            name: name.into(),
            base,
            burst_beats: burst_beats.max(1),
            size,
            posted: false,
            permanent: false,
            cured: false,
            resets: 0,
        }
    }

    /// Makes the fault survive resets: the model re-posts its hung
    /// write address after every reset.
    pub fn permanent(mut self) -> Self {
        self.permanent = true;
        self
    }

    /// Resets this model has been through.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

impl Accelerator for StalledWriter {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if !self.cured && !self.posted && !port.aw.is_full() {
            let beat = AwBeat::new(self.base, self.burst_beats, self.size)
                .with_id(AxiId(0xE3))
                .with_issued_at(now);
            port.aw.push(now, beat).expect("checked space");
            self.posted = true;
            return true;
        }
        // Never drives W; drains nothing. The hang is the workload.
        false
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        0
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: issues whenever the port has space, otherwise
        // waits on responses — both covered by the interconnect's hint.
        None
    }

    fn reset(&mut self) {
        self.resets += 1;
        // Clearing `posted` lets a *permanent* model re-post its hung
        // AW after reattach; a cured one stays quiet (the issue gate).
        self.posted = false;
        self.cured = !self.permanent;
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_bool(self.posted);
        w.put_bool(self.permanent);
        w.put_bool(self.cured);
        w.put_u64(self.resets);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.posted = r.take_bool()?;
        self.permanent = r.take_bool()?;
        self.cured = r.take_bool()?;
        self.resets = r.take_u64()?;
        Ok(())
    }
}

/// A master that issues read bursts every cycle the port accepts one,
/// with no self-imposed outstanding limit — a runaway issue rate that
/// blows through any in-flight envelope the accelerator declared to the
/// hypervisor. Models a control-loop bug re-triggering a DMA
/// descriptor.
#[derive(Debug)]
pub struct RunawayMaster {
    name: String,
    base: u64,
    region_bytes: u64,
    burst_beats: u32,
    size: BurstSize,
    cursor: u64,
    next_tag: u64,
    bursts_completed: u64,
    permanent: bool,
    cured: bool,
    resets: u64,
}

impl RunawayMaster {
    /// Creates a runaway reader sweeping `region_bytes` at `base`.
    pub fn new(
        name: impl Into<String>,
        base: u64,
        region_bytes: u64,
        burst_beats: u32,
        size: BurstSize,
    ) -> Self {
        let beats = burst_beats.max(1);
        Self {
            name: name.into(),
            base,
            region_bytes: region_bytes.max(beats as u64 * size.bytes()),
            burst_beats: beats,
            size,
            cursor: 0,
            next_tag: 0,
            bursts_completed: 0,
            permanent: false,
            cured: false,
            resets: 0,
        }
    }

    /// Makes the fault survive resets.
    pub fn permanent(mut self) -> Self {
        self.permanent = true;
        self
    }

    /// Resets this model has been through.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

impl Accelerator for RunawayMaster {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        // No outstanding check at all: push until the queue refuses.
        while !self.cured && !port.ar.is_full() {
            let addr = self.base + self.cursor;
            let beat = ArBeat::new(addr, self.burst_beats, self.size)
                .with_id(AxiId(0xE4))
                .with_tag(self.next_tag)
                .with_issued_at(now);
            port.ar.push(now, beat).expect("checked space");
            self.next_tag += 1;
            self.cursor =
                (self.cursor + self.burst_beats as u64 * self.size.bytes()) % self.region_bytes;
            progress = true;
        }
        while let Some(beat) = port.r.pop_ready(now) {
            if beat.last {
                self.bursts_completed += 1;
            }
            progress = true;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        self.bursts_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: issues whenever the port has space, otherwise
        // waits on responses — both covered by the interconnect's hint.
        None
    }

    fn reset(&mut self) {
        self.resets += 1;
        self.cursor = 0;
        self.cured = !self.permanent;
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u64(self.cursor);
        w.put_u64(self.next_tag);
        w.put_u64(self.bursts_completed);
        w.put_bool(self.permanent);
        w.put_bool(self.cured);
        w.put_u64(self.resets);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.cursor = r.take_u64()?;
        self.next_tag = r.take_u64()?;
        self.bursts_completed = r.take_u64()?;
        self.permanent = r.take_bool()?;
        self.cured = r.take_bool()?;
        self.resets = r.take_u64()?;
        Ok(())
    }
}

/// A fault model that stays dormant until an arm cycle, then behaves
/// exactly like the wrapped model — the building block of the forking
/// chaos campaign service: a scenario is warmed fault-free to a common
/// snapshot point, and each forked variant arms the fault at its own
/// seed-derived cycle.
///
/// The arm cycle is *configuration*, like a scheduler mode: it is not
/// part of the persisted state stream, so a snapshot taken while the
/// fault is dormant restores into a wrapper constructed with any other
/// arm cycle. Two variants forked from the same warm snapshot therefore
/// share byte-identical state and differ only in when the inner model
/// first ticks.
pub struct DelayedFault {
    inner: Box<dyn Accelerator>,
    arm_at: Cycle,
}

impl DelayedFault {
    /// Wraps `inner`, keeping it dormant until cycle `arm_at`.
    pub fn new(inner: Box<dyn Accelerator>, arm_at: Cycle) -> Self {
        Self { inner, arm_at }
    }

    /// The cycle the wrapped fault first ticks at.
    pub fn arm_cycle(&self) -> Cycle {
        self.arm_at
    }
}

impl std::fmt::Debug for DelayedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayedFault")
            .field("inner", &self.inner.name())
            .field("arm_at", &self.arm_at)
            .finish()
    }
}

impl Accelerator for DelayedFault {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if now < self.arm_at {
            return false;
        }
        self.inner.tick(now, port)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn jobs_completed(&self) -> u64 {
        self.inner.jobs_completed()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if now < self.arm_at {
            // Dormant: nothing can happen before the arm cycle.
            return Some(self.arm_at);
        }
        self.inner.next_event(now)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    /// Only the wrapped model's state travels — `arm_at` is
    /// configuration, re-supplied at construction by whoever restores.
    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        self.inner.save_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.inner.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::burst::crosses_4k;

    #[test]
    fn delayed_fault_is_dormant_then_faithful() {
        let mut delayed = DelayedFault::new(
            Box::new(StalledWriter::new("stall", 0x100, 8, BurstSize::B4)),
            10,
        );
        let mut port = AxiPort::new(axi::PortConfig::wire());
        for now in 0..10 {
            assert!(!delayed.tick(now, &mut port));
        }
        assert!(port.aw.pop_ready(9).is_none(), "dormant fault is silent");
        assert_eq!(delayed.next_event(5), Some(10));
        delayed.tick(10, &mut port);
        assert!(port.aw.pop_ready(10).is_some(), "armed fault posts its AW");
    }

    #[test]
    fn delayed_fault_state_is_arm_cycle_independent() {
        use sim::persist::{SnapshotReader, SnapshotWriter};
        let early = DelayedFault::new(
            Box::new(RogueReader::new("rogue", 0x8000_0000, 4, BurstSize::B4)),
            100,
        );
        let mut w = SnapshotWriter::new();
        early.save_state(&mut w);
        let bytes = w.into_bytes();
        // A wrapper with a different arm cycle accepts the stream.
        let mut late = DelayedFault::new(
            Box::new(RogueReader::new("rogue", 0x8000_0000, 4, BurstSize::B4)),
            5_000,
        );
        late.restore_state(&mut SnapshotReader::new(&bytes))
            .unwrap();
        assert_eq!(late.arm_cycle(), 5_000);
        let mut w2 = SnapshotWriter::new();
        late.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "state stream is arm-independent");
    }

    #[test]
    fn rogue_reader_targets_its_rogue_base() {
        let mut rogue = RogueReader::new("rogue", 0x8000_0000, 4, BurstSize::B4);
        let mut port = AxiPort::new(axi::PortConfig::wire());
        rogue.tick(0, &mut port);
        let ar = port.ar.pop_ready(0).unwrap();
        assert_eq!(ar.addr, 0x8000_0000);
        // An error response is counted.
        port.r
            .push(
                0,
                axi::RBeat::new(ar.id, vec![0; 4], true).with_resp(axi::types::Resp::DecErr),
            )
            .unwrap();
        rogue.tick(1, &mut port);
        assert_eq!(rogue.error_responses(), 1);
        assert_eq!(rogue.jobs_completed(), 1);
    }

    #[test]
    fn boundary_violator_always_crosses() {
        let mut bad = BoundaryViolator::new("cross", 0x10_0000, 16, BurstSize::B4);
        let mut port = AxiPort::new(axi::PortConfig::wire());
        bad.tick(0, &mut port);
        let ar = port.ar.pop_ready(0).unwrap();
        assert!(crosses_4k(ar.addr, ar.len, ar.size), "{:#x}", ar.addr);
    }

    #[test]
    fn wlast_violator_marks_wrong_beat() {
        let mut bad = WlastViolator::new("wlast", 0, 4, BurstSize::B4);
        let mut port = AxiPort::new(axi::PortConfig::wire());
        for now in 0..8 {
            bad.tick(now, &mut port);
        }
        assert!(port.aw.pop_ready(8).is_some());
        let lasts: Vec<bool> = std::iter::from_fn(|| port.w.pop_ready(8))
            .map(|w| w.last)
            .collect();
        // 4 beats, LAST on the third (one early), none on the fourth.
        assert_eq!(lasts, vec![false, false, true, false]);
    }

    #[test]
    fn stalled_writer_posts_aw_and_nothing_else() {
        let mut bad = StalledWriter::new("stall", 0x100, 8, BurstSize::B4);
        let mut port = AxiPort::new(axi::PortConfig::wire());
        for now in 0..50 {
            bad.tick(now, &mut port);
        }
        assert!(port.aw.pop_ready(50).is_some());
        assert!(port.aw.pop_ready(50).is_none(), "only one AW");
        assert!(port.w.pop_ready(50).is_none(), "never drives W");
    }

    #[test]
    fn runaway_fills_the_address_queue() {
        let mut bad = RunawayMaster::new("runaway", 0, 1 << 16, 4, BurstSize::B4);
        let mut port = AxiPort::new(axi::PortConfig::wire());
        bad.tick(0, &mut port);
        assert!(port.ar.is_full(), "pushes until the port refuses");
    }

    #[test]
    fn reset_cures_a_stalled_writer() {
        let mut bad = StalledWriter::new("stall", 0x100, 8, BurstSize::B4);
        let mut port = AxiPort::new(axi::PortConfig::wire());
        bad.tick(0, &mut port);
        assert!(port.aw.pop_ready(0).is_some());
        bad.reset();
        assert_eq!(bad.resets(), 1);
        for now in 1..20 {
            bad.tick(now, &mut port);
        }
        assert!(port.aw.pop_ready(20).is_none(), "cured model goes quiet");
    }

    #[test]
    fn permanent_stalled_writer_reposts_after_reset() {
        let mut bad = StalledWriter::new("stall", 0x100, 8, BurstSize::B4).permanent();
        let mut port = AxiPort::new(axi::PortConfig::wire());
        bad.tick(0, &mut port);
        assert!(port.aw.pop_ready(0).is_some());
        bad.reset();
        bad.tick(1, &mut port);
        assert!(
            port.aw.pop_ready(1).is_some(),
            "permanent fault re-posts its hung AW"
        );
    }

    #[test]
    fn reset_makes_wlast_violator_protocol_compliant() {
        let mut bad = WlastViolator::new("wlast", 0, 4, BurstSize::B4);
        bad.reset();
        assert_eq!(bad.resets(), 1);
        let mut port = AxiPort::new(axi::PortConfig::wire());
        for now in 0..8 {
            bad.tick(now, &mut port);
        }
        assert!(port.aw.pop_ready(8).is_some());
        let lasts: Vec<bool> = std::iter::from_fn(|| port.w.pop_ready(8))
            .map(|w| w.last)
            .collect();
        // Cured: LAST lands on the true final beat.
        assert_eq!(lasts, vec![false, false, false, true]);
    }

    #[test]
    fn permanent_faults_survive_reset() {
        let mut rogue = RogueReader::new("rogue", 0x8000_0000, 4, BurstSize::B4).permanent();
        rogue.reset();
        let mut port = AxiPort::new(axi::PortConfig::wire());
        rogue.tick(0, &mut port);
        assert!(
            port.ar.pop_ready(0).is_some(),
            "permanently broken reader keeps issuing rogue reads"
        );

        let mut runaway = RunawayMaster::new("runaway", 0, 1 << 16, 4, BurstSize::B4);
        runaway.reset();
        let mut port = AxiPort::new(axi::PortConfig::wire());
        runaway.tick(0, &mut port);
        assert!(
            port.ar.pop_ready(0).is_none(),
            "cured runaway stops issuing"
        );
    }
}
