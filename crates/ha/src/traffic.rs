//! Synthetic traffic generators for the fairness and reservation
//! ablation experiments.

use axi::types::{AxiId, BurstSize};
use axi::AxiPort;
use sim::{Cycle, SimRng};

use crate::engine::{clamp_to_4k, ReadEngine};
use crate::Accelerator;

/// A periodic reader: issues one read burst, waits for it to complete,
/// idles `gap_cycles`, repeats — models a well-behaved real-time HA
/// with a bounded bandwidth demand.
#[derive(Debug)]
pub struct PeriodicReader {
    name: String,
    base: u64,
    region_bytes: u64,
    burst_beats: u32,
    size: BurstSize,
    gap_cycles: Cycle,
    cursor: u64,
    engine: Option<ReadEngine>,
    idle_until: Cycle,
    bursts_completed: u64,
}

impl PeriodicReader {
    /// Creates a periodic reader cycling through `region_bytes` at
    /// `base`, one `burst_beats`-beat burst every completion +
    /// `gap_cycles`.
    pub fn new(
        name: impl Into<String>,
        base: u64,
        region_bytes: u64,
        burst_beats: u32,
        size: BurstSize,
        gap_cycles: Cycle,
    ) -> Self {
        Self {
            name: name.into(),
            base,
            region_bytes: region_bytes.max(burst_beats as u64 * size.bytes()),
            burst_beats,
            size,
            gap_cycles,
            cursor: 0,
            engine: None,
            idle_until: 0,
            bursts_completed: 0,
        }
    }
}

impl Accelerator for PeriodicReader {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if let Some(eng) = self.engine.as_mut() {
            let progress = eng.tick(now, port);
            if eng.is_done() {
                self.engine = None;
                self.bursts_completed += 1;
                self.idle_until = now + self.gap_cycles;
            }
            return progress;
        }
        if now < self.idle_until {
            return false;
        }
        let bytes = self.burst_beats as u64 * self.size.bytes();
        let addr = self.base + self.cursor;
        self.cursor = (self.cursor + bytes) % self.region_bytes;
        self.engine = Some(
            ReadEngine::new(addr, bytes, self.burst_beats, self.size)
                .max_outstanding(1)
                .id(AxiId(4)),
        );
        true
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        self.bursts_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match &self.engine {
            // A burst in flight is purely reactive (port-driven).
            Some(_) => None,
            // Pacing gap: nothing happens until it elapses.
            None if now < self.idle_until => Some(self.idle_until),
            // About to arm the next burst.
            None => Some(now + 1),
        }
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        use sim::persist::PersistValue;
        w.put_u64(self.cursor);
        self.engine.save_value(w);
        w.put_u64(self.idle_until);
        w.put_u64(self.bursts_completed);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        use sim::persist::PersistValue;
        self.cursor = r.take_u64()?;
        self.engine = Option::load_value(r)?;
        self.idle_until = r.take_u64()?;
        self.bursts_completed = r.take_u64()?;
        Ok(())
    }
}

/// The *bandwidth stealer* of the fairness experiment (Restuccia et
/// al., TECS 2019): saturates the bus with maximum-length bursts and
/// deep outstanding pipelining. Against a plain round-robin arbiter at
/// transaction granularity, its huge bursts win a share proportional to
/// the burst-length ratio; against the HyperConnect's equalization it
/// is held to its fair share.
#[derive(Debug)]
pub struct BandwidthStealer {
    name: String,
    base: u64,
    region_bytes: u64,
    burst_beats: u32,
    size: BurstSize,
    max_outstanding: u32,
    cursor: u64,
    outstanding: u32,
    next_tag: u64,
    beats_received: u64,
    bursts_completed: u64,
}

impl BandwidthStealer {
    /// Creates a stealer issuing `burst_beats`-beat bursts (256 by
    /// default order of magnitude) back to back over a region.
    pub fn new(
        name: impl Into<String>,
        base: u64,
        region_bytes: u64,
        burst_beats: u32,
        size: BurstSize,
    ) -> Self {
        Self {
            name: name.into(),
            base,
            region_bytes: region_bytes.max(burst_beats as u64 * size.bytes()),
            burst_beats,
            size,
            max_outstanding: 8,
            cursor: 0,
            outstanding: 0,
            next_tag: 0,
            beats_received: 0,
            bursts_completed: 0,
        }
    }

    /// Total data beats received.
    pub fn beats_received(&self) -> u64 {
        self.beats_received
    }

    /// Bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.beats_received * self.size.bytes()
    }
}

impl Accelerator for BandwidthStealer {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        if self.outstanding < self.max_outstanding && !port.ar.is_full() {
            let addr = self.base + self.cursor;
            let len = clamp_to_4k(addr, self.burst_beats, self.size);
            let beat = axi::ArBeat::new(addr, len, self.size)
                .with_id(AxiId(5))
                .with_tag(self.next_tag)
                .with_issued_at(now);
            port.ar.push(now, beat).expect("checked space");
            self.next_tag += 1;
            self.cursor = (self.cursor + len as u64 * self.size.bytes()) % self.region_bytes;
            self.outstanding += 1;
            progress = true;
        }
        if let Some(beat) = port.r.pop_ready(now) {
            self.beats_received += 1;
            if beat.last {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.bursts_completed += 1;
            }
            progress = true;
        }
        progress
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        self.bursts_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Greedy and gap-free: when blocked, only port drain or a read
        // response (both covered by the interconnect) can wake it.
        None
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u64(self.cursor);
        w.put_u32(self.outstanding);
        w.put_u64(self.next_tag);
        w.put_u64(self.beats_received);
        w.put_u64(self.bursts_completed);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.cursor = r.take_u64()?;
        self.outstanding = r.take_u32()?;
        self.next_tag = r.take_u64()?;
        self.beats_received = r.take_u64()?;
        self.bursts_completed = r.take_u64()?;
        Ok(())
    }
}

/// A seeded random mix of reads and writes with random burst lengths
/// and inter-arrival gaps — used for stress/soak tests and the
/// protocol-checker integration tests.
#[derive(Debug)]
pub struct RandomTraffic {
    name: String,
    base: u64,
    region_bytes: u64,
    size: BurstSize,
    max_burst: u32,
    mean_gap: Cycle,
    rng: SimRng,
    engine: Option<ReadEngine>,
    writer: Option<crate::engine::WriteEngine>,
    idle_until: Cycle,
    ops_completed: u64,
}

impl RandomTraffic {
    /// Creates a random-traffic master over `[base, base+region_bytes)`.
    pub fn new(
        name: impl Into<String>,
        base: u64,
        region_bytes: u64,
        size: BurstSize,
        max_burst: u32,
        mean_gap: Cycle,
        seed: u64,
    ) -> Self {
        Self {
            name: name.into(),
            base,
            region_bytes: region_bytes.max(4096),
            size,
            max_burst: max_burst.max(1),
            mean_gap: mean_gap.max(1),
            rng: SimRng::seed(seed),
            engine: None,
            writer: None,
            idle_until: 0,
            ops_completed: 0,
        }
    }
}

impl Accelerator for RandomTraffic {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if let Some(eng) = self.engine.as_mut() {
            let progress = eng.tick(now, port);
            if eng.is_done() {
                self.engine = None;
                self.ops_completed += 1;
                self.idle_until = now + self.rng.gap(self.mean_gap);
            }
            return progress;
        }
        if let Some(w) = self.writer.as_mut() {
            let progress = w.tick(now, port);
            if w.is_done() {
                self.writer = None;
                self.ops_completed += 1;
                self.idle_until = now + self.rng.gap(self.mean_gap);
            }
            return progress;
        }
        if now < self.idle_until {
            return false;
        }
        let beats = self.rng.range_u64(1, self.max_burst as u64) as u32;
        let bytes = beats as u64 * self.size.bytes();
        let slots = self.region_bytes / bytes.max(1);
        let addr = self.base + self.rng.range_u64(0, slots.saturating_sub(1)) * bytes;
        if self.rng.chance(0.5) {
            self.engine = Some(
                ReadEngine::new(addr, bytes, beats, self.size)
                    .max_outstanding(2)
                    .id(AxiId(6)),
            );
        } else {
            self.writer = Some(
                crate::engine::WriteEngine::new(addr, bytes, beats, self.size, |a| a as u8)
                    .max_outstanding(2)
                    .id(AxiId(7)),
            );
        }
        true
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_done(&self) -> bool {
        false
    }

    fn jobs_completed(&self) -> u64 {
        self.ops_completed
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.engine.is_some() || self.writer.is_some() {
            // An op in flight is purely reactive (port-driven).
            return None;
        }
        if now < self.idle_until {
            // Random inter-arrival gap: idle until it elapses.
            return Some(self.idle_until);
        }
        // About to draw and arm the next op.
        Some(now + 1)
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        use sim::persist::{Persist, PersistValue};
        self.rng.save_value(w);
        self.engine.save_value(w);
        w.put_bool(self.writer.is_some());
        if let Some(eng) = self.writer.as_ref() {
            eng.save(w);
        }
        w.put_u64(self.idle_until);
        w.put_u64(self.ops_completed);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        use sim::persist::{Persist, PersistValue};
        self.rng = SimRng::load_value(r)?;
        self.engine = Option::load_value(r)?;
        if r.take_bool()? {
            // The write engine's fill closure (`|a| a as u8`) is fixed,
            // so a placeholder engine is built and overlaid from the
            // stream; every plain field comes from the snapshot.
            let mut eng =
                crate::engine::WriteEngine::new(0, self.size.bytes(), 1, self.size, |a| a as u8);
            eng.restore(r)?;
            self.writer = Some(eng);
        } else {
            self.writer = None;
        }
        self.idle_until = r.take_u64()?;
        self.ops_completed = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::AxiInterconnect;
    use hyperconnect::{HcConfig, HyperConnect};
    use mem::{MemConfig, MemoryController};
    use sim::Component;

    fn run_one(acc: &mut dyn Accelerator, cycles: Cycle) {
        let mut hc = HyperConnect::new(HcConfig::new(1));
        let mut ctrl = MemoryController::new(MemConfig::default());
        for now in 0..cycles {
            acc.tick(now, hc.port(0));
            hc.tick(now);
            ctrl.tick(now, hc.mem_port());
        }
    }

    #[test]
    fn periodic_reader_paces_itself() {
        let mut fast = PeriodicReader::new("fast", 0, 1 << 20, 16, BurstSize::B16, 0);
        run_one(&mut fast, 10_000);
        let fast_jobs = fast.jobs_completed();
        let mut slow = PeriodicReader::new("slow", 0, 1 << 20, 16, BurstSize::B16, 500);
        run_one(&mut slow, 10_000);
        assert!(fast_jobs > 2 * slow.jobs_completed());
        assert!(slow.jobs_completed() > 0);
        assert!(!slow.is_done());
    }

    #[test]
    fn stealer_saturates() {
        let mut st = BandwidthStealer::new("steal", 0, 1 << 20, 256, BurstSize::B16);
        run_one(&mut st, 20_000);
        // The memory path streams ~1 beat/cycle once warm; the stealer
        // should capture most of it.
        assert!(
            st.beats_received() > 15_000,
            "only {} beats",
            st.beats_received()
        );
        assert_eq!(st.bytes_received(), st.beats_received() * 16);
    }

    #[test]
    fn random_traffic_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = RandomTraffic::new("rnd", 0, 1 << 20, BurstSize::B16, 32, 20, seed);
            run_one(&mut t, 30_000);
            t.jobs_completed()
        };
        assert_eq!(run(1), run(1));
        assert!(run(1) > 10);
    }

    #[test]
    fn random_traffic_region_respected() {
        // Small region: all generated addresses stay within it.
        let mut t = RandomTraffic::new("rnd", 0x8000, 8192, BurstSize::B4, 8, 5, 3);
        let mut hc = HyperConnect::new(HcConfig::new(1));
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        for now in 0..20_000 {
            t.tick(now, hc.port(0));
            hc.tick(now);
            while let Some(ar) = hc.mem_port().ar.pop_ready(now) {
                assert!(ar.addr >= 0x8000 && ar.addr < 0x8000 + 8192);
                // Feed responses so the generator keeps moving.
                for i in 0..ar.len {
                    hc.mem_port()
                        .r
                        .push(
                            now,
                            axi::RBeat::new(ar.id, vec![0; 4], i == ar.len - 1)
                                .with_tag(ar.tag)
                                .with_issued_at(ar.issued_at),
                        )
                        .unwrap();
                }
            }
            ctrl.tick(now, hc.mem_port());
        }
        assert!(t.jobs_completed() > 0);
    }
}
