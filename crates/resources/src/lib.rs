//! Analytical FPGA resource model — regenerates the paper's Table I.
//!
//! A pure-Rust reproduction cannot run Vivado synthesis, so resource
//! consumption is *modeled*: each microarchitectural module contributes
//! LUTs and flip-flops according to first-order structural formulas
//! (distributed-LUTRAM storage, pipeline registers, counters, N:1
//! muxes), and a single pair of technology calibration factors per
//! design maps raw structural counts onto the paper's measured ZCU102
//! numbers. The *shape* — HyperConnect slightly fewer LUTs and ~5.5×
//! fewer FFs than the SmartConnect, zero BRAM/DSP for both — comes from
//! the structure (LUTRAM circular buffers versus deep pipeline
//! registers), not from the calibration, which only fixes the absolute
//! scale. The scaling ablation (resources versus port count) therefore
//! carries real information.
//!
//! Paper reference values (Table I, ZCU102):
//!
//! | | LUT | FF | BRAM | DSP |
//! |---|---|---|---|---|
//! | HyperConnect | 3020 | 1289 | 0 | 0 |
//! | SmartConnect | 3785 | 7137 | 0 | 0 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Add;

/// ZCU102 (XCZU9EG) available resources, as in Table I's header.
pub mod zcu102 {
    /// Available LUTs.
    pub const LUTS: u64 = 274_080;
    /// Available flip-flops.
    pub const FFS: u64 = 548_160;
}

/// The paper's measured Table I values.
pub mod table1 {
    use super::Resources;

    /// HyperConnect, two-port instance.
    pub const HYPERCONNECT: Resources = Resources {
        lut: 3020,
        ff: 1289,
        bram: 0,
        dsp: 0,
    };

    /// SmartConnect, two-port instance (Vivado default configuration).
    pub const SMARTCONNECT: Resources = Resources {
        lut: 3785,
        ff: 7137,
        bram: 0,
        dsp: 0,
    };
}

/// An FPGA resource bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// Block RAMs.
    pub bram: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl Resources {
    /// LUT usage as a fraction of the ZCU102.
    pub fn lut_fraction(&self) -> f64 {
        self.lut as f64 / zcu102::LUTS as f64
    }

    /// FF usage as a fraction of the ZCU102.
    pub fn ff_fraction(&self) -> f64 {
        self.ff as f64 / zcu102::FFS as f64
    }

    fn scale(self, k_lut: f64, k_ff: f64) -> Resources {
        Resources {
            lut: (self.lut as f64 * k_lut).round() as u64,
            ff: (self.ff as f64 * k_ff).round() as u64,
            bram: self.bram,
            dsp: self.dsp,
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl std::fmt::Display for Resources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} LUT ({:.1}%), {} FF ({:.1}%), {} BRAM, {} DSP",
            self.lut,
            100.0 * self.lut_fraction(),
            self.ff,
            100.0 * self.ff_fraction(),
            self.bram,
            self.dsp
        )
    }
}

/// A per-module breakdown plus the calibrated total.
#[derive(Debug, Clone)]
pub struct ResourceReport {
    /// Design name.
    pub design: &'static str,
    /// Raw structural contributions per module (pre-calibration).
    pub breakdown: Vec<(String, Resources)>,
    /// Calibrated total.
    pub total: Resources,
}

impl ResourceReport {
    /// Raw structural total (pre-calibration).
    pub fn raw_total(&self) -> Resources {
        self.breakdown
            .iter()
            .fold(Resources::default(), |acc, (_, r)| acc + *r)
    }
}

/// Structural parameters of a modeled interconnect instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelParams {
    /// Number of slave ports.
    pub num_ports: usize,
    /// Data width in bits.
    pub data_width: u64,
    /// Address-queue depth.
    pub addr_depth: u64,
    /// Data-queue depth in beats.
    pub data_depth: u64,
}

impl Default for ModelParams {
    /// The two-port, 128-bit instance of the paper's case study.
    fn default() -> Self {
        Self {
            num_ports: 2,
            data_width: 128,
            addr_depth: 4,
            data_depth: 32,
        }
    }
}

impl ModelParams {
    /// AR/AW channel payload width in bits.
    pub fn addr_channel_bits(&self) -> u64 {
        // addr(32) + id(6) + len(8) + size(3) + burst(2) + qos(4) + misc(9)
        64
    }

    /// W channel payload width in bits (data + strobe + last).
    pub fn w_channel_bits(&self) -> u64 {
        self.data_width + self.data_width / 8 + 1
    }

    /// R channel payload width in bits (data + id + resp + last).
    pub fn r_channel_bits(&self) -> u64 {
        self.data_width + 6 + 2 + 1
    }

    /// B channel payload width in bits.
    pub fn b_channel_bits(&self) -> u64 {
        8
    }
}

fn log2_ceil(x: u64) -> u64 {
    x.max(1).next_power_of_two().trailing_zeros() as u64
}

/// LUTRAM circular-buffer queue: storage in distributed RAM (LUTs),
/// control in a handful of LUTs/FFs — the reason the HyperConnect is
/// LUT-rich but FF-poor.
fn lutram_queue(width: u64, depth: u64) -> Resources {
    let storage_luts = width.div_ceil(2) * depth.div_ceil(32);
    let ptr_bits = log2_ceil(depth).max(1);
    Resources {
        lut: storage_luts + ptr_bits + 4,
        ff: 2 * ptr_bits + width / 8 + 4,
        bram: 0,
        dsp: 0,
    }
}

/// A register pipeline stage: `width` FFs per stage, a few control LUTs.
fn pipeline_stage(width: u64, stages: u64) -> Resources {
    Resources {
        lut: stages * (width / 16 + 2),
        ff: stages * (width + 2),
        bram: 0,
        dsp: 0,
    }
}

/// An N:1 mux of `width` bits (one 6-LUT covers ~2 inputs of 1 bit).
fn mux(width: u64, inputs: u64) -> Resources {
    Resources {
        lut: width * inputs.saturating_sub(1).div_ceil(2).max(1),
        ff: 0,
        bram: 0,
        dsp: 0,
    }
}

/// Technology calibration for the HyperConnect model: raw structural
/// counts → ZCU102 LUT/FF, fixed so the default two-port instance
/// reproduces Table I.
pub const HC_CAL_LUT: f64 = 1.7681;
/// FF calibration factor for the HyperConnect model.
pub const HC_CAL_FF: f64 = 1.0329;
/// LUT calibration factor for the SmartConnect model.
pub const SC_CAL_LUT: f64 = 2.2173;
/// FF calibration factor for the SmartConnect model.
pub const SC_CAL_FF: f64 = 1.5009;

/// Resource report for an N-port HyperConnect.
pub fn hyperconnect(params: ModelParams) -> ResourceReport {
    let p = &params;
    let n = p.num_ports as u64;
    let mut breakdown = Vec::new();

    // One eFIFO per slave port + one master eFIFO: five LUTRAM queues.
    let efifo = lutram_queue(p.addr_channel_bits(), p.addr_depth)
        + lutram_queue(p.addr_channel_bits(), p.addr_depth)
        + lutram_queue(p.w_channel_bits(), p.data_depth)
        + lutram_queue(p.r_channel_bits(), p.data_depth)
        + lutram_queue(p.b_channel_bits(), p.addr_depth)
        // Decouple gating: one AND per interface bit, rounded by 6-LUT.
        + Resources {
            lut: (2 * p.addr_channel_bits()
                + p.w_channel_bits()
                + p.r_channel_bits()
                + p.b_channel_bits())
                / 6,
            ff: 2,
            bram: 0,
            dsp: 0,
        };
    for i in 0..n {
        breakdown.push((format!("efifo[{i}]"), efifo));
    }
    breakdown.push(("efifo[master]".into(), efifo));

    // One TS per port: splitter datapaths (two 32-bit adders, length
    // subtractors), budget/outstanding counters, one pipeline stage on
    // each address channel.
    let ts = Resources {
        lut: 2 * (32 + 8 + 8) + 32 + 2 * 8,
        ff: 32 + 2 * 16 + 2 * 8,
        bram: 0,
        dsp: 0,
    } + pipeline_stage(p.addr_channel_bits(), 2);
    for i in 0..n {
        breakdown.push((format!("ts[{i}]"), ts));
    }

    // EXBAR: two N:1 address muxes, one N:1 W mux, RR arbiters, routing
    // buffers (LUTRAM), one output stage per address channel.
    let route_bits = log2_ceil(n.max(2)) + 2;
    let exbar = mux(p.addr_channel_bits(), n)
        + mux(p.addr_channel_bits(), n)
        + mux(p.w_channel_bits(), n)
        + lutram_queue(route_bits, 32)
        + lutram_queue(route_bits, 32)
        + Resources {
            lut: 8 * n + 16,
            ff: 2 * log2_ceil(n.max(2)) + 8,
            bram: 0,
            dsp: 0,
        }
        + pipeline_stage(p.addr_channel_bits(), 2);
    breakdown.push(("exbar".into(), exbar));

    // Central unit + register file (config registers are real FFs).
    let central = Resources {
        lut: 48,
        ff: 32 + 16,
        bram: 0,
        dsp: 0,
    };
    breakdown.push(("central".into(), central));
    let regfile = Resources {
        lut: 40 + 12 * n,
        ff: 3 * 32 + n * 3 * 32,
        bram: 0,
        dsp: 0,
    };
    breakdown.push(("regfile".into(), regfile));

    let raw = breakdown
        .iter()
        .fold(Resources::default(), |acc, (_, r)| acc + *r);
    ResourceReport {
        design: "HyperConnect",
        total: raw.scale(HC_CAL_LUT, HC_CAL_FF),
        breakdown,
    }
}

/// Resource report for an N-port SmartConnect (behavioral model of the
/// closed-source IP: deep pipeline registers on every channel, wider
/// internal datapaths, per-port clock-domain/width converters).
pub fn smartconnect(params: ModelParams) -> ResourceReport {
    let p = &params;
    let n = p.num_ports as u64;
    let mut breakdown = Vec::new();

    // Per-port ingress: registered slices on all five channels plus the
    // 9-stage address pipelines observed externally.
    let ingress = pipeline_stage(p.addr_channel_bits(), 9)
        + pipeline_stage(p.addr_channel_bits(), 9)
        + pipeline_stage(p.w_channel_bits(), 2)
        + Resources {
            lut: 180,
            ff: 60,
            bram: 0,
            dsp: 0,
        };
    for i in 0..n {
        breakdown.push((format!("ingress[{i}]"), ingress));
    }

    // Shared return paths: 9-stage R pipeline, B path, routing CAMs.
    let ret = pipeline_stage(p.r_channel_bits(), 9)
        + pipeline_stage(p.b_channel_bits(), 2)
        + Resources {
            lut: 400,
            ff: 220,
            bram: 0,
            dsp: 0,
        };
    breakdown.push(("return-path".into(), ret));

    // Crossbar + arbiter with variable granularity state.
    let xbar = mux(p.addr_channel_bits(), n)
        + mux(p.addr_channel_bits(), n)
        + mux(p.w_channel_bits(), n)
        + Resources {
            lut: 60 * n + 200,
            ff: 30 * n + 120,
            bram: 0,
            dsp: 0,
        };
    breakdown.push(("crossbar".into(), xbar));

    let raw = breakdown
        .iter()
        .fold(Resources::default(), |acc, (_, r)| acc + *r);
    ResourceReport {
        design: "SmartConnect",
        total: raw.scale(SC_CAL_LUT, SC_CAL_FF),
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: u64, target: u64, tolerance_percent: f64) -> bool {
        let diff = actual.abs_diff(target) as f64;
        diff / target as f64 <= tolerance_percent / 100.0
    }

    #[test]
    fn hyperconnect_matches_table1_within_2_percent() {
        let report = hyperconnect(ModelParams::default());
        let t = table1::HYPERCONNECT;
        assert!(
            within(report.total.lut, t.lut, 2.0),
            "LUT {} vs {}",
            report.total.lut,
            t.lut
        );
        assert!(
            within(report.total.ff, t.ff, 2.0),
            "FF {} vs {}",
            report.total.ff,
            t.ff
        );
        assert_eq!(report.total.bram, 0);
        assert_eq!(report.total.dsp, 0);
    }

    #[test]
    fn smartconnect_matches_table1_within_2_percent() {
        let report = smartconnect(ModelParams::default());
        let t = table1::SMARTCONNECT;
        assert!(
            within(report.total.lut, t.lut, 2.0),
            "LUT {} vs {}",
            report.total.lut,
            t.lut
        );
        assert!(
            within(report.total.ff, t.ff, 2.0),
            "FF {} vs {}",
            report.total.ff,
            t.ff
        );
    }

    #[test]
    fn hyperconnect_is_ff_lean_structurally() {
        // The structural (pre-calibration) ratio already shows the
        // LUTRAM-vs-pipeline asymmetry the paper reports.
        let hc = hyperconnect(ModelParams::default()).raw_total();
        let sc = smartconnect(ModelParams::default()).raw_total();
        assert!(sc.ff as f64 / hc.ff as f64 > 3.0, "{} vs {}", sc.ff, hc.ff);
    }

    #[test]
    fn resources_grow_with_ports() {
        let p2 = hyperconnect(ModelParams::default()).total;
        let p8 = hyperconnect(ModelParams {
            num_ports: 8,
            ..ModelParams::default()
        })
        .total;
        assert!(p8.lut > 2 * p2.lut);
        assert!(p8.ff > 2 * p2.ff);
    }

    #[test]
    fn no_bram_or_dsp_anywhere() {
        for n in [1usize, 2, 4, 16] {
            let params = ModelParams {
                num_ports: n,
                ..ModelParams::default()
            };
            assert_eq!(hyperconnect(params).total.bram, 0);
            assert_eq!(hyperconnect(params).total.dsp, 0);
            assert_eq!(smartconnect(params).total.bram, 0);
            assert_eq!(smartconnect(params).total.dsp, 0);
        }
    }

    #[test]
    fn display_and_fractions() {
        let r = table1::HYPERCONNECT;
        let s = r.to_string();
        assert!(s.contains("3020 LUT"));
        assert!(s.contains("1289 FF"));
        assert!((r.lut_fraction() - 3020.0 / 274_080.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_raw_total() {
        let report = hyperconnect(ModelParams::default());
        let sum = report
            .breakdown
            .iter()
            .fold(Resources::default(), |a, (_, r)| a + *r);
        assert_eq!(sum, report.raw_total());
    }

    #[test]
    fn log2_ceil_sane() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(32), 5);
    }
}
