//! Runtime worst-case-bound monitor.
//!
//! The [`BoundMonitor`] cross-checks every completed sub-transaction
//! against the closed-form worst-case bounds of [`crate::analysis`]
//! *while the simulation runs*: service bounds (staged-to-complete
//! latency must not exceed [`ServiceModel::worst_case_staged_read_latency`]
//! / [`ServiceModel::worst_case_staged_write_latency`]) and propagation
//! bounds (a beat cannot cross the fixed-latency fabric *faster* than
//! its pipeline depth — if it does, the model itself is broken).
//!
//! # Soundness assumptions
//!
//! The service bounds assume the fabric is in its analyzed
//! configuration: round-robin arbitration, no decoupled ports dropping
//! traffic mid-flight, masters that drain R beats promptly, and no
//! bandwidth-reservation throttling *after* staging. The TS gates
//! staging on budget availability, so measuring from the `TsStaged` hop
//! excludes reservation stalls by construction. A write's clock starts
//! at `max(AW staged, last W beat at the TS)`: masters may legally
//! issue AW long before producing the data (the AXI DMA does), and the
//! interconnect cannot be charged for cycles where it had nothing to
//! forward. Arm the monitor before traffic starts — pairing W-data
//! times with AW subs relies on seeing every hop — and only in
//! scenarios that satisfy these assumptions (the fault-injection
//! scenarios deliberately violate them).

use std::collections::VecDeque;

use axi::observe::{
    BoundKind, BoundReport, BoundViolation, Hop, MetricsRegistry, ObsChannel, ObsEvent,
};
use sim::Cycle;

use crate::analysis::{propagation, RegulationCap, ServiceModel};

/// Slave port encoded in an observability uid (`(seq << 10) | (port+1)`).
fn port_of_uid(uid: u64) -> usize {
    ((uid & 0x3ff) as usize).saturating_sub(1)
}

/// Checks observed per-transaction latencies against the closed-form
/// worst-case bounds, recording a [`BoundViolation`] (with the full hop
/// history) whenever simulation and analysis disagree.
#[derive(Debug)]
pub struct BoundMonitor {
    model: ServiceModel,
    read_bound: u64,
    write_bound: u64,
    /// Per-port read bound actually enforced: the global bound, or the
    /// tighter regulated bound while [`Self::arm_regulation`] reports a
    /// competitor rate-capped below saturation.
    port_read_bounds: Vec<u64>,
    /// Per-port write bound actually enforced (see `port_read_bounds`).
    port_write_bounds: Vec<u64>,
    /// Per-port `(uid, staged_cycle)` of reads awaiting completion.
    /// Per-port completion is FIFO: memory serves in order and the
    /// EXBAR routes responses in grant order.
    pending_reads: Vec<VecDeque<(u64, Cycle)>>,
    /// Per-port `(uid, staged_cycle)` of writes awaiting their B.
    pending_writes: Vec<VecDeque<(u64, Cycle)>>,
    /// Per-port cycles at which each write sub's *last W beat* reached
    /// the TS stage (same FIFO order as `pending_writes`: AXI forbids W
    /// interleaving, so the k-th W-last belongs to the k-th AW sub). A
    /// write's service clock starts at `max(staged, data_ready)` — the
    /// interconnect cannot serve a write whose data the master has not
    /// produced yet, and the bound does not cover master-side lag.
    w_ready: Vec<VecDeque<Cycle>>,
    violations: Vec<BoundViolation>,
    checked_reads: u64,
    checked_writes: u64,
    worst_read: u64,
    worst_write: u64,
}

impl BoundMonitor {
    /// Creates a monitor enforcing the bounds of `model`.
    pub fn new(model: ServiceModel) -> Self {
        let n = model.num_ports;
        let read_bound = model.worst_case_staged_read_latency();
        let write_bound = model.worst_case_staged_write_latency();
        Self {
            model,
            read_bound,
            write_bound,
            port_read_bounds: vec![read_bound; n],
            port_write_bounds: vec![write_bound; n],
            pending_reads: vec![VecDeque::new(); n],
            pending_writes: vec![VecDeque::new(); n],
            w_ready: vec![VecDeque::new(); n],
            violations: Vec::new(),
            checked_reads: 0,
            checked_writes: 0,
            worst_read: 0,
            worst_write: 0,
        }
    }

    /// The read service bound being enforced, in cycles.
    pub fn read_bound(&self) -> u64 {
        self.read_bound
    }

    /// The write service bound being enforced, in cycles.
    pub fn write_bound(&self) -> u64 {
        self.write_bound
    }

    /// The read bound currently enforced for `port` — tighter than
    /// [`Self::read_bound`] while competitor regulation is armed.
    pub fn port_read_bound(&self, port: usize) -> u64 {
        self.port_read_bounds
            .get(port)
            .copied()
            .unwrap_or(self.read_bound)
    }

    /// The write bound currently enforced for `port` (see
    /// [`Self::port_read_bound`]).
    pub fn port_write_bound(&self, port: usize) -> u64 {
        self.port_write_bounds
            .get(port)
            .copied()
            .unwrap_or(self.write_bound)
    }

    /// Re-derives the per-port bounds from the current regulation state
    /// (`caps[j]` = port `j`'s regulation, `None` = unregulated). The
    /// interconnect calls this whenever the regulator registers may
    /// have changed (config-generation bumps), so a port's bound
    /// tightens automatically the moment a competitor is rate-capped
    /// and relaxes back when the cap is lifted. With every entry `None`
    /// the per-port bounds equal the global ones.
    ///
    /// Bounds only ever *tighten relative to the global bound*; already
    /// in-flight transactions are judged against the bound armed at
    /// completion time, which is the standard monitor convention (the
    /// caps are scheduler-invariant at any given cycle, so verdicts are
    /// byte-identical across schedulers).
    pub fn arm_regulation(&mut self, caps: &[Option<RegulationCap>]) {
        if caps.len() != self.model.num_ports {
            return;
        }
        for p in 0..self.model.num_ports {
            self.port_read_bounds[p] = self.model.regulated_staged_read_latency(caps, p);
            self.port_write_bounds[p] = self.model.regulated_staged_write_latency(caps, p);
        }
    }

    /// Violations recorded so far, in detection order.
    pub fn violations(&self) -> &[BoundViolation] {
        &self.violations
    }

    /// Summary of the monitor's activity.
    pub fn report(&self) -> BoundReport {
        BoundReport {
            checked_reads: self.checked_reads,
            checked_writes: self.checked_writes,
            violations: self.violations.len() as u64,
            read_bound: self.read_bound,
            write_bound: self.write_bound,
            worst_read: self.worst_read,
            worst_write: self.worst_write,
        }
    }

    fn file(&mut self, mut violation: BoundViolation, registry: &MetricsRegistry) {
        violation.hops = registry.hops_of(violation.uid);
        self.violations.push(violation);
    }

    /// Checks a propagation *lower* bound: a beat that crossed the
    /// fabric in fewer cycles than its fixed pipeline depth means the
    /// model dropped a register stage somewhere.
    fn check_propagation(
        &mut self,
        kind: BoundKind,
        floor: u64,
        port: usize,
        ev: &ObsEvent,
        registry: &MetricsRegistry,
    ) {
        // Visible one queue-latency after the push: same convention as
        // the registry's channel-latency aggregates.
        let observed = (ev.cycle + 1).saturating_sub(ev.ref_cycle);
        if observed < floor {
            self.file(
                BoundViolation {
                    kind,
                    port,
                    uid: ev.uid,
                    observed,
                    bound: floor,
                    cycle: ev.cycle,
                    hops: Vec::new(),
                },
                registry,
            );
        }
    }

    /// Folds one hop event into the monitor. `registry` supplies the
    /// hop history attached to any violation filed.
    pub fn on_event(&mut self, ev: &ObsEvent, registry: &MetricsRegistry) {
        match ev.hop {
            Hop::TsStaged => {
                let port = ev.port.unwrap_or_else(|| port_of_uid(ev.uid));
                if port >= self.pending_reads.len() {
                    return;
                }
                match ev.channel {
                    ObsChannel::Ar => self.pending_reads[port].push_back((ev.uid, ev.cycle)),
                    ObsChannel::Aw => self.pending_writes[port].push_back((ev.uid, ev.cycle)),
                    ObsChannel::W if ev.sub_end => self.w_ready[port].push_back(ev.cycle),
                    _ => {}
                }
            }
            Hop::MemVisible => match ev.channel {
                ObsChannel::Ar => {
                    let port = port_of_uid(ev.uid);
                    self.check_propagation(
                        BoundKind::ArPropagation,
                        propagation::D_AR,
                        port,
                        ev,
                        registry,
                    );
                }
                ObsChannel::Aw => {
                    let port = port_of_uid(ev.uid);
                    self.check_propagation(
                        BoundKind::AwPropagation,
                        propagation::D_AW,
                        port,
                        ev,
                        registry,
                    );
                }
                ObsChannel::W => {
                    let port = ev.port.unwrap_or(0);
                    self.check_propagation(
                        BoundKind::WPropagation,
                        propagation::D_W,
                        port,
                        ev,
                        registry,
                    );
                }
                _ => {}
            },
            Hop::Delivered => match ev.channel {
                ObsChannel::R => {
                    let port = ev.port.unwrap_or_else(|| port_of_uid(ev.uid));
                    self.check_propagation(
                        BoundKind::RPropagation,
                        propagation::D_R,
                        port,
                        ev,
                        registry,
                    );
                    if ev.sub_end {
                        self.complete_read(port, ev, registry);
                    }
                }
                ObsChannel::B => {
                    let port = ev.port.unwrap_or_else(|| port_of_uid(ev.uid));
                    if ev.txn_end {
                        // Merged (non-final) B responses are absorbed at
                        // the TS and never traverse the slave eFIFO, so
                        // only the final one carries the full D_B path.
                        self.check_propagation(
                            BoundKind::BPropagation,
                            propagation::D_B,
                            port,
                            ev,
                            registry,
                        );
                    }
                    self.complete_write(port, ev, registry);
                }
                _ => {}
            },
            Hop::Dropped if ev.sub_end => {
                // A staged sub was force-flushed: retire its pending
                // service clock so later completions pair correctly.
                // Dropped subs are the most recently staged entries of
                // their uid (granted ones staged earlier), so remove
                // from the back.
                let port = ev.port.unwrap_or_else(|| port_of_uid(ev.uid));
                if port >= self.pending_reads.len() {
                    return;
                }
                match ev.channel {
                    ObsChannel::Ar => {
                        if let Some(pos) = self.pending_reads[port]
                            .iter()
                            .rposition(|&(uid, _)| uid == ev.uid)
                        {
                            self.pending_reads[port].remove(pos);
                        }
                    }
                    ObsChannel::Aw => {
                        if let Some(pos) = self.pending_writes[port]
                            .iter()
                            .rposition(|&(uid, _)| uid == ev.uid)
                        {
                            self.pending_writes[port].remove(pos);
                        }
                        // With no writes pending, any data-ready stamps
                        // left behind are orphans of flushed writes.
                        if self.pending_writes[port].is_empty() {
                            self.w_ready[port].clear();
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn complete_read(&mut self, port: usize, ev: &ObsEvent, registry: &MetricsRegistry) {
        if port >= self.pending_reads.len() {
            return;
        }
        // Guard against completions the monitor never saw staged (armed
        // mid-run): skip rather than misattribute.
        let Some((uid, staged)) = self.pending_reads[port].pop_front() else {
            return;
        };
        let observed = ev.cycle.saturating_sub(staged);
        self.checked_reads += 1;
        self.worst_read = self.worst_read.max(observed);
        let bound = self.port_read_bound(port);
        if observed > bound {
            self.file(
                BoundViolation {
                    kind: BoundKind::ReadService,
                    port,
                    uid,
                    observed,
                    bound,
                    cycle: ev.cycle,
                    hops: Vec::new(),
                },
                registry,
            );
        }
    }

    fn complete_write(&mut self, port: usize, ev: &ObsEvent, registry: &MetricsRegistry) {
        if port >= self.pending_writes.len() {
            return;
        }
        let Some((uid, staged)) = self.pending_writes[port].pop_front() else {
            return;
        };
        // Completed writes always had their data; a missing entry only
        // happens when the monitor was armed mid-run.
        let data_ready = self.w_ready[port].pop_front().unwrap_or(staged);
        let observed = ev.cycle.saturating_sub(staged.max(data_ready));
        self.checked_writes += 1;
        self.worst_write = self.worst_write.max(observed);
        let bound = self.port_write_bound(port);
        if observed > bound {
            self.file(
                BoundViolation {
                    kind: BoundKind::WriteService,
                    port,
                    uid,
                    observed,
                    bound,
                    cycle: ev.cycle,
                    hops: Vec::new(),
                },
                registry,
            );
        }
    }
}

impl sim::persist::PersistValue for BoundMonitor {
    /// The analytic model and derived global bounds are persisted along
    /// with the live matching state, so a restored monitor files the
    /// same verdicts against the same bounds as the uninterrupted one.
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        self.model.save_value(w);
        w.put_u64(self.read_bound);
        w.put_u64(self.write_bound);
        self.port_read_bounds.save_value(w);
        self.port_write_bounds.save_value(w);
        self.pending_reads.save_value(w);
        self.pending_writes.save_value(w);
        self.w_ready.save_value(w);
        self.violations.save_value(w);
        w.put_u64(self.checked_reads);
        w.put_u64(self.checked_writes);
        w.put_u64(self.worst_read);
        w.put_u64(self.worst_write);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        let model = ServiceModel::load_value(r)?;
        let monitor = Self {
            model,
            read_bound: r.take_u64()?,
            write_bound: r.take_u64()?,
            port_read_bounds: Vec::load_value(r)?,
            port_write_bounds: Vec::load_value(r)?,
            pending_reads: Vec::load_value(r)?,
            pending_writes: Vec::load_value(r)?,
            w_ready: Vec::load_value(r)?,
            violations: Vec::load_value(r)?,
            checked_reads: r.take_u64()?,
            checked_writes: r.take_u64()?,
            worst_read: r.take_u64()?,
            worst_write: r.take_u64()?,
        };
        let n = monitor.model.num_ports;
        if monitor.port_read_bounds.len() != n
            || monitor.port_write_bounds.len() != n
            || monitor.pending_reads.len() != n
            || monitor.pending_writes.len() != n
            || monitor.w_ready.len() != n
        {
            return Err(sim::persist::PersistError::Corrupt(
                "bound monitor port shape",
            ));
        }
        Ok(monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid_for(port: usize, seq: u64) -> u64 {
        (seq << 10) | (port as u64 + 1)
    }

    fn ev(
        uid: u64,
        port: Option<usize>,
        channel: ObsChannel,
        hop: Hop,
        cycle: Cycle,
        ref_cycle: Cycle,
    ) -> ObsEvent {
        ObsEvent {
            uid,
            port,
            channel,
            hop,
            cycle,
            ref_cycle,
            bytes: 0,
            sub_end: true,
            txn_end: true,
        }
    }

    fn monitor() -> (BoundMonitor, MetricsRegistry) {
        // 2 ports, 16-beat nominal, 22-cycle memory: read bound
        // (2*2*4 - 1 + 1) * 16 + 38 + 6 = 300.
        let model = ServiceModel::hyperconnect(2, 16, 22);
        (BoundMonitor::new(model), MetricsRegistry::new(2))
    }

    #[test]
    fn uid_port_roundtrip() {
        assert_eq!(port_of_uid(uid_for(0, 7)), 0);
        assert_eq!(port_of_uid(uid_for(3, 1)), 3);
        assert_eq!(port_of_uid(0), 0); // W-data uid degrades to port 0
    }

    #[test]
    fn in_bound_read_is_clean() {
        let (mut m, reg) = monitor();
        let uid = uid_for(0, 1);
        m.on_event(
            &ev(uid, Some(0), ObsChannel::Ar, Hop::TsStaged, 10, 8),
            &reg,
        );
        m.on_event(
            &ev(uid, Some(0), ObsChannel::R, Hop::Delivered, 60, 58),
            &reg,
        );
        assert!(m.violations().is_empty());
        let rep = m.report();
        assert_eq!(rep.checked_reads, 1);
        assert_eq!(rep.worst_read, 50);
        assert_eq!(rep.read_bound, 300);
    }

    #[test]
    fn service_overrun_is_filed_with_bound() {
        let (mut m, reg) = monitor();
        let uid = uid_for(1, 1);
        m.on_event(
            &ev(uid, Some(1), ObsChannel::Ar, Hop::TsStaged, 10, 8),
            &reg,
        );
        m.on_event(
            &ev(uid, Some(1), ObsChannel::R, Hop::Delivered, 10 + 301, 309),
            &reg,
        );
        assert_eq!(m.violations().len(), 1);
        let v = &m.violations()[0];
        assert_eq!(v.kind, BoundKind::ReadService);
        assert_eq!(v.port, 1);
        assert_eq!(v.observed, 301);
        assert_eq!(v.bound, 300);
    }

    #[test]
    fn armed_regulation_enforces_the_tighter_per_port_bound() {
        let (mut m, reg) = monitor();
        // Port 1 capped at 1 outstanding sub: port 0's read bound drops
        // from 300 to (2*4-1 + 1 + 1) * 16 + 38 + 6 = 188.
        let caps = [
            None,
            Some(RegulationCap {
                rate: None,
                burst: 1,
                out_cap: Some(1),
            }),
        ];
        m.arm_regulation(&caps);
        assert_eq!(m.port_read_bound(0), 188);
        assert!(m.port_read_bound(0) < m.read_bound());
        // The regulated port itself keeps competitor-derived bounds:
        // port 1 faces the unregulated port 0, so its bound stays 300.
        assert_eq!(m.port_read_bound(1), 300);
        // A latency legal under the global bound but over the tightened
        // one is now a violation, filed against the tightened bound.
        let uid = uid_for(0, 1);
        m.on_event(
            &ev(uid, Some(0), ObsChannel::Ar, Hop::TsStaged, 10, 8),
            &reg,
        );
        m.on_event(
            &ev(uid, Some(0), ObsChannel::R, Hop::Delivered, 10 + 250, 258),
            &reg,
        );
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].bound, 188);
        assert_eq!(m.violations()[0].observed, 250);
        // Lifting the regulation relaxes back to the global bound.
        m.arm_regulation(&[None, None]);
        assert_eq!(m.port_read_bound(0), m.read_bound());
        let uid2 = uid_for(0, 2);
        m.on_event(
            &ev(uid2, Some(0), ObsChannel::Ar, Hop::TsStaged, 500, 498),
            &reg,
        );
        m.on_event(
            &ev(uid2, Some(0), ObsChannel::R, Hop::Delivered, 500 + 250, 748),
            &reg,
        );
        assert_eq!(m.violations().len(), 1); // no new violation
    }

    #[test]
    fn write_path_checks_b_completion() {
        let (mut m, reg) = monitor();
        let uid = uid_for(0, 2);
        m.on_event(&ev(uid, Some(0), ObsChannel::Aw, Hop::TsStaged, 5, 3), &reg);
        // Write bound = 300 + 8*16 (recycled-read window) + 16 + 4 + 2
        // = 450; complete just over it.
        m.on_event(
            &ev(uid, Some(0), ObsChannel::B, Hop::Delivered, 5 + 451, 448),
            &reg,
        );
        assert_eq!(m.report().checked_writes, 1);
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].kind, BoundKind::WriteService);
        assert_eq!(m.violations()[0].bound, 450);
    }

    #[test]
    fn write_clock_starts_at_w_data_ready() {
        let (mut m, reg) = monitor();
        let uid = uid_for(0, 6);
        m.on_event(&ev(uid, Some(0), ObsChannel::Aw, Hop::TsStaged, 5, 3), &reg);
        // The master dribbles its data: the sub's last W beat reaches
        // the TS 400 cycles after the AW was staged.
        let mut w = ev(0, Some(0), ObsChannel::W, Hop::TsStaged, 405, 400);
        w.txn_end = false;
        m.on_event(&w, &reg);
        // B lands 100 cycles after the data was ready — within the
        // bound even though it is 500 cycles after AW staging.
        m.on_event(
            &ev(uid, Some(0), ObsChannel::B, Hop::Delivered, 505, 503),
            &reg,
        );
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        assert_eq!(m.report().checked_writes, 1);
        assert_eq!(m.report().worst_write, 100);
    }

    #[test]
    fn too_fast_propagation_is_a_model_bug() {
        let (mut m, reg) = monitor();
        let uid = uid_for(0, 3);
        // AR visible at memory only 2 cycles after issue: under D_AR=4.
        m.on_event(
            &ev(uid, None, ObsChannel::Ar, Hop::MemVisible, 11, 10),
            &reg,
        );
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].kind, BoundKind::ArPropagation);
        assert_eq!(m.violations()[0].observed, 2);
        assert_eq!(m.violations()[0].bound, 4);
        // Exactly at the floor is legal.
        let (mut m2, reg2) = monitor();
        m2.on_event(
            &ev(uid, None, ObsChannel::Ar, Hop::MemVisible, 13, 10),
            &reg2,
        );
        assert!(m2.violations().is_empty());
    }

    #[test]
    fn unmatched_completion_is_ignored() {
        let (mut m, reg) = monitor();
        // A Delivered with nothing staged (monitor armed mid-run) must
        // not panic or count.
        m.on_event(
            &ev(
                uid_for(0, 4),
                Some(0),
                ObsChannel::R,
                Hop::Delivered,
                50,
                48,
            ),
            &reg,
        );
        assert_eq!(m.report().checked_reads, 0);
        assert!(m.violations().is_empty());
    }

    #[test]
    fn merged_b_skips_propagation_check() {
        let (mut m, reg) = monitor();
        let uid = uid_for(0, 5);
        m.on_event(&ev(uid, Some(0), ObsChannel::Aw, Hop::TsStaged, 5, 3), &reg);
        // Non-final B absorbed at the TS: delivered "fast" is fine.
        let mut b = ev(uid, Some(0), ObsChannel::B, Hop::Delivered, 20, 20);
        b.txn_end = false;
        m.on_event(&b, &reg);
        assert!(m.violations().is_empty());
        assert_eq!(m.report().checked_writes, 1);
    }
}
