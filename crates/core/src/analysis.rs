//! Closed-form worst-case bounds for the HyperConnect.
//!
//! The paper argues the HyperConnect's slim, open architecture makes it
//! "prone to worst-case timing analysis" (§V-B) without carrying out the
//! analysis for lack of space. This module provides that analysis for
//! the modeled microarchitecture, and the property/integration tests
//! verify that simulation never exceeds these bounds.
//!
//! All bounds are in fabric clock cycles and assume the in-order memory
//! model of the workspace's `mem` crate: a burst of `L` beats occupies
//! the memory data path for `L` cycles after a fixed first-word
//! latency.

/// Fixed per-channel propagation latencies of the HyperConnect
/// (paper Fig. 3a).
pub mod propagation {
    /// Read-address channel: slave eFIFO + TS + EXBAR + master eFIFO.
    pub const D_AR: u64 = 4;
    /// Write-address channel.
    pub const D_AW: u64 = 4;
    /// Read-data channel: slave eFIFO + master eFIFO (proactive TS and
    /// EXBAR add no latency).
    pub const D_R: u64 = 2;
    /// Write-data channel.
    pub const D_W: u64 = 2;
    /// Write-response channel.
    pub const D_B: u64 = 2;

    /// Total interconnect latency on a read transaction.
    pub const READ_TOTAL: u64 = D_AR + D_R;
    /// Total interconnect latency on a write transaction.
    pub const WRITE_TOTAL: u64 = D_AW + D_W + D_B;
}

/// Regulation parameters of one competing port, as far as the
/// worst-case analysis cares: how many sub-transactions the port can
/// have admitted or in flight at once.
///
/// `None` entries mean "that mechanism is unlimited"; a port with no
/// regulator at all is represented as `None` at the call sites (see
/// [`ServiceModel::regulated_staged_read_latency`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegulationCap {
    /// Credits per refill window (`None` = rate unlimited).
    pub rate: Option<u32>,
    /// Burst depth: credits the port can accumulate per lane.
    pub burst: u32,
    /// Cap on total outstanding sub-transactions (`None` = uncapped).
    pub out_cap: Option<u32>,
}

/// Parameters of a worst-case service analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Number of slave ports (`N`).
    pub num_ports: usize,
    /// Nominal burst length in beats (equalized transaction size).
    pub nominal_beats: u32,
    /// Memory first-word latency in cycles.
    pub mem_latency: u64,
    /// Memory write-response latency in cycles (last data beat
    /// committed to B response).
    pub write_resp_latency: u64,
    /// Round-robin granularity (1 for the EXBAR; `g` for interconnects
    /// with variable granularity such as the SmartConnect).
    pub rr_granularity: u32,
    /// Per-port outstanding sub-transaction limit (`MAX_OUT` register,
    /// reset value 4): bounds how many interfering transactions can be
    /// queued downstream of the arbiter per port.
    pub max_outstanding: u32,
}

impl ServiceModel {
    /// The HyperConnect's service model for `num_ports` ports with the
    /// reset-value outstanding limit.
    pub fn hyperconnect(num_ports: usize, nominal_beats: u32, mem_latency: u64) -> Self {
        Self {
            num_ports,
            nominal_beats,
            mem_latency,
            write_resp_latency: 4,
            rr_granularity: 1,
            max_outstanding: 4,
        }
    }

    /// Overrides the per-port outstanding limit.
    pub fn max_outstanding(mut self, k: u32) -> Self {
        self.max_outstanding = k.max(1);
        self
    }

    /// Worst-case cycles for the memory to serve one equalized
    /// transaction once granted: its data-path occupancy. The fixed
    /// first-word latency is pipelined across back-to-back transactions,
    /// so it appears once per *busy interval*, not per transaction; for
    /// a per-transaction bound it is included.
    pub fn service_time(&self) -> u64 {
        self.mem_latency + self.nominal_beats as u64
    }

    /// Data-path occupancy of one equalized transaction in steady
    /// state (latency hidden by pipelining).
    pub fn occupancy(&self) -> u64 {
        self.nominal_beats as u64
    }

    /// Worst-case number of *interfering transactions* granted between
    /// two consecutive grants of one port: `g × (N − 1)` (paper §V-B) —
    /// with the EXBAR's fixed granularity of one this is `N − 1`.
    pub fn max_interfering_txns(&self) -> u64 {
        self.rr_granularity as u64 * (self.num_ports as u64 - 1)
    }

    /// Worst-case number of interfering transactions *in flight* ahead
    /// of a newly arrived request: every other port can hold its full
    /// outstanding allowance queued downstream of the arbiter.
    ///
    /// `max_outstanding` here is the per-port limit of in-flight
    /// equalized transactions *on the shared data path in the analyzed
    /// direction*. Ports that interfere on both directions at once can
    /// queue up to `2 × MAX_OUT`; pass the doubled value for a bound
    /// that is sound under mixed read/write interference.
    pub fn max_interfering_in_flight(&self) -> u64 {
        self.max_interfering_txns() * self.max_outstanding as u64
    }

    /// Worst-case cycles from a sub-transaction reaching its TS stage
    /// to its final data beat, assuming every other port is backlogged:
    /// all in-flight interference drains, then the request is served,
    /// plus the interconnect propagation.
    pub fn worst_case_read_latency(&self) -> u64 {
        let interference = self.max_interfering_in_flight() * self.occupancy();
        interference + self.service_time() + propagation::READ_TOTAL
    }

    /// Worst-case cycles for a full (unequalized) read of `total_beats`
    /// beats issued with an own outstanding window of one: each of its
    /// sub-transactions can suffer one full interference round.
    pub fn worst_case_read_burst_latency(&self, total_beats: u32) -> u64 {
        let subs = total_beats.div_ceil(self.nominal_beats) as u64;
        let per_round = (self.max_interfering_in_flight() + 1) * self.occupancy();
        // Each sub waits one full round in the worst case; latency and
        // propagation are paid once (pipelined thereafter).
        subs * per_round + self.mem_latency + propagation::READ_TOTAL
    }

    /// Worst-case cycles from a write sub-transaction reaching its TS
    /// stage to its (merged) B response. Unlike a read — whose data
    /// transfer *is* its memory service — a write pays its own W-stream
    /// transfer on the shared W channel (it may only start after the
    /// grant, serialized behind interfering writes), then the memory
    /// service, then the B-response latency.
    pub fn worst_case_write_latency(&self) -> u64 {
        let interference = self.max_interfering_in_flight() * self.occupancy();
        interference
            + self.occupancy() // own W-stream transfer
            + self.service_time()
            + self.write_resp_latency
            + propagation::WRITE_TOTAL
    }

    /// Worst-case number of equalized sub-transactions simultaneously in
    /// flight downstream of the TS stages, *including* the analyzed
    /// port's own: every port can hold `MAX_OUT` reads *and* `MAX_OUT`
    /// writes outstanding at once, i.e. `2 × N × MAX_OUT`.
    ///
    /// This is the monitor-facing population bound: a sub-transaction
    /// observed at its TS stage can find at most `max_in_flight_subs() −
    /// 1` other subs already admitted ahead of it.
    pub fn max_in_flight_subs(&self) -> u64 {
        2 * self.num_ports as u64 * self.max_outstanding as u64
    }

    /// Worst-case cycles from a sub-transaction being *staged* at its TS
    /// (observable as the `TsStaged` hop) to the delivery of its final
    /// read-data beat at the slave port (`Delivered`), for use by the
    /// runtime bound monitor.
    ///
    /// Derivation: at staging time at most `max_in_flight_subs() − 1`
    /// other subs (reads and writes, all ports) are already admitted and
    /// must drain ahead of it in the worst case; while it waits for its
    /// own grant, one further arbitration round of
    /// `max_interfering_txns()` newly staged subs can slip in ahead
    /// (fixed-granularity round-robin admits at most one per other port
    /// per round). Each drains in `occupancy()` steady-state cycles,
    /// then the sub itself is served (`service_time()`), plus the
    /// interconnect propagation total.
    pub fn worst_case_staged_read_latency(&self) -> u64 {
        let queued = self.max_in_flight_subs() - 1 + self.max_interfering_txns();
        queued * self.occupancy() + self.service_time() + propagation::READ_TOTAL
    }

    /// Worst-case cycles from a write sub-transaction being *ready* at
    /// its TS — AW staged **and** its last W beat buffered, whichever
    /// is later — to the delivery of its B response at the slave port,
    /// for the runtime bound monitor. The clock excludes master-side
    /// data lag: a master may stage AW long before producing W beats,
    /// and no interconnect bound can cover that. Same population
    /// argument as
    /// [`ServiceModel::worst_case_staged_read_latency`], plus three
    /// write-specific terms:
    ///
    /// * **recycled-read overtaking** — a write enters the memory's
    ///   in-order service queue only once its data is fully assembled
    ///   there, and its W stream is serialized in grant order behind
    ///   every other in-flight write (up to `N × MAX_OUT` transfers of
    ///   `occupancy()` beats on the single W path). Reads admitted
    ///   during that assembly window — at most one per `occupancy()`
    ///   drained, since each needs a recycled outstanding slot — jump
    ///   ahead of the write, adding up to `N × MAX_OUT` further jobs to
    ///   its queue (the controller's write-starvation avoidance admits
    ///   at most one more once the write is assembled);
    /// * the sub's **own W-stream transfer**;
    /// * the memory's **write-response latency**.
    pub fn worst_case_staged_write_latency(&self) -> u64 {
        let queued = self.max_in_flight_subs() - 1 + self.max_interfering_txns();
        let write_population = self.num_ports as u64 * self.max_outstanding as u64;
        (queued + write_population) * self.occupancy()
            + self.occupancy() // own W-stream transfer
            + self.service_time()
            + self.write_resp_latency
            + propagation::WRITE_TOTAL
    }

    /// Population bound for one competing port under regulation: how
    /// many of its sub-transactions can be queued on the shared data
    /// path at once, starting from the unregulated allowance
    /// `dir_limit` (2·`MAX_OUT` across both directions, `MAX_OUT` for
    /// one).
    ///
    /// * An outstanding cap bounds the population directly.
    /// * A rate limiter bounds it by `burst + rate`: everything the
    ///   port has in flight was admitted from at most its accumulated
    ///   burst credits plus one refill, provided the refill window is
    ///   no shorter than the time the shared path needs to drain one
    ///   interference round (the regime the QoS scenarios program;
    ///   shorter windows fall back to the unregulated term only if
    ///   `burst + rate` exceeds it, so the bound stays sound there
    ///   too — it is simply not tighter).
    fn port_in_flight_cap(&self, cap: Option<&RegulationCap>, dir_limit: u64) -> u64 {
        let Some(c) = cap else {
            return dir_limit;
        };
        let mut bound = dir_limit;
        if let Some(oc) = c.out_cap {
            bound = bound.min(oc as u64);
        }
        if let Some(r) = c.rate {
            bound = bound.min(c.burst as u64 + r as u64);
        }
        bound
    }

    /// Tightened [`ServiceModel::worst_case_staged_read_latency`] for
    /// `port` when competitors are traffic-regulated (`caps[j]` is the
    /// regulation of port `j`, `None` = unregulated).
    ///
    /// The interference term shrinks because a rate-capped competitor
    /// cannot keep its full outstanding allowance queued: its
    /// population is bounded by [`RegulationCap`] (see
    /// `port_in_flight_cap`). A competitor whose population bound is
    /// zero also drops out of the arbitration round. With every entry
    /// `None` this reduces *exactly* to the unregulated staged bound.
    ///
    /// # Panics
    ///
    /// Panics if `caps.len() != num_ports` or `port` is out of range.
    pub fn regulated_staged_read_latency(
        &self,
        caps: &[Option<RegulationCap>],
        port: usize,
    ) -> u64 {
        let (queued, round) = self.regulated_population(caps, port);
        (queued + round) * self.occupancy() + self.service_time() + propagation::READ_TOTAL
    }

    /// Tightened [`ServiceModel::worst_case_staged_write_latency`] for
    /// `port` under competitor regulation; same derivation as the read
    /// bound plus the write-specific terms, with the recycled-read
    /// overtaking window also shrunk to each port's regulated write
    /// population. Reduces exactly to the unregulated staged write
    /// bound when every entry is `None`.
    ///
    /// # Panics
    ///
    /// Panics if `caps.len() != num_ports` or `port` is out of range.
    pub fn regulated_staged_write_latency(
        &self,
        caps: &[Option<RegulationCap>],
        port: usize,
    ) -> u64 {
        let (queued, round) = self.regulated_population(caps, port);
        let k = self.max_outstanding as u64;
        let write_population: u64 = caps
            .iter()
            .map(|cap| self.port_in_flight_cap(cap.as_ref(), k))
            .sum();
        (queued + round + write_population) * self.occupancy()
            + self.occupancy() // own W-stream transfer
            + self.service_time()
            + self.write_resp_latency
            + propagation::WRITE_TOTAL
    }

    /// Shared population arithmetic of the regulated staged bounds:
    /// `(queued, round)` — subs admitted ahead of the analyzed one, and
    /// the extra arbitration-round slots competitors with a nonzero
    /// population can still claim.
    fn regulated_population(&self, caps: &[Option<RegulationCap>], port: usize) -> (u64, u64) {
        assert_eq!(
            caps.len(),
            self.num_ports,
            "one regulation entry per port required"
        );
        assert!(port < self.num_ports, "analyzed port out of range");
        let own = 2 * self.max_outstanding as u64;
        let mut queued = own - 1;
        let mut round = 0u64;
        for (j, cap) in caps.iter().enumerate() {
            if j == port {
                continue;
            }
            let pop = self.port_in_flight_cap(cap.as_ref(), own);
            queued += pop;
            if pop > 0 {
                round += self.rr_granularity as u64;
            }
        }
        (queued, round)
    }

    /// Worst-case cycles for a quiescent drain of one port to complete
    /// once new admissions stop at its TS ingest.
    ///
    /// When a port is quiesced, everything already *admitted* — staged
    /// sub-transactions and in-flight ones downstream of the TS — must
    /// still complete. The last such sub-transaction is, by definition,
    /// a staged one, so its completion is bounded by the staged-latency
    /// bounds: every admitted sub finishes within
    /// `max(worst_case_staged_read_latency, worst_case_staged_write_latency)`
    /// cycles of the quiesce request taking effect. A drain that exceeds
    /// this deadline implies a protocol fault downstream (e.g. a
    /// stuck-valid master starving the shared W path) and justifies a
    /// force-flush.
    pub fn drain_deadline(&self) -> u64 {
        self.worst_case_staged_read_latency()
            .max(self.worst_case_staged_write_latency())
    }

    /// Closed-form worst-case completion bound (cycles) for one logical
    /// transaction under transient fabric/slave faults, retried with
    /// `policy` (see [`axi::retry::RetryPolicy::completion_bound`]).
    ///
    /// The fault-free per-attempt cost is this model's
    /// [`Self::drain_deadline`] — the bound by which *any* admitted
    /// sub-transaction completes — so under the bounded-fault-rate
    /// assumption (at most `max_faults` transient errors per logical
    /// transaction) every retried burst finishes within the returned
    /// figure. Arm it in a runtime monitor before a fault campaign.
    pub fn retry_completion_bound(&self, policy: &axi::retry::RetryPolicy, max_faults: u32) -> u64 {
        policy.completion_bound(self.drain_deadline(), max_faults)
    }

    /// Minimum bytes per period guaranteed to a port with budget `b`
    /// sub-transactions per period of `t` cycles, with `bytes_per_beat`
    /// wide data beats — the reservation guarantee of Pagani et al.
    /// (ECRTS 2019), assuming the
    /// port is backlogged and the schedule is feasible (total budgets'
    /// occupancy fits in the period).
    pub fn guaranteed_bytes_per_period(&self, budget: u32, bytes_per_beat: u64) -> u64 {
        budget as u64 * self.nominal_beats as u64 * bytes_per_beat
    }

    /// Whether a set of per-port budgets is feasible within a period of
    /// `t` cycles: total data-path occupancy (plus one pipeline fill)
    /// must fit.
    pub fn budgets_feasible(&self, budgets: &[u32], period: u64) -> bool {
        let total: u64 = budgets.iter().map(|&b| b as u64 * self.occupancy()).sum();
        total + self.mem_latency <= period
    }
}

/// Splits a total bandwidth capacity (in equalized transactions per
/// period) into per-port budgets according to percentage shares,
/// flooring each share — the translation the hypervisor driver performs
/// for the paper's `HC-X-Y` configurations.
///
/// Each budget is `⌊capacity × share / 100⌋` computed in 64-bit: the
/// floor guarantees `Σ budgets ≤ capacity` for *any* share vector
/// summing to 100 (so the output always satisfies
/// [`ServiceModel::budgets_feasible`] for a capacity derived from
/// [`period_capacity_txns`]), and the widening multiply cannot wrap for
/// large capacities the way the old 32-bit `capacity * share` did.
///
/// # Panics
///
/// Panics if the shares do not sum to 100.
pub fn budgets_from_shares(capacity_txns: u32, shares_percent: &[u32]) -> Vec<u32> {
    let sum: u64 = shares_percent.iter().map(|&s| u64::from(s)).sum();
    assert_eq!(sum, 100, "shares must sum to 100 percent");
    shares_percent
        .iter()
        .map(|&s| (u64::from(capacity_txns) * u64::from(s) / 100) as u32)
        .collect()
}

/// Transactions-per-period capacity of the memory path for a given
/// period, nominal burst and memory model: how many equalized
/// transactions fit in one reservation period.
pub fn period_capacity_txns(period: u64, nominal_beats: u32, mem_latency: u64) -> u32 {
    (period.saturating_sub(mem_latency) / nominal_beats as u64) as u32
}

impl sim::persist::PersistValue for ServiceModel {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_usize(self.num_ports);
        w.put_u32(self.nominal_beats);
        w.put_u64(self.mem_latency);
        w.put_u64(self.write_resp_latency);
        w.put_u32(self.rr_granularity);
        w.put_u32(self.max_outstanding);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            num_ports: r.take_usize()?,
            nominal_beats: r.take_u32()?,
            mem_latency: r.take_u64()?,
            write_resp_latency: r.take_u64()?,
            rr_granularity: r.take_u32()?,
            max_outstanding: r.take_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_constants_match_paper() {
        assert_eq!(propagation::D_AR, 4);
        assert_eq!(propagation::D_AW, 4);
        assert_eq!(propagation::D_R, 2);
        assert_eq!(propagation::D_W, 2);
        assert_eq!(propagation::D_B, 2);
        assert_eq!(propagation::READ_TOTAL, 6);
        assert_eq!(propagation::WRITE_TOTAL, 8);
    }

    #[test]
    fn interference_scales_with_ports_and_granularity() {
        let hc = ServiceModel::hyperconnect(4, 16, 22);
        assert_eq!(hc.max_interfering_txns(), 3);
        assert_eq!(hc.max_interfering_in_flight(), 12);
        let sc = ServiceModel {
            rr_granularity: 4,
            ..hc
        };
        assert_eq!(sc.max_interfering_txns(), 12);
        assert!(sc.worst_case_read_latency() > hc.worst_case_read_latency());
    }

    #[test]
    fn worst_case_single_txn() {
        let m = ServiceModel::hyperconnect(2, 16, 22);
        // 1 port * 4 outstanding interfering txns * 16 + (22 + 16) + 6.
        assert_eq!(m.worst_case_read_latency(), 4 * 16 + 38 + 6);
        // Tightening the outstanding limit tightens the bound.
        let tight = m.max_outstanding(1);
        assert_eq!(tight.worst_case_read_latency(), 16 + 38 + 6);
    }

    #[test]
    fn burst_bound_grows_with_subs() {
        let m = ServiceModel::hyperconnect(2, 16, 22).max_outstanding(1);
        let one = m.worst_case_read_burst_latency(16);
        let four = m.worst_case_read_burst_latency(64);
        assert!(four > one);
        assert_eq!(four - one, 3 * 2 * 16); // 3 more subs * round of 2 txns * 16
    }

    #[test]
    fn write_bound_exceeds_read_bound() {
        let m = ServiceModel::hyperconnect(2, 16, 22);
        // Writes additionally pay their own W transfer, the B-response
        // latency and the longer propagation path.
        assert_eq!(
            m.worst_case_write_latency() - m.worst_case_read_latency(),
            m.occupancy()
                + m.write_resp_latency
                + (propagation::WRITE_TOTAL - propagation::READ_TOTAL)
        );
    }

    #[test]
    fn staged_bounds_pinned_arithmetic() {
        // The stress scenario: 4 ports, K=4 outstanding, 16-beat
        // nominal, 22-cycle memory.
        let m = ServiceModel::hyperconnect(4, 16, 22);
        assert_eq!(m.max_in_flight_subs(), 32);
        // (32 - 1 + 3) * 16 + (22 + 16) + 6.
        assert_eq!(m.worst_case_staged_read_latency(), 34 * 16 + 38 + 6);
        assert_eq!(m.worst_case_staged_read_latency(), 588);
        // Writes add the recycled-read overtaking window (N*K = 16 jobs
        // of 16 beats), own W transfer (16), B latency (4) and the
        // longer propagation path (8 vs 6).
        assert_eq!(
            m.worst_case_staged_write_latency(),
            m.worst_case_staged_read_latency() + 16 * 16 + 16 + 4 + 2
        );
        assert_eq!(m.worst_case_staged_write_latency(), 866);
        // The drain deadline is the max of the two staged bounds: the
        // last admitted sub-transaction is a staged one.
        assert_eq!(m.drain_deadline(), 866);
        // The staged bound dominates the per-port in-flight bound: it
        // accounts for the whole admitted population, not one port's.
        assert!(m.worst_case_staged_read_latency() >= m.worst_case_read_latency());
    }

    #[test]
    fn budget_shares() {
        let budgets = budgets_from_shares(1000, &[90, 10]);
        assert_eq!(budgets, vec![900, 100]);
        let budgets = budgets_from_shares(33, &[50, 50]);
        assert_eq!(budgets, vec![16, 16]);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn shares_must_sum_to_100() {
        let _ = budgets_from_shares(10, &[60, 60]);
    }

    #[test]
    fn budget_rounding_never_exceeds_capacity() {
        let m = ServiceModel::hyperconnect(3, 16, 22);
        // Adversarial share vectors whose floored parts must still sum
        // within capacity — [33,33,34] of 100 used to allocate 100
        // exactly, but of 101 it must not allocate 102.
        for capacity in [33u32, 100, 101, 997, 65_535] {
            for shares in [
                vec![33u32, 33, 34],
                vec![1, 1, 98],
                vec![49, 49, 2],
                vec![100, 0, 0],
            ] {
                let budgets = budgets_from_shares(capacity, &shares);
                let total: u64 = budgets.iter().map(|&b| u64::from(b)).sum();
                assert!(
                    total <= u64::from(capacity),
                    "shares {shares:?} of {capacity} allocated {total}"
                );
            }
        }
        // Feasibility is guaranteed on the function's own output when
        // the capacity itself came from the period arithmetic.
        let period = 65_536u64;
        let cap = period_capacity_txns(period, 16, 22);
        let budgets = budgets_from_shares(cap, &[33, 33, 34]);
        assert!(m.budgets_feasible(&budgets, period));
    }

    #[test]
    fn budget_shares_survive_large_capacities() {
        // 100M transactions: the old 32-bit `capacity * share` multiply
        // wrapped here (100M * 90 > u32::MAX) and returned garbage in
        // release builds.
        let budgets = budgets_from_shares(100_000_000, &[90, 10]);
        assert_eq!(budgets, vec![90_000_000, 10_000_000]);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn share_sum_check_is_wrap_proof() {
        // Sums past u32::MAX must panic, not wrap back around to 100.
        let wrap_to_100 = [u32::MAX, 1, 100, 0];
        let sum_wrapped = wrap_to_100.iter().fold(0u32, |acc, &s| acc.wrapping_add(s));
        assert_eq!(sum_wrapped, 100); // the adversarial premise
        let _ = budgets_from_shares(10, &wrap_to_100);
    }

    #[test]
    fn regulated_bounds_reduce_to_unregulated_when_uncapped() {
        let m = ServiceModel::hyperconnect(4, 16, 22);
        let caps: Vec<Option<RegulationCap>> = vec![None; 4];
        for p in 0..4 {
            assert_eq!(
                m.regulated_staged_read_latency(&caps, p),
                m.worst_case_staged_read_latency()
            );
            assert_eq!(
                m.regulated_staged_write_latency(&caps, p),
                m.worst_case_staged_write_latency()
            );
        }
        // Explicitly-unlimited caps (all fields None/huge) reduce too.
        let inert = Some(RegulationCap {
            rate: None,
            burst: 1,
            out_cap: None,
        });
        let caps = vec![inert; 4];
        assert_eq!(
            m.regulated_staged_read_latency(&caps, 0),
            m.worst_case_staged_read_latency()
        );
    }

    #[test]
    fn regulated_bounds_tighten_with_capped_competitors() {
        // The pinned 4-port scenario: unregulated staged read bound 588.
        let m = ServiceModel::hyperconnect(4, 16, 22);
        // Every competitor capped at 1 outstanding sub-transaction.
        let cap = Some(RegulationCap {
            rate: None,
            burst: 1,
            out_cap: Some(1),
        });
        let caps = vec![None, cap, cap, cap];
        // queued = (2K-1) + 3*1 = 10, round = 3 -> 13*16 + 38 + 6.
        assert_eq!(m.regulated_staged_read_latency(&caps, 0), 13 * 16 + 38 + 6);
        assert!(m.regulated_staged_read_latency(&caps, 0) < m.worst_case_staged_read_latency());
        // Writes: + write_population = K (own) + 3*1 = 7 jobs.
        assert_eq!(
            m.regulated_staged_write_latency(&caps, 0),
            (10 + 3 + 7) * 16 + 16 + 38 + 4 + 8
        );
        // Rate caps tighten through burst + rate.
        let paced = Some(RegulationCap {
            rate: Some(1),
            burst: 2,
            out_cap: None,
        });
        let caps = vec![None, paced, paced, paced];
        // Competitor population min(2K=8, burst+rate=3) = 3.
        // queued = 7 + 9 = 16, round = 3 -> 19*16 + 38 + 6.
        assert_eq!(m.regulated_staged_read_latency(&caps, 0), 19 * 16 + 38 + 6);
        // A fully-blocked competitor (out_cap 0) leaves the round too.
        let off = Some(RegulationCap {
            rate: None,
            burst: 1,
            out_cap: Some(0),
        });
        let caps = vec![None, off, off, off];
        // queued = 7, round = 0: only the port's own pipeline remains.
        assert_eq!(m.regulated_staged_read_latency(&caps, 0), 7 * 16 + 38 + 6);
    }

    #[test]
    fn capacity_and_feasibility() {
        let cap = period_capacity_txns(65_536, 16, 22);
        assert_eq!(cap, (65_536 - 22) / 16);
        let m = ServiceModel::hyperconnect(2, 16, 22);
        let budgets = budgets_from_shares(cap, &[70, 30]);
        assert!(m.budgets_feasible(&budgets, 65_536));
        assert!(!m.budgets_feasible(&[u32::MAX / 32, 0], 65_536));
    }

    #[test]
    fn guaranteed_bandwidth() {
        let m = ServiceModel::hyperconnect(2, 16, 22);
        // 100 txns * 16 beats * 16 bytes.
        assert_eq!(m.guaranteed_bytes_per_period(100, 16), 25_600);
    }
}
