//! Out-of-order completion support — the paper's stated future work.
//!
//! §V-A *Compatibility*: "As today's FPGA SoC platforms do not
//! implement out-of-order transactions at the memory controller, AXI
//! HyperConnect does not currently support out-of-order completion. The
//! implementation of this feature is left as a future work to make the
//! AXI HyperConnect compatible with future platforms."
//!
//! This module implements that future work as an opt-in building
//! block: a [`ReorderBuffer`] that sits on the R return path and
//! restores *issue order* when a future memory controller completes
//! read bursts out of order. With it in front of the EXBAR's routing
//! logic, the routing-information scheme (which assumes in-order
//! responses) keeps working unchanged on an out-of-order platform.
//!
//! Bursts are identified by the transaction tag carried on the beats;
//! the buffer parks early completions until every earlier-issued burst
//! has fully returned.

use std::collections::{HashMap, VecDeque};

use axi::beat::RBeat;

/// Error returned when the buffer cannot accept more parked data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderFull;

impl std::fmt::Display for ReorderFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reorder buffer is full")
    }
}

impl std::error::Error for ReorderFull {}

/// A read-response reorder buffer: releases bursts strictly in the
/// order their requests were issued, regardless of completion order.
///
/// # Example
///
/// ```
/// use axi::beat::RBeat;
/// use axi::types::AxiId;
/// use hyperconnect::reorder::ReorderBuffer;
///
/// let mut rob = ReorderBuffer::new(64);
/// rob.expect(1);
/// rob.expect(2);
/// // Burst 2 completes first: parked.
/// let beat2 = RBeat::new(AxiId(0), vec![0; 4], true).with_tag(2);
/// assert!(rob.accept(beat2).unwrap().is_empty());
/// // Burst 1 completes: both release, in issue order.
/// let beat1 = RBeat::new(AxiId(0), vec![0; 4], true).with_tag(1);
/// let released = rob.accept(beat1).unwrap();
/// assert_eq!(released.len(), 2);
/// assert_eq!(released[0].tag, 1);
/// assert_eq!(released[1].tag, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReorderBuffer {
    /// Issue order of outstanding bursts.
    expected: VecDeque<u64>,
    /// Fully or partially completed bursts, keyed by tag.
    parked: HashMap<u64, Burst>,
    /// Total parked beats (bounds memory use).
    parked_beats: usize,
    capacity_beats: usize,
    max_occupancy: usize,
}

#[derive(Debug, Clone, Default)]
struct Burst {
    beats: Vec<RBeat>,
    complete: bool,
}

impl ReorderBuffer {
    /// Creates a buffer bounding parked data at `capacity_beats`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_beats` is zero.
    pub fn new(capacity_beats: usize) -> Self {
        assert!(capacity_beats > 0, "capacity must be non-zero");
        Self {
            capacity_beats,
            ..Self::default()
        }
    }

    /// Records that a burst with `tag` was issued (call at grant time,
    /// in grant order).
    pub fn expect(&mut self, tag: u64) {
        self.expected.push_back(tag);
    }

    /// Outstanding bursts (expected but not yet fully released).
    pub fn outstanding(&self) -> usize {
        self.expected.len()
    }

    /// Beats currently parked out of order.
    pub fn parked_beats(&self) -> usize {
        self.parked_beats
    }

    /// Largest number of beats ever parked (for sizing studies).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Whether the buffer cannot accept another beat.
    pub fn is_full(&self) -> bool {
        self.parked_beats >= self.capacity_beats
    }

    /// Whether nothing is outstanding or parked.
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty() && self.parked.is_empty()
    }

    /// Accepts one beat from the (possibly out-of-order) memory side
    /// and returns every beat that is now releasable, in issue order.
    ///
    /// # Errors
    ///
    /// Returns [`ReorderFull`] (carrying nothing; the caller retries
    /// next cycle) if the beat would exceed the parking capacity.
    ///
    /// # Panics
    ///
    /// Panics if the beat's tag was never [`Self::expect`]ed — with an
    /// out-of-order memory this indicates lost routing information, the
    /// same class of model bug the EXBAR panics on.
    pub fn accept(&mut self, beat: RBeat) -> Result<Vec<RBeat>, ReorderFull> {
        assert!(
            self.expected.contains(&beat.tag) || self.parked.contains_key(&beat.tag),
            "R beat with unexpected tag {}",
            beat.tag
        );
        if self.is_full() {
            return Err(ReorderFull);
        }
        let last = beat.last;
        let entry = self.parked.entry(beat.tag).or_default();
        entry.beats.push(beat);
        entry.complete |= last;
        self.parked_beats += 1;
        self.max_occupancy = self.max_occupancy.max(self.parked_beats);
        Ok(self.drain_ready())
    }

    fn drain_ready(&mut self) -> Vec<RBeat> {
        let mut out = Vec::new();
        while let Some(&head) = self.expected.front() {
            let ready = self.parked.get(&head).is_some_and(|b| b.complete);
            if !ready {
                break;
            }
            let burst = self.parked.remove(&head).expect("checked above");
            self.parked_beats -= burst.beats.len();
            out.extend(burst.beats);
            self.expected.pop_front();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::AxiId;

    fn burst(tag: u64, beats: u32) -> Vec<RBeat> {
        (0..beats)
            .map(|i| RBeat::new(AxiId(0), vec![tag as u8; 4], i == beats - 1).with_tag(tag))
            .collect()
    }

    #[test]
    fn in_order_passes_straight_through() {
        let mut rob = ReorderBuffer::new(16);
        rob.expect(1);
        rob.expect(2);
        let mut released = Vec::new();
        for beat in burst(1, 2).into_iter().chain(burst(2, 2)) {
            released.extend(rob.accept(beat).unwrap());
        }
        let tags: Vec<u64> = released.iter().map(|b| b.tag).collect();
        assert_eq!(tags, vec![1, 1, 2, 2]);
        assert!(rob.is_empty());
    }

    #[test]
    fn out_of_order_is_restored() {
        let mut rob = ReorderBuffer::new(64);
        for tag in 1..=3 {
            rob.expect(tag);
        }
        // Completion order 3, 2, 1.
        let mut released = Vec::new();
        for beat in burst(3, 4) {
            released.extend(rob.accept(beat).unwrap());
        }
        assert!(released.is_empty());
        for beat in burst(2, 4) {
            released.extend(rob.accept(beat).unwrap());
        }
        assert!(released.is_empty());
        assert_eq!(rob.parked_beats(), 8);
        for beat in burst(1, 4) {
            released.extend(rob.accept(beat).unwrap());
        }
        let tags: Vec<u64> = released.iter().map(|b| b.tag).collect();
        assert_eq!(
            tags,
            vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3],
            "issue order restored"
        );
        assert!(rob.is_empty());
        // 8 beats of bursts 3 and 2 stayed parked while all 4 beats of
        // burst 1 accumulated before its LAST triggered the drain.
        assert_eq!(rob.max_occupancy(), 12);
    }

    #[test]
    fn interleaved_beats_of_different_bursts() {
        let mut rob = ReorderBuffer::new(64);
        rob.expect(1);
        rob.expect(2);
        let b1 = burst(1, 2);
        let b2 = burst(2, 2);
        // Memory interleaves: 2a, 1a, 2b(last), 1b(last).
        assert!(rob.accept(b2[0].clone()).unwrap().is_empty());
        assert!(rob.accept(b1[0].clone()).unwrap().is_empty());
        assert!(rob.accept(b2[1].clone()).unwrap().is_empty());
        let released = rob.accept(b1[1].clone()).unwrap();
        let tags: Vec<u64> = released.iter().map(|b| b.tag).collect();
        assert_eq!(tags, vec![1, 1, 2, 2]);
    }

    #[test]
    fn capacity_backpressure() {
        let mut rob = ReorderBuffer::new(2);
        rob.expect(1);
        rob.expect(2);
        let b2 = burst(2, 3);
        rob.accept(b2[0].clone()).unwrap();
        rob.accept(b2[1].clone()).unwrap();
        assert!(rob.is_full());
        assert_eq!(rob.accept(b2[2].clone()), Err(ReorderFull));
        assert_eq!(ReorderFull.to_string(), "reorder buffer is full");
        // Releasing the head frees space.
        let b1 = burst(1, 1);
        // Head burst can still be accepted? No: buffer is full for any
        // beat. The caller must drain by completing the head... which
        // also needs space. This is why the capacity must exceed the
        // largest burst; assert the invariant is at least detectable.
        assert!(rob.accept(b1[0].clone()).is_err());
    }

    #[test]
    #[should_panic(expected = "unexpected tag")]
    fn unexpected_tag_panics() {
        let mut rob = ReorderBuffer::new(8);
        rob.expect(1);
        let _ = rob.accept(RBeat::new(AxiId(0), vec![], true).with_tag(99));
    }

    proptest::proptest! {
        /// For any issue order and any (per-burst-atomic) completion
        /// permutation, the buffer releases exactly the issued beats,
        /// grouped per burst, in issue order.
        #[test]
        fn any_completion_order_is_restored(
            lens in proptest::collection::vec(1u32..8, 1..12),
            seed in 0u64..1000,
        ) {
            let mut rob = ReorderBuffer::new(4096);
            let tags: Vec<u64> = (1..=lens.len() as u64).collect();
            for &t in &tags {
                rob.expect(t);
            }
            // Shuffle completion order deterministically from the seed.
            let mut order: Vec<usize> = (0..lens.len()).collect();
            let mut rng = sim::SimRng::seed(seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.range_usize(0, i));
            }
            let mut released = Vec::new();
            for &idx in &order {
                for beat in burst(tags[idx], lens[idx]) {
                    released.extend(rob.accept(beat).unwrap());
                }
            }
            proptest::prop_assert!(rob.is_empty());
            // Released tags are grouped and in issue order, with the
            // exact per-burst beat counts.
            let mut expected = Vec::new();
            for (i, &t) in tags.iter().enumerate() {
                expected.extend(std::iter::repeat_n(t, lens[i] as usize));
            }
            let got: Vec<u64> = released.iter().map(|b| b.tag).collect();
            proptest::prop_assert_eq!(got, expected);
            // LAST appears exactly once per burst, on its final beat.
            let mut pos = 0;
            for &len in &lens {
                for k in 0..len as usize {
                    proptest::prop_assert_eq!(
                        released[pos + k].last,
                        k + 1 == len as usize
                    );
                }
                pos += len as usize;
            }
        }
    }

    #[test]
    fn outstanding_counts() {
        let mut rob = ReorderBuffer::new(8);
        rob.expect(7);
        assert_eq!(rob.outstanding(), 1);
        assert!(!rob.is_empty());
        for beat in burst(7, 2) {
            rob.accept(beat).unwrap();
        }
        assert_eq!(rob.outstanding(), 0);
        assert!(rob.is_empty());
    }
}
