//! The AXI HyperConnect — a predictable, hypervisor-level AXI
//! interconnect for hardware accelerators on FPGA SoCs.
//!
//! This crate is a cycle-level behavioral reproduction of the
//! interconnect proposed by Restuccia et al. (DAC 2020). Its pipeline
//! mirrors the paper's architecture (Fig. 2):
//!
//! ```text
//!  HA0 ──▶ eFIFO ──▶ TS ─┐
//!  HA1 ──▶ eFIFO ──▶ TS ─┤──▶ EXBAR ──▶ eFIFO ──▶ FPGA-PS interface
//!  ...                   │        ▲
//!  central unit ─────────┘   AXI-Lite register file (hypervisor)
//! ```
//!
//! Key properties reproduced by construction:
//!
//! * fixed propagation latency: 4 cycles on AR/AW, 2 on R/W/B
//!   ([`analysis::propagation`]);
//! * round-robin arbitration with **fixed granularity one** ([`exbar`]);
//! * **burst equalization** to a nominal size and outstanding limiting
//!   ([`supervisor`], after Restuccia et al., TECS 2019);
//! * **bandwidth reservation** with periodic synchronous recharge
//!   ([`central`], after Pagani et al., ECRTS 2019);
//! * per-port **credit-based traffic regulation** (rate, burst depth and
//!   outstanding caps) with derived tighter latency bounds for the
//!   regulated system ([`regulate`], [`analysis`]);
//! * per-port **decoupling** and runtime reconfiguration through a
//!   memory-mapped register file ([`efifo`], [`regfile`]).
//!
//! # Quick start
//!
//! ```
//! use axi::{ArBeat, AxiInterconnect};
//! use axi::types::BurstSize;
//! use hyperconnect::{HcConfig, HyperConnect};
//! use sim::Component;
//!
//! let mut hc = HyperConnect::new(HcConfig::new(2));
//! hc.port(0).ar.push(0, ArBeat::new(0x1000, 16, BurstSize::B4)).unwrap();
//! for now in 0..10 {
//!     hc.tick(now);
//! }
//! // The request has traversed the 4-stage pipeline to the master port.
//! assert!(hc.mem_port().ar.pop_ready(10).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod central;
pub mod config;
pub mod efifo;
pub mod exbar;
pub mod hyperconnect;
pub mod observe;
pub mod regfile;
pub mod regulate;
pub mod reorder;
pub mod supervisor;

pub use analysis::RegulationCap;
pub use config::{ArbitrationPolicy, HcConfig};
pub use hyperconnect::HyperConnect;
pub use observe::BoundMonitor;
pub use regfile::{RegFile, BUDGET_UNLIMITED};
pub use regulate::{
    CreditRegulator, RegulatorConfig, DEFAULT_WINDOW, OUT_CAP_UNLIMITED, RATE_UNLIMITED,
};
pub use supervisor::{TransactionSupervisor, TsRuntime, TsStats};
