//! The EXBAR: a low-latency crossbar with fixed-granularity round-robin
//! arbitration and proactive response routing.
//!
//! Paper §V-B: the EXBAR resolves conflicts among the read/write address
//! requests propagated by the TS modules, using round-robin with a
//! *fixed granularity of one transaction per TS module per round* —
//! unlike the SmartConnect, whose variable granularity lets a port
//! interfere with another for up to `g × (N − 1)` transactions. The
//! EXBAR records grant order as *routing information* in circular
//! buffers and uses it to route the R, W and B channels proactively,
//! adding one cycle of latency per address request and none on the data
//! and response channels.

use axi::beat::{ArBeat, AwBeat, WBeat};
use axi::observe::{Hop, ObsChannel, ObsEvent};
use axi::routing::{RouteEntry, RouteQueue};
use axi::{AxiPort, Payload};
use sim::ring::Ring;
use sim::{Cycle, TimedFifo};

use crate::config::ArbitrationPolicy;
use crate::efifo::EFifo;
use crate::supervisor::TransactionSupervisor;

/// One granted write burst awaiting its W data, in grant order.
///
/// Besides the source port the entry remembers the burst geometry so
/// that, when the port is decoupled mid-burst, the EXBAR can complete
/// the burst with strobe-disabled filler beats (the AXI-firewall
/// behavior real decouplers implement) instead of head-of-line blocking
/// every other port's writes forever.
#[derive(Debug, Clone, Copy)]
struct WRoute {
    /// Source port of the granted write.
    port: usize,
    /// Beats the granted sub-burst owes.
    beats: u32,
    /// Bytes per beat.
    bytes: usize,
    /// Beats already moved to memory.
    moved: u32,
}

/// Per-port grant counters (for fairness analysis).
#[derive(Debug, Clone, Default)]
pub struct ExbarStats {
    /// Read-address grants per port.
    pub ar_grants: Vec<u64>,
    /// Write-address grants per port.
    pub aw_grants: Vec<u64>,
}

/// The crossbar connecting N Transaction Supervisors to the master port.
#[derive(Debug)]
pub struct Exbar {
    policy: ArbitrationPolicy,
    ar_rr: usize,
    aw_rr: usize,
    /// The crossbar's one-cycle output register for read requests.
    ar_stage: TimedFifo<ArBeat>,
    /// The crossbar's one-cycle output register for write requests.
    aw_stage: TimedFifo<AwBeat>,
    /// Grant order of reads — routes R beats back to ports.
    read_routes: RouteQueue,
    /// Grant order of writes — routes B responses back to ports.
    b_routes: RouteQueue,
    /// Grant order of writes — which port supplies the next W beats.
    /// Ring-buffer slots updated in place (per-beat progress bumps the
    /// head slot's `moved` counter rather than re-queueing the entry).
    w_routes: Ring<WRoute>,
    /// Strobe-disabled filler beats synthesized for decoupled ports.
    firewall_beats: u64,
    stats: ExbarStats,
    /// Whether hop events are being emitted (observability).
    obs_enabled: bool,
    /// Hop events buffered for the owning interconnect to drain.
    obs_events: Vec<ObsEvent>,
}

impl Exbar {
    /// Creates an EXBAR for `num_ports` inputs with routing buffers of
    /// `routing_depth` outstanding transactions.
    pub fn new(num_ports: usize, routing_depth: usize) -> Self {
        Self::with_policy(num_ports, routing_depth, ArbitrationPolicy::RoundRobin)
    }

    /// Creates an EXBAR with an explicit arbitration policy.
    pub fn with_policy(num_ports: usize, routing_depth: usize, policy: ArbitrationPolicy) -> Self {
        Self {
            policy,
            ar_rr: 0,
            aw_rr: 0,
            ar_stage: TimedFifo::new(2, 1),
            aw_stage: TimedFifo::new(2, 1),
            read_routes: RouteQueue::new(routing_depth),
            b_routes: RouteQueue::new(routing_depth),
            w_routes: Ring::new(),
            firewall_beats: 0,
            stats: ExbarStats {
                ar_grants: vec![0; num_ports],
                aw_grants: vec![0; num_ports],
            },
            obs_enabled: false,
            obs_events: Vec::new(),
        }
    }

    /// Starts emitting [`ObsEvent`]s at grant and memory-visibility
    /// sites. Events accumulate until drained with
    /// [`Exbar::drain_obs_events`].
    pub fn enable_observability(&mut self) {
        self.obs_enabled = true;
    }

    /// Moves all buffered hop events into `into`, preserving order.
    pub fn drain_obs_events(&mut self, into: &mut Vec<ObsEvent>) {
        into.append(&mut self.obs_events);
    }

    /// Whether any hop events are waiting to be drained.
    pub fn has_obs_events(&self) -> bool {
        !self.obs_events.is_empty()
    }

    /// Grant counters.
    pub fn stats(&self) -> &ExbarStats {
        &self.stats
    }

    /// Strobe-disabled W beats synthesized to complete write bursts of
    /// decoupled ports (see [`Exbar::move_w`]).
    pub fn firewall_beats(&self) -> u64 {
        self.firewall_beats
    }

    /// Earliest cycle at which a beat parked in the crossbar's output
    /// registers becomes visible downstream, or `None` when both stages
    /// are empty. Event-horizon hint for the fast-forward scheduler.
    pub fn next_stage_ready(&self) -> Option<Cycle> {
        [self.ar_stage.next_ready_at(), self.aw_stage.next_ready_at()]
            .into_iter()
            .flatten()
            .min()
    }

    /// Whether the EXBAR holds no in-flight state.
    pub fn is_idle(&self) -> bool {
        self.ar_stage.is_empty()
            && self.aw_stage.is_empty()
            && self.read_routes.is_empty()
            && self.b_routes.is_empty()
            && self.w_routes.is_empty()
    }

    /// Round-robin scan starting *after* the last granted port —
    /// granularity is fixed at one transaction per grant.
    fn rr_pick<F>(start: usize, n: usize, mut ready: F) -> Option<usize>
    where
        F: FnMut(usize) -> bool,
    {
        (1..=n).map(|k| (start + k) % n).find(|&p| ready(p))
    }

    /// Picks the next port to grant according to the configured policy.
    fn pick<F>(&self, start: usize, n: usize, mut ready: F) -> Option<usize>
    where
        F: FnMut(usize) -> bool,
    {
        match self.policy {
            ArbitrationPolicy::RoundRobin => Self::rr_pick(start, n, ready),
            ArbitrationPolicy::FixedPriority => (0..n).find(|&p| ready(p)),
        }
    }

    /// Arbitrates one read request among the TS stages. Returns `true`
    /// if a grant happened.
    pub fn arbitrate_ar(&mut self, now: Cycle, ts: &mut [TransactionSupervisor]) -> bool {
        if self.ar_stage.is_full() || self.read_routes.is_full() {
            return false;
        }
        let n = ts.len();
        let Some(port) = self.pick(self.ar_rr, n, |p| ts[p].ar_stage.has_ready(now)) else {
            return false;
        };
        let sub = ts[port].ar_stage.pop_ready(now).expect("checked ready");
        if self.obs_enabled {
            self.obs_events.push(ObsEvent {
                uid: sub.beat.uid,
                port: Some(port),
                channel: ObsChannel::Ar,
                hop: Hop::ExbarGranted,
                cycle: now,
                ref_cycle: sub.beat.issued_at,
                bytes: sub.beat.total_bytes(),
                sub_end: sub.final_sub,
                txn_end: false,
            });
        }
        self.read_routes
            .push(RouteEntry {
                port,
                final_sub: sub.final_sub,
                tag: sub.beat.tag,
                uid: sub.beat.uid,
            })
            .expect("checked space");
        self.ar_stage.push(now, sub.beat).expect("checked space");
        self.ar_rr = port;
        self.stats.ar_grants[port] += 1;
        true
    }

    /// Arbitrates one write request among the TS stages. Returns `true`
    /// if a grant happened.
    pub fn arbitrate_aw(&mut self, now: Cycle, ts: &mut [TransactionSupervisor]) -> bool {
        if self.aw_stage.is_full() || self.b_routes.is_full() {
            return false;
        }
        let n = ts.len();
        let Some(port) = self.pick(self.aw_rr, n, |p| ts[p].aw_stage.has_ready(now)) else {
            return false;
        };
        let sub = ts[port].aw_stage.pop_ready(now).expect("checked ready");
        if self.obs_enabled {
            self.obs_events.push(ObsEvent {
                uid: sub.beat.uid,
                port: Some(port),
                channel: ObsChannel::Aw,
                hop: Hop::ExbarGranted,
                cycle: now,
                ref_cycle: sub.beat.issued_at,
                bytes: sub.beat.total_bytes(),
                sub_end: sub.final_sub,
                txn_end: false,
            });
        }
        self.b_routes
            .push(RouteEntry {
                port,
                final_sub: sub.final_sub,
                tag: sub.beat.tag,
                uid: sub.beat.uid,
            })
            .expect("checked space");
        self.w_routes.push_back(WRoute {
            port,
            beats: sub.beat.len,
            bytes: sub.beat.size.bytes() as usize,
            moved: 0,
        });
        self.aw_stage.push(now, sub.beat).expect("checked space");
        self.aw_rr = port;
        self.stats.aw_grants[port] += 1;
        true
    }

    /// Moves granted requests from the crossbar registers into the
    /// master eFIFO. Returns `true` on any movement.
    pub fn move_to_mem(&mut self, now: Cycle, mem_port: &mut AxiPort) -> bool {
        let mut progress = false;
        if self.ar_stage.has_ready(now) && !mem_port.ar.is_full() {
            let beat = self.ar_stage.pop_ready(now).expect("checked ready");
            if self.obs_enabled {
                self.obs_events.push(ObsEvent {
                    uid: beat.uid,
                    port: None,
                    channel: ObsChannel::Ar,
                    hop: Hop::MemVisible,
                    cycle: now,
                    ref_cycle: beat.issued_at,
                    bytes: beat.total_bytes(),
                    sub_end: false,
                    txn_end: false,
                });
            }
            mem_port.ar.push(now, beat).expect("checked space");
            progress = true;
        }
        if self.aw_stage.has_ready(now) && !mem_port.aw.is_full() {
            let beat = self.aw_stage.pop_ready(now).expect("checked ready");
            if self.obs_enabled {
                self.obs_events.push(ObsEvent {
                    uid: beat.uid,
                    port: None,
                    channel: ObsChannel::Aw,
                    hop: Hop::MemVisible,
                    cycle: now,
                    ref_cycle: beat.issued_at,
                    bytes: beat.total_bytes(),
                    sub_end: false,
                    txn_end: false,
                });
            }
            mem_port.aw.push(now, beat).expect("checked space");
            progress = true;
        }
        progress
    }

    /// Moves one write-data beat from the port at the head of the W
    /// routing order into the master eFIFO (proactive: the stored grant
    /// order fully determines the source port). Returns `true` on
    /// movement.
    ///
    /// If the head port has been decoupled and is no longer feeding its
    /// granted burst, the EXBAR completes the burst with strobe-disabled
    /// filler beats (which commit nothing downstream) so one hung writer
    /// cannot head-of-line block every other port's write channel.
    pub fn move_w(
        &mut self,
        now: Cycle,
        ts: &mut [TransactionSupervisor],
        efifos: &[EFifo],
        mem_port: &mut AxiPort,
    ) -> bool {
        // Single slot lookup: the head route is read and updated in
        // place through one `front_mut` handle (no copy-out/look-up-again
        // round trip).
        let Some(route) = self.w_routes.front_mut() else {
            return false;
        };
        if mem_port.w.is_full() {
            return false;
        }
        let port = route.port;
        let beat = if ts[port].w_stage.has_ready(now) {
            let w = ts[port].w_stage.pop_ready(now).expect("checked ready");
            // Firewall filler beats (the `else` branch) are synthesized by
            // the crossbar itself and carry no master-issued timestamp, so
            // only real beats are observable W traffic.
            if self.obs_enabled {
                self.obs_events.push(ObsEvent {
                    uid: 0,
                    port: Some(port),
                    channel: ObsChannel::W,
                    hop: Hop::MemVisible,
                    cycle: now,
                    ref_cycle: w.issued_at,
                    bytes: w.data.len() as u64,
                    sub_end: false,
                    txn_end: false,
                });
            }
            w
        } else if efifos[port].is_decoupled() {
            let last = route.moved + 1 >= route.beats;
            self.firewall_beats += 1;
            WBeat::new(Payload::zeroed(route.bytes), last).with_strobe(0)
        } else {
            return false;
        };
        let last = beat.last;
        mem_port.w.push(now, beat).expect("checked space");
        if last {
            self.w_routes.pop_front();
        } else {
            route.moved += 1;
        }
        true
    }

    /// Routes one read-data beat from the master eFIFO back to the port
    /// recorded at the head of the read routing order. Returns `true` on
    /// movement.
    pub fn route_r(
        &mut self,
        now: Cycle,
        ts: &mut [TransactionSupervisor],
        efifos: &mut [EFifo],
        mem_port: &mut AxiPort,
    ) -> bool {
        if !mem_port.r.has_ready(now) {
            return false;
        }
        let Some(route) = self.read_routes.head().copied() else {
            // A data beat with no routing record would be a model bug;
            // surface it loudly rather than silently dropping data.
            panic!("R beat arrived with empty routing information");
        };
        if !efifos[route.port].can_push_r() {
            return false;
        }
        let mut beat = mem_port.r.pop_ready(now).expect("checked ready");
        // Attribute the delivery to *this* interconnect's uid namespace:
        // in a cascade the beat arrives carrying the uid assigned
        // furthest downstream, while the route recorded the uid the
        // request had at this hop's grant point (identical outside a
        // cascade, so this is a no-op for flat systems).
        beat.uid = route.uid;
        let sub_end = ts[route.port].deliver_r(now, beat, route.final_sub, &mut efifos[route.port]);
        if sub_end {
            self.read_routes.pop();
        }
        true
    }

    /// Routes one write response from the master eFIFO back to the port
    /// recorded at the head of the B routing order. Returns `true` on
    /// movement.
    pub fn route_b(
        &mut self,
        now: Cycle,
        ts: &mut [TransactionSupervisor],
        efifos: &mut [EFifo],
        mem_port: &mut AxiPort,
    ) -> bool {
        if !mem_port.b.has_ready(now) {
            return false;
        }
        let Some(route) = self.b_routes.head().copied() else {
            panic!("B response arrived with empty routing information");
        };
        if !efifos[route.port].can_push_b() {
            return false;
        }
        let mut beat = mem_port.b.pop_ready(now).expect("checked ready");
        // Same per-hop uid attribution as `route_r`.
        beat.uid = route.uid;
        ts[route.port].deliver_b(now, beat, route.final_sub, &mut efifos[route.port]);
        self.b_routes.pop();
        true
    }
}

mod persist_impls {
    use super::{Exbar, ExbarStats, WRoute};
    use crate::config::ArbitrationPolicy;
    use axi::routing::RouteQueue;
    use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};
    use sim::ring::Ring;
    use sim::TimedFifo;

    impl PersistValue for WRoute {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_usize(self.port);
            w.put_u32(self.beats);
            w.put_usize(self.bytes);
            w.put_u32(self.moved);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                port: r.take_usize()?,
                beats: r.take_u32()?,
                bytes: r.take_usize()?,
                moved: r.take_u32()?,
            })
        }
    }

    impl PersistValue for ExbarStats {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.ar_grants.save_value(w);
            self.aw_grants.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                ar_grants: Vec::load_value(r)?,
                aw_grants: Vec::load_value(r)?,
            })
        }
    }

    impl PersistValue for Exbar {
        /// The routing rings are serialized in logical (grant) order;
        /// the buffered observability events ride along so a snapshot
        /// taken mid-tick-sequence loses no hop attribution.
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.policy.save_value(w);
            w.put_usize(self.ar_rr);
            w.put_usize(self.aw_rr);
            self.ar_stage.save_value(w);
            self.aw_stage.save_value(w);
            self.read_routes.save_value(w);
            self.b_routes.save_value(w);
            self.w_routes.save_value(w);
            w.put_u64(self.firewall_beats);
            self.stats.save_value(w);
            w.put_bool(self.obs_enabled);
            self.obs_events.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let exbar = Self {
                policy: ArbitrationPolicy::load_value(r)?,
                ar_rr: r.take_usize()?,
                aw_rr: r.take_usize()?,
                ar_stage: TimedFifo::load_value(r)?,
                aw_stage: TimedFifo::load_value(r)?,
                read_routes: RouteQueue::load_value(r)?,
                b_routes: RouteQueue::load_value(r)?,
                w_routes: Ring::load_value(r)?,
                firewall_beats: r.take_u64()?,
                stats: ExbarStats::load_value(r)?,
                obs_enabled: r.take_bool()?,
                obs_events: Vec::load_value(r)?,
            };
            if exbar.stats.ar_grants.len() != exbar.stats.aw_grants.len() {
                return Err(PersistError::Corrupt("exbar grant counter shape"));
            }
            Ok(exbar)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::TsRuntime;
    use axi::types::BurstSize;
    use axi::{ArBeat, PortConfig};

    fn rt() -> TsRuntime {
        TsRuntime {
            nominal: 16,
            max_outstanding: 8,
            enabled: true,
            quiesced: false,
            regulator: crate::regulate::RegulatorConfig::unlimited(),
        }
    }

    fn setup(n: usize) -> (Exbar, Vec<TransactionSupervisor>, Vec<EFifo>, AxiPort) {
        let exbar = Exbar::new(n, 32);
        let ts = (0..n).map(|_| TransactionSupervisor::new(32)).collect();
        let efifos = (0..n).map(|_| EFifo::new(4, 32, 4)).collect();
        let mem_port = AxiPort::new(PortConfig::registered());
        (exbar, ts, efifos, mem_port)
    }

    /// Stages a sub-AR on a TS by pushing through its eFIFO and running
    /// ingest/issue until the stage holds it.
    fn stage_ar(ts: &mut TransactionSupervisor, ef: &mut EFifo, now: Cycle, addr: u64) {
        ef.port
            .ar
            .push(now.saturating_sub(1), ArBeat::new(addr, 1, BurstSize::B4))
            .unwrap();
        ts.ingest(now, ef, rt());
        ts.issue(now, rt());
    }

    #[test]
    fn round_robin_alternates_between_ports() {
        let (mut exbar, mut ts, mut efifos, _mem) = setup(2);
        // Fill both TS stages repeatedly and observe alternating grants.
        let mut grants = Vec::new();
        for now in 1..20 {
            for p in 0..2 {
                if ts[p].ar_stage.is_empty() {
                    stage_ar(&mut ts[p], &mut efifos[p], now, (p as u64) * 0x1000);
                }
            }
            if exbar.arbitrate_ar(now + 1, &mut ts) {
                // Who was granted? The rr pointer tracks it.
                grants.push(exbar.ar_rr);
            }
            // Drain the crossbar register so arbitration can continue.
            exbar.ar_stage.pop_ready(now + 2);
        }
        assert!(grants.len() >= 4);
        for pair in grants.windows(2) {
            assert_ne!(pair[0], pair[1], "granularity-1 RR must alternate");
        }
    }

    #[test]
    fn grants_recorded_in_routing_order() {
        let (mut exbar, mut ts, mut efifos, mut mem) = setup(2);
        stage_ar(&mut ts[0], &mut efifos[0], 1, 0x0);
        stage_ar(&mut ts[1], &mut efifos[1], 1, 0x1000);
        // Both stages ready at cycle 2.
        assert!(exbar.arbitrate_ar(2, &mut ts));
        assert!(exbar.arbitrate_ar(3, &mut ts));
        assert!(!exbar.arbitrate_ar(4, &mut ts)); // nothing left
                                                  // Routing order matches grant order.
        let first = exbar.read_routes.head().unwrap().port;
        exbar.move_to_mem(3, &mut mem);
        exbar.move_to_mem(4, &mut mem);
        let ar1 = mem.ar.pop_ready(5).unwrap();
        assert_eq!(
            first == 0,
            ar1.addr == 0,
            "first routed port matches first memory request"
        );
    }

    #[test]
    fn exbar_latency_one_cycle_per_request() {
        let (mut exbar, mut ts, mut efifos, mut mem) = setup(1);
        stage_ar(&mut ts[0], &mut efifos[0], 1, 0x40);
        assert!(exbar.arbitrate_ar(2, &mut ts));
        // Granted at 2, in the crossbar register until 3.
        assert!(!exbar.move_to_mem(2, &mut mem));
        assert!(exbar.move_to_mem(3, &mut mem));
        // Master eFIFO adds its own cycle.
        assert!(mem.ar.pop_ready(3).is_none());
        assert!(mem.ar.pop_ready(4).is_some());
    }

    #[test]
    fn w_beats_follow_aw_grant_order() {
        let (mut exbar, mut ts, mut efifos, mut mem) = setup(2);
        // Port 1 writes first, then port 0; W beats must come out in
        // that order even if port 0's data is staged earlier.
        for (port, when) in [(1usize, 1u64), (0, 3)] {
            efifos[port]
                .port
                .aw
                .push(
                    when - 1,
                    axi::AwBeat::new(port as u64 * 0x100, 1, BurstSize::B4),
                )
                .unwrap();
            efifos[port]
                .port
                .w
                .push(when - 1, axi::WBeat::new(vec![port as u8; 4], true))
                .unwrap();
            ts[port].ingest(when, &mut efifos[port], rt());
            ts[port].issue(when, rt());
        }
        assert!(exbar.arbitrate_aw(2, &mut ts)); // port 1 granted first
        assert!(exbar.arbitrate_aw(4, &mut ts)); // then port 0
        let mut data = Vec::new();
        for now in 2..12 {
            exbar.move_w(now, &mut ts, &efifos, &mut mem);
            if let Some(w) = mem.w.pop_ready(now) {
                data.push(w.data[0]);
            }
        }
        assert_eq!(data, vec![1, 0]);
    }

    #[test]
    fn decoupled_writer_completed_with_firewall_beats() {
        let (mut exbar, mut ts, mut efifos, mut mem) = setup(2);
        // Port 0 is granted a 4-beat write but supplies only one beat
        // before hanging; port 1 has a 1-beat write queued behind it.
        efifos[0]
            .port
            .aw
            .push(0, axi::AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        efifos[0]
            .port
            .w
            .push(0, axi::WBeat::new(vec![7; 4], false))
            .unwrap();
        ts[0].ingest(1, &mut efifos[0], rt());
        ts[0].issue(1, rt());
        assert!(exbar.arbitrate_aw(2, &mut ts));
        efifos[1]
            .port
            .aw
            .push(2, axi::AwBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        efifos[1]
            .port
            .w
            .push(2, axi::WBeat::new(vec![9; 4], true))
            .unwrap();
        ts[1].ingest(3, &mut efifos[1], rt());
        ts[1].issue(3, rt());
        assert!(exbar.arbitrate_aw(4, &mut ts));
        // Move the one real beat; the channel then wedges on port 0.
        for now in 2..10 {
            ts[0].ingest(now, &mut efifos[0], rt());
            exbar.move_w(now, &mut ts, &efifos, &mut mem);
        }
        assert_eq!(mem.w.len(), 1);
        assert!(!exbar.move_w(10, &mut ts, &efifos, &mut mem));
        // Decoupling port 0 lets the EXBAR firewall the rest of the
        // burst and port 1's write drain behind it.
        efifos[0].set_decoupled(true);
        let mut beats = Vec::new();
        for now in 11..20 {
            exbar.move_w(now, &mut ts, &efifos, &mut mem);
            while let Some(w) = mem.w.pop_ready(now) {
                beats.push((w.data[0], w.strb, w.last));
            }
        }
        assert_eq!(exbar.firewall_beats(), 3);
        // Real beat, three strobe-less fillers ending the burst, then
        // port 1's real beat.
        assert_eq!(beats.len(), 5);
        assert_eq!(beats[0], (7, axi::beat::STRB_ALL, false));
        assert!(beats[1..4].iter().all(|&(d, s, _)| d == 0 && s == 0));
        assert!(beats[3].2, "filler completes the burst with LAST");
        assert_eq!(beats[4], (9, axi::beat::STRB_ALL, true));
        assert!(exbar.w_routes.is_empty());
    }

    #[test]
    fn route_r_respects_backpressure_without_loss() {
        let (mut exbar, mut ts, mut efifos, mut mem) = setup(1);
        // Tiny R queue on the eFIFO.
        efifos[0] = EFifo::new(4, 1, 4);
        exbar
            .read_routes
            .push(RouteEntry {
                port: 0,
                final_sub: true,
                tag: 0,
                uid: 0,
            })
            .unwrap();
        let beat = axi::RBeat::new(axi::types::AxiId(0), vec![0; 4], false);
        mem.r.push(0, beat.clone()).unwrap();
        mem.r.push(0, beat.clone()).unwrap();
        assert!(exbar.route_r(1, &mut ts, &mut efifos, &mut mem));
        // Second beat blocked: the eFIFO R queue (capacity 1) is full.
        assert!(!exbar.route_r(1, &mut ts, &mut efifos, &mut mem));
        assert_eq!(mem.r.len(), 1);
        // Draining the eFIFO unblocks routing.
        efifos[0].port.r.pop_ready(2).unwrap();
        assert!(exbar.route_r(2, &mut ts, &mut efifos, &mut mem));
    }

    #[test]
    #[should_panic(expected = "routing information")]
    fn r_without_route_is_a_model_bug() {
        let (mut exbar, mut ts, mut efifos, mut mem) = setup(1);
        mem.r
            .push(0, axi::RBeat::new(axi::types::AxiId(0), vec![0; 4], true))
            .unwrap();
        exbar.route_r(1, &mut ts, &mut efifos, &mut mem);
    }

    #[test]
    fn b_routed_and_merged() {
        let (mut exbar, mut ts, mut efifos, mut mem) = setup(1);
        exbar
            .b_routes
            .push(RouteEntry {
                port: 0,
                final_sub: true,
                tag: 5,
                uid: 0,
            })
            .unwrap();
        // TS expects one outstanding write for bookkeeping symmetry.
        mem.b
            .push(0, axi::BBeat::new(axi::types::AxiId(0)).with_tag(5))
            .unwrap();
        assert!(exbar.route_b(1, &mut ts, &mut efifos, &mut mem));
        assert!(exbar.b_routes.is_empty());
        assert_eq!(efifos[0].port.b.pop_ready(2).unwrap().tag, 5);
    }

    #[test]
    fn idle_detection() {
        let (exbar, _, _, _) = setup(2);
        assert!(exbar.is_idle());
    }

    #[test]
    fn fixed_priority_always_grants_port_zero() {
        let mut exbar = Exbar::with_policy(2, 32, ArbitrationPolicy::FixedPriority);
        let mut ts: Vec<TransactionSupervisor> =
            (0..2).map(|_| TransactionSupervisor::new(32)).collect();
        let mut efifos: Vec<EFifo> = (0..2).map(|_| EFifo::new(4, 32, 4)).collect();
        let unlimited = TsRuntime {
            nominal: 16,
            max_outstanding: 64,
            ..rt()
        };
        let mut grants = Vec::new();
        for now in 1..30u64 {
            for p in 0..2 {
                let _ = efifos[p].port.ar.push(
                    now.saturating_sub(1),
                    ArBeat::new((p as u64) * 0x1000, 1, BurstSize::B4),
                );
                ts[p].ingest(now, &mut efifos[p], unlimited);
                ts[p].issue(now, unlimited);
            }
            if exbar.arbitrate_ar(now + 1, &mut ts) {
                grants.push(exbar.read_routes.head().map(|r| r.port));
                // Drain so arbitration continues.
                exbar.ar_stage.pop_ready(now + 2);
                exbar.read_routes.pop();
            }
        }
        assert!(grants.len() >= 5);
        // Port 0 is always chosen while it has work: starvation hazard.
        assert!(grants.iter().all(|&g| g == Some(0)), "{grants:?}");
    }

    #[test]
    fn priority_falls_through_when_winner_is_idle() {
        let mut exbar = Exbar::with_policy(2, 32, ArbitrationPolicy::FixedPriority);
        let mut ts: Vec<TransactionSupervisor> =
            (0..2).map(|_| TransactionSupervisor::new(32)).collect();
        let mut efifos: Vec<EFifo> = (0..2).map(|_| EFifo::new(4, 32, 4)).collect();
        stage_ar(&mut ts[1], &mut efifos[1], 1, 0x2000);
        assert!(exbar.arbitrate_ar(2, &mut ts));
        assert_eq!(exbar.read_routes.head().unwrap().port, 1);
    }
}
