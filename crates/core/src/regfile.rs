//! The HyperConnect's memory-mapped register file (AXI-Lite control
//! interface).
//!
//! This is the paper's *runtime reconfiguration* surface (§V-A): the
//! hypervisor programs bandwidth budgets, the reservation period, the
//! nominal burst size, outstanding-transaction limits and per-port
//! decoupling by writing these registers through the PS-FPGA interface,
//! with no re-synthesis.
//!
//! # Register map
//!
//! | Offset | Name | Access | Meaning |
//! |---|---|---|---|
//! | `0x00` | `CTRL` | RW | bit 0: global enable (reset value 1) |
//! | `0x04` | `PERIOD` | RW | reservation period T in cycles |
//! | `0x08` | `NOMINAL` | RW | nominal burst length in beats (1–256) |
//! | `0x0C` | `NPORTS` | RO | number of slave ports |
//! | `0x10` | `VERSION` | RO | IP identification (`0x4843_2020`) |
//!
//! Per-port block at `0x40 + i * 0x20`:
//!
//! | Offset | Name | Access | Meaning |
//! |---|---|---|---|
//! | `+0x00` | `BUDGET` | RW | sub-transactions per period (`0xFFFF_FFFF` = unlimited) |
//! | `+0x04` | `PORT_CTRL` | RW | bit 0: port enable / not decoupled (reset 1) |
//! | `+0x08` | `MAX_OUT` | RW | outstanding sub-transaction limit per direction |
//! | `+0x0C` | `TXN_PERIOD` | RO | sub-transactions issued in the current period |
//! | `+0x10` | `TXN_TOTAL` | RO | sub-transactions issued since reset (low 32 bits) |
//! | `+0x14` | `VIOLATIONS` | RO | structured protocol violations detected since reset |
//! | `+0x18` | `OUTSTANDING` | RO | in-flight sub-transactions (reads + writes) |
//! | `+0x1C` | `QUIESCE` | RW | bit 0 W: request/release quiesce; read: bit 0 requested, bit 1 drained, bit 2 force-flushed (sticky), bits 31:16 dropped sub-txns; bit 2 W1C clears the sticky flush state |

use axi::lite::LiteDevice;

/// Value read back from the `VERSION` register.
pub const IP_VERSION: u32 = 0x4843_2020; // "HC  "

/// `BUDGET` value meaning "no reservation enforced on this port".
pub const BUDGET_UNLIMITED: u32 = u32::MAX;

const REG_CTRL: u64 = 0x00;
const REG_PERIOD: u64 = 0x04;
const REG_NOMINAL: u64 = 0x08;
const REG_NPORTS: u64 = 0x0C;
const REG_VERSION: u64 = 0x10;
const PORT_BASE: u64 = 0x40;
const PORT_STRIDE: u64 = 0x20;
const PORT_BUDGET: u64 = 0x00;
const PORT_CTRL: u64 = 0x04;
const PORT_MAX_OUT: u64 = 0x08;
const PORT_TXN_PERIOD: u64 = 0x0C;
const PORT_TXN_TOTAL: u64 = 0x10;
const PORT_VIOLATIONS: u64 = 0x14;
const PORT_OUTSTANDING: u64 = 0x18;
const PORT_QUIESCE: u64 = 0x1C;

/// `QUIESCE` read: quiesce requested (drain in progress or complete).
pub const QUIESCE_REQUESTED: u32 = 1 << 0;
/// `QUIESCE` read: the port's pipeline state has fully drained.
pub const QUIESCE_DRAINED: u32 = 1 << 1;
/// `QUIESCE` read: sticky — a drain blew its deadline and staged state
/// was force-flushed. Write 1 to this bit to clear (W1C).
pub const QUIESCE_FLUSHED: u32 = 1 << 2;

/// Runtime-visible state of one slave port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRegs {
    /// Sub-transactions allowed per reservation period.
    pub budget: u32,
    /// Whether the port is coupled to the system (false = decoupled).
    pub enabled: bool,
    /// Maximum outstanding sub-transactions per direction.
    pub max_outstanding: u32,
    /// Sub-transactions issued in the current period (updated by the TS).
    pub txn_this_period: u32,
    /// Sub-transactions issued since reset (updated by the TS).
    pub txn_total: u64,
    /// Structured violations detected on this port since reset (updated
    /// by the interconnect; the hypervisor watchdog polls it).
    pub violations: u32,
    /// In-flight sub-transactions, reads plus writes (updated by the TS).
    pub outstanding: u32,
    /// Quiesce requested (written by the driver; consumed by the TS,
    /// which stops admitting new transactions while set).
    pub quiesce_requested: bool,
    /// Drain-complete status (written back by the interconnect once the
    /// port's pipeline state is empty under an active quiesce).
    pub drained: bool,
    /// Sticky: a drain blew its deadline and staged state was dropped.
    pub force_flushed: bool,
    /// Sub-transactions dropped by force-flushes on this port (sticky,
    /// cleared together with `force_flushed`).
    pub dropped_txns: u32,
}

impl Default for PortRegs {
    fn default() -> Self {
        Self {
            budget: BUDGET_UNLIMITED,
            enabled: true,
            max_outstanding: 4,
            txn_this_period: 0,
            txn_total: 0,
            violations: 0,
            outstanding: 0,
            quiesce_requested: false,
            drained: false,
            force_flushed: false,
            dropped_txns: 0,
        }
    }
}

/// The HyperConnect register file.
///
/// Owned jointly (through [`axi::lite::LiteHandle`]) by the simulated
/// interconnect, which consults it every cycle, and by the hypervisor
/// driver, which reads/writes it over the modeled control bus.
#[derive(Debug, Clone)]
pub struct RegFile {
    enabled: bool,
    period: u32,
    nominal_burst: u32,
    ports: Vec<PortRegs>,
    generation: u64,
}

impl RegFile {
    /// Default reservation period in cycles.
    pub const DEFAULT_PERIOD: u32 = 65_536;

    /// Default nominal burst length in beats — the 16-beat burst that
    /// both the paper's Fig. 3(b) and the Xilinx DMA defaults use.
    pub const DEFAULT_NOMINAL: u32 = 16;

    /// Creates the reset-state register file for `num_ports` ports.
    ///
    /// Reset state: globally enabled, all ports enabled, unlimited
    /// budgets, period `65536`, nominal burst `16` beats.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is zero.
    pub fn new(num_ports: usize) -> Self {
        assert!(num_ports > 0, "register file needs at least one port");
        Self {
            enabled: true,
            period: Self::DEFAULT_PERIOD,
            nominal_burst: Self::DEFAULT_NOMINAL,
            ports: vec![PortRegs::default(); num_ports],
            generation: 0,
        }
    }

    /// Monotonic configuration generation: bumped on every control-plane
    /// write (AXI-Lite `write32` or a typed setter), but *not* by the
    /// interconnect's own counter write-backs (`port_mut`) or period
    /// recharges. The fast-forward scheduler compares it across hook
    /// invocations to detect reconfiguration during a skipped span.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of per-port register blocks.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Global enable.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Reservation period in cycles.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Nominal burst length in beats.
    pub fn nominal_burst(&self) -> u32 {
        self.nominal_burst
    }

    /// The register block of port `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn port(&self, i: usize) -> &PortRegs {
        &self.ports[i]
    }

    /// Mutable register block of port `i` (used by the TS to update
    /// transaction counters).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn port_mut(&mut self, i: usize) -> &mut PortRegs {
        &mut self.ports[i]
    }

    /// Typed write helpers used by tests and the driver model.
    pub fn set_budget(&mut self, port: usize, budget: u32) {
        self.ports[port].budget = budget;
        self.generation += 1;
    }

    /// Enables/decouples port `i`.
    pub fn set_enabled(&mut self, port: usize, enabled: bool) {
        self.ports[port].enabled = enabled;
        self.generation += 1;
    }

    /// Sets the reservation period (clamped to at least 1).
    pub fn set_period(&mut self, period: u32) {
        self.period = period.max(1);
        self.generation += 1;
    }

    /// Sets the nominal burst length (clamped to 1–256).
    pub fn set_nominal_burst(&mut self, beats: u32) {
        self.nominal_burst = beats.clamp(1, 256);
        self.generation += 1;
    }

    /// Clears all per-period transaction counters (called by the central
    /// unit at each period boundary).
    pub fn recharge(&mut self) {
        for p in &mut self.ports {
            p.txn_this_period = 0;
        }
    }

    fn decode_port(&self, offset: u64) -> Option<(usize, u64)> {
        if offset < PORT_BASE {
            return None;
        }
        let idx = ((offset - PORT_BASE) / PORT_STRIDE) as usize;
        let reg = (offset - PORT_BASE) % PORT_STRIDE;
        (idx < self.ports.len()).then_some((idx, reg))
    }
}

impl LiteDevice for RegFile {
    fn read32(&mut self, offset: u64) -> u32 {
        match offset {
            REG_CTRL => self.enabled as u32,
            REG_PERIOD => self.period,
            REG_NOMINAL => self.nominal_burst,
            REG_NPORTS => self.ports.len() as u32,
            REG_VERSION => IP_VERSION,
            _ => match self.decode_port(offset) {
                Some((i, PORT_BUDGET)) => self.ports[i].budget,
                Some((i, PORT_CTRL)) => self.ports[i].enabled as u32,
                Some((i, PORT_MAX_OUT)) => self.ports[i].max_outstanding,
                Some((i, PORT_TXN_PERIOD)) => self.ports[i].txn_this_period,
                Some((i, PORT_TXN_TOTAL)) => self.ports[i].txn_total as u32,
                Some((i, PORT_VIOLATIONS)) => self.ports[i].violations,
                Some((i, PORT_OUTSTANDING)) => self.ports[i].outstanding,
                Some((i, PORT_QUIESCE)) => {
                    let p = &self.ports[i];
                    ((p.quiesce_requested as u32) * QUIESCE_REQUESTED)
                        | ((p.drained as u32) * QUIESCE_DRAINED)
                        | ((p.force_flushed as u32) * QUIESCE_FLUSHED)
                        | (p.dropped_txns.min(0xFFFF) << 16)
                }
                _ => 0,
            },
        }
    }

    fn write32(&mut self, offset: u64, value: u32) {
        self.generation += 1;
        match offset {
            REG_CTRL => self.enabled = value & 1 != 0,
            REG_PERIOD => self.set_period(value),
            REG_NOMINAL => self.set_nominal_burst(value),
            // RO registers: writes ignored.
            REG_NPORTS | REG_VERSION => {}
            _ => match self.decode_port(offset) {
                Some((i, PORT_BUDGET)) => self.ports[i].budget = value,
                Some((i, PORT_CTRL)) => self.ports[i].enabled = value & 1 != 0,
                Some((i, PORT_MAX_OUT)) => self.ports[i].max_outstanding = value.max(1),
                Some((i, PORT_QUIESCE)) => {
                    let p = &mut self.ports[i];
                    let request = value & QUIESCE_REQUESTED != 0;
                    if request != p.quiesce_requested {
                        p.quiesce_requested = request;
                        // Status is recomputed by the interconnect under
                        // an active request; a release clears it.
                        p.drained = false;
                    }
                    if value & QUIESCE_FLUSHED != 0 {
                        p.force_flushed = false;
                        p.dropped_txns = 0;
                    }
                }
                // RO / unmapped: ignored.
                _ => {}
            },
        }
    }
}

/// Byte offset of port `i`'s register block (for drivers).
pub fn port_block_offset(i: usize) -> u64 {
    PORT_BASE + i as u64 * PORT_STRIDE
}

/// Offsets of the global registers (for drivers).
pub mod offsets {
    /// Global enable register.
    pub const CTRL: u64 = super::REG_CTRL;
    /// Reservation period register.
    pub const PERIOD: u64 = super::REG_PERIOD;
    /// Nominal burst register.
    pub const NOMINAL: u64 = super::REG_NOMINAL;
    /// Port count (read-only).
    pub const NPORTS: u64 = super::REG_NPORTS;
    /// IP version (read-only).
    pub const VERSION: u64 = super::REG_VERSION;
    /// Per-port `BUDGET` offset within a port block.
    pub const PORT_BUDGET: u64 = super::PORT_BUDGET;
    /// Per-port `PORT_CTRL` offset within a port block.
    pub const PORT_CTRL: u64 = super::PORT_CTRL;
    /// Per-port `MAX_OUT` offset within a port block.
    pub const PORT_MAX_OUT: u64 = super::PORT_MAX_OUT;
    /// Per-port `TXN_PERIOD` offset within a port block.
    pub const PORT_TXN_PERIOD: u64 = super::PORT_TXN_PERIOD;
    /// Per-port `TXN_TOTAL` offset within a port block.
    pub const PORT_TXN_TOTAL: u64 = super::PORT_TXN_TOTAL;
    /// Per-port `VIOLATIONS` offset within a port block (read-only).
    pub const PORT_VIOLATIONS: u64 = super::PORT_VIOLATIONS;
    /// Per-port `OUTSTANDING` offset within a port block (read-only).
    pub const PORT_OUTSTANDING: u64 = super::PORT_OUTSTANDING;
    /// Per-port `QUIESCE` offset within a port block.
    pub const PORT_QUIESCE: u64 = super::PORT_QUIESCE;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state() {
        let mut rf = RegFile::new(2);
        assert!(rf.is_enabled());
        assert_eq!(rf.period(), 65_536);
        assert_eq!(rf.nominal_burst(), 16);
        assert_eq!(rf.read32(REG_NPORTS), 2);
        assert_eq!(rf.read32(REG_VERSION), IP_VERSION);
        assert_eq!(rf.port(0).budget, BUDGET_UNLIMITED);
        assert!(rf.port(1).enabled);
    }

    #[test]
    fn global_registers_via_lite() {
        let mut rf = RegFile::new(2);
        rf.write32(REG_CTRL, 0);
        assert!(!rf.is_enabled());
        rf.write32(REG_PERIOD, 1000);
        assert_eq!(rf.period(), 1000);
        rf.write32(REG_NOMINAL, 8);
        assert_eq!(rf.nominal_burst(), 8);
        assert_eq!(rf.read32(REG_PERIOD), 1000);
    }

    #[test]
    fn clamping() {
        let mut rf = RegFile::new(1);
        rf.write32(REG_PERIOD, 0);
        assert_eq!(rf.period(), 1);
        rf.write32(REG_NOMINAL, 0);
        assert_eq!(rf.nominal_burst(), 1);
        rf.write32(REG_NOMINAL, 10_000);
        assert_eq!(rf.nominal_burst(), 256);
    }

    #[test]
    fn per_port_registers_via_lite() {
        let mut rf = RegFile::new(3);
        let p1 = port_block_offset(1);
        rf.write32(p1 + PORT_BUDGET, 42);
        rf.write32(p1 + PORT_CTRL, 0);
        rf.write32(p1 + PORT_MAX_OUT, 7);
        assert_eq!(rf.port(1).budget, 42);
        assert!(!rf.port(1).enabled);
        assert_eq!(rf.port(1).max_outstanding, 7);
        // Other ports untouched.
        assert_eq!(rf.port(0).budget, BUDGET_UNLIMITED);
        assert!(rf.port(2).enabled);
        assert_eq!(rf.read32(p1 + PORT_BUDGET), 42);
    }

    #[test]
    fn readonly_registers_ignore_writes() {
        let mut rf = RegFile::new(2);
        rf.write32(REG_NPORTS, 99);
        rf.write32(REG_VERSION, 99);
        assert_eq!(rf.read32(REG_NPORTS), 2);
        assert_eq!(rf.read32(REG_VERSION), IP_VERSION);
        let p0 = port_block_offset(0);
        rf.write32(p0 + PORT_TXN_PERIOD, 5);
        assert_eq!(rf.read32(p0 + PORT_TXN_PERIOD), 0);
        rf.write32(p0 + PORT_VIOLATIONS, 5);
        rf.write32(p0 + PORT_OUTSTANDING, 5);
        assert_eq!(rf.read32(p0 + PORT_VIOLATIONS), 0);
        assert_eq!(rf.read32(p0 + PORT_OUTSTANDING), 0);
    }

    #[test]
    fn health_registers_reflect_written_back_state() {
        let mut rf = RegFile::new(2);
        rf.port_mut(1).violations = 3;
        rf.port_mut(1).outstanding = 5;
        let p1 = port_block_offset(1);
        assert_eq!(rf.read32(p1 + PORT_VIOLATIONS), 3);
        assert_eq!(rf.read32(p1 + PORT_OUTSTANDING), 5);
        // Port 0 unaffected.
        let p0 = port_block_offset(0);
        assert_eq!(rf.read32(p0 + PORT_VIOLATIONS), 0);
    }

    #[test]
    fn counters_and_recharge() {
        let mut rf = RegFile::new(2);
        rf.port_mut(0).txn_this_period = 9;
        rf.port_mut(0).txn_total = 100;
        rf.recharge();
        assert_eq!(rf.port(0).txn_this_period, 0);
        assert_eq!(rf.port(0).txn_total, 100);
    }

    #[test]
    fn quiesce_register_request_status_and_sticky_clear() {
        let mut rf = RegFile::new(2);
        let p1 = port_block_offset(1);
        assert_eq!(rf.read32(p1 + PORT_QUIESCE), 0);
        // Request a quiesce: the request bit reads back, drained does not
        // (the interconnect writes that back).
        rf.write32(p1 + PORT_QUIESCE, QUIESCE_REQUESTED);
        assert!(rf.port(1).quiesce_requested);
        assert_eq!(rf.read32(p1 + PORT_QUIESCE), QUIESCE_REQUESTED);
        // Interconnect-side write-back of drain/flush state.
        rf.port_mut(1).drained = true;
        rf.port_mut(1).force_flushed = true;
        rf.port_mut(1).dropped_txns = 3;
        let status = rf.read32(p1 + PORT_QUIESCE);
        assert_eq!(
            status,
            QUIESCE_REQUESTED | QUIESCE_DRAINED | QUIESCE_FLUSHED | (3 << 16)
        );
        // Releasing the request clears drained; the flush state is
        // sticky until explicitly cleared (W1C on bit 2).
        rf.write32(p1 + PORT_QUIESCE, 0);
        assert!(!rf.port(1).quiesce_requested);
        assert!(!rf.port(1).drained);
        assert!(rf.port(1).force_flushed);
        rf.write32(p1 + PORT_QUIESCE, QUIESCE_FLUSHED);
        assert!(!rf.port(1).force_flushed);
        assert_eq!(rf.port(1).dropped_txns, 0);
        // Port 0 never touched.
        assert_eq!(rf.read32(port_block_offset(0) + PORT_QUIESCE), 0);
    }

    #[test]
    fn out_of_range_port_block_reads_zero() {
        let mut rf = RegFile::new(1);
        let beyond = port_block_offset(5);
        assert_eq!(rf.read32(beyond), 0);
        rf.write32(beyond, 1); // ignored
    }

    #[test]
    fn max_out_write_clamps_to_one() {
        let mut rf = RegFile::new(1);
        rf.write32(port_block_offset(0) + PORT_MAX_OUT, 0);
        assert_eq!(rf.port(0).max_outstanding, 1);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = RegFile::new(0);
    }
}
