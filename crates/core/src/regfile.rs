//! The HyperConnect's memory-mapped register file (AXI-Lite control
//! interface).
//!
//! This is the paper's *runtime reconfiguration* surface (§V-A): the
//! hypervisor programs bandwidth budgets, the reservation period, the
//! nominal burst size, outstanding-transaction limits and per-port
//! decoupling by writing these registers through the PS-FPGA interface,
//! with no re-synthesis.
//!
//! # Register map
//!
//! | Offset | Name | Access | Meaning |
//! |---|---|---|---|
//! | `0x00` | `CTRL` | RW | bit 0: global enable (reset value 1) |
//! | `0x04` | `PERIOD` | RW | reservation period T in cycles |
//! | `0x08` | `NOMINAL` | RW | nominal burst length in beats (1–256) |
//! | `0x0C` | `NPORTS` | RO | number of slave ports |
//! | `0x10` | `VERSION` | RO | IP identification (`0x4843_2020`) |
//! | `0x14` | `REG_WINDOW` | RW | regulator credit-refill window in cycles (>= 1, reset 64) |
//!
//! Per-port block at `0x40 + i * 0x40`:
//!
//! | Offset | Name | Access | Meaning |
//! |---|---|---|---|
//! | `+0x00` | `BUDGET` | RW | sub-transactions per period (`0xFFFF_FFFF` = unlimited) |
//! | `+0x04` | `PORT_CTRL` | RW | bit 0: port enable / not decoupled (reset 1) |
//! | `+0x08` | `MAX_OUT` | RW | outstanding sub-transaction limit per direction |
//! | `+0x0C` | `TXN_PERIOD` | RO | sub-transactions issued in the current period |
//! | `+0x10` | `TXN_TOTAL` | RO | sub-transactions issued since reset (saturates at `0xFFFF_FFFF`) |
//! | `+0x14` | `VIOLATIONS` | RO | structured protocol violations detected since reset |
//! | `+0x18` | `OUTSTANDING` | RO | in-flight sub-transactions (reads + writes) |
//! | `+0x1C` | `QUIESCE` | RW | bit 0 W: request/release quiesce; read: bit 0 requested, bit 1 drained, bit 2 force-flushed (sticky), bits 31:16 dropped sub-txns; bit 2 W1C clears the sticky flush state |
//! | `+0x20` | `REG_RATE` | RW | regulator credits per refill window, each lane (`0xFFFF_FFFF` = unlimited, reset) |
//! | `+0x24` | `REG_BURST` | RW | regulator burst depth: max accumulated credits per lane (>= 1, reset 1) |
//! | `+0x28` | `REG_OUT_CAP` | RW | cap on total outstanding sub-transactions (`0xFFFF_FFFF` = unlimited, reset) |
//! | `+0x2C` | `REG_THROTTLE` | RW1C | throttle-onset events since last clear (saturating); any write with bit 0 set clears |
//! | `+0x30` | `REG_CREDITS` | RO | stored credits: bits 15:0 read lane, bits 31:16 write lane (each saturated at `0xFFFF`) |
//! | `+0x34` | `ERR_TOTAL` | RO | transactions completed with a non-OKAY merged response since reset (saturating) |

use crate::regulate::{RegulatorConfig, DEFAULT_WINDOW, OUT_CAP_UNLIMITED, RATE_UNLIMITED};
use axi::lite::LiteDevice;

/// Value read back from the `VERSION` register.
pub const IP_VERSION: u32 = 0x4843_2020; // "HC  "

/// `BUDGET` value meaning "no reservation enforced on this port".
pub const BUDGET_UNLIMITED: u32 = u32::MAX;

const REG_CTRL: u64 = 0x00;
const REG_PERIOD: u64 = 0x04;
const REG_NOMINAL: u64 = 0x08;
const REG_NPORTS: u64 = 0x0C;
const REG_VERSION: u64 = 0x10;
const REG_WINDOW: u64 = 0x14;
const PORT_BASE: u64 = 0x40;
const PORT_STRIDE: u64 = 0x40;
const PORT_BUDGET: u64 = 0x00;
const PORT_CTRL: u64 = 0x04;
const PORT_MAX_OUT: u64 = 0x08;
const PORT_TXN_PERIOD: u64 = 0x0C;
const PORT_TXN_TOTAL: u64 = 0x10;
const PORT_VIOLATIONS: u64 = 0x14;
const PORT_OUTSTANDING: u64 = 0x18;
const PORT_QUIESCE: u64 = 0x1C;
const PORT_REG_RATE: u64 = 0x20;
const PORT_REG_BURST: u64 = 0x24;
const PORT_REG_OUT_CAP: u64 = 0x28;
const PORT_REG_THROTTLE: u64 = 0x2C;
const PORT_REG_CREDITS: u64 = 0x30;
const PORT_ERR_TOTAL: u64 = 0x34;

/// `QUIESCE` read: quiesce requested (drain in progress or complete).
pub const QUIESCE_REQUESTED: u32 = 1 << 0;
/// `QUIESCE` read: the port's pipeline state has fully drained.
pub const QUIESCE_DRAINED: u32 = 1 << 1;
/// `QUIESCE` read: sticky — a drain blew its deadline and staged state
/// was force-flushed. Write 1 to this bit to clear (W1C).
pub const QUIESCE_FLUSHED: u32 = 1 << 2;

/// Runtime-visible state of one slave port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRegs {
    /// Sub-transactions allowed per reservation period.
    pub budget: u32,
    /// Whether the port is coupled to the system (false = decoupled).
    pub enabled: bool,
    /// Maximum outstanding sub-transactions per direction.
    pub max_outstanding: u32,
    /// Sub-transactions issued in the current period (updated by the TS).
    pub txn_this_period: u32,
    /// Sub-transactions issued since reset (updated by the TS).
    pub txn_total: u64,
    /// Structured violations detected on this port since reset (updated
    /// by the interconnect; the hypervisor watchdog polls it).
    pub violations: u32,
    /// In-flight sub-transactions, reads plus writes (updated by the TS).
    pub outstanding: u32,
    /// Quiesce requested (written by the driver; consumed by the TS,
    /// which stops admitting new transactions while set).
    pub quiesce_requested: bool,
    /// Drain-complete status (written back by the interconnect once the
    /// port's pipeline state is empty under an active quiesce).
    pub drained: bool,
    /// Sticky: a drain blew its deadline and staged state was dropped.
    pub force_flushed: bool,
    /// Sub-transactions dropped by force-flushes on this port (sticky,
    /// cleared together with `force_flushed`).
    pub dropped_txns: u32,
    /// Regulator credits per refill window ([`RATE_UNLIMITED`] = off).
    pub rate: u32,
    /// Regulator burst depth (max accumulated credits per lane).
    pub reg_burst: u32,
    /// Cap on total outstanding sub-transactions
    /// ([`OUT_CAP_UNLIMITED`] = off).
    pub out_cap: u32,
    /// Throttle-onset events since the last W1C clear (updated by the
    /// interconnect from the TS regulator; saturates at `u32::MAX` on
    /// read).
    pub throttle_events: u64,
    /// Pending W1C clear of the throttle counter, consumed by the
    /// interconnect on its next slow-path tick (the triggering write
    /// bumps the generation, so that tick is never skipped).
    pub throttle_clear: bool,
    /// Stored read-lane credits (written back by the interconnect).
    pub read_credits: u32,
    /// Stored write-lane credits (written back by the interconnect).
    pub write_credits: u32,
    /// Transactions completed with a non-OKAY merged response since
    /// reset (updated by the TS; saturates at `u32::MAX` on read).
    pub err_total: u64,
}

impl Default for PortRegs {
    fn default() -> Self {
        Self {
            budget: BUDGET_UNLIMITED,
            enabled: true,
            max_outstanding: 4,
            txn_this_period: 0,
            txn_total: 0,
            violations: 0,
            outstanding: 0,
            quiesce_requested: false,
            drained: false,
            force_flushed: false,
            dropped_txns: 0,
            rate: RATE_UNLIMITED,
            reg_burst: 1,
            out_cap: OUT_CAP_UNLIMITED,
            throttle_events: 0,
            throttle_clear: false,
            read_credits: 0,
            write_credits: 0,
            err_total: 0,
        }
    }
}

/// The HyperConnect register file.
///
/// Owned jointly (through [`axi::lite::LiteHandle`]) by the simulated
/// interconnect, which consults it every cycle, and by the hypervisor
/// driver, which reads/writes it over the modeled control bus.
#[derive(Debug, Clone)]
pub struct RegFile {
    enabled: bool,
    period: u32,
    nominal_burst: u32,
    reg_window: u32,
    ports: Vec<PortRegs>,
    generation: u64,
}

impl RegFile {
    /// Default reservation period in cycles.
    pub const DEFAULT_PERIOD: u32 = 65_536;

    /// Default nominal burst length in beats — the 16-beat burst that
    /// both the paper's Fig. 3(b) and the Xilinx DMA defaults use.
    pub const DEFAULT_NOMINAL: u32 = 16;

    /// Creates the reset-state register file for `num_ports` ports.
    ///
    /// Reset state: globally enabled, all ports enabled, unlimited
    /// budgets, period `65536`, nominal burst `16` beats.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is zero.
    pub fn new(num_ports: usize) -> Self {
        assert!(num_ports > 0, "register file needs at least one port");
        Self {
            enabled: true,
            period: Self::DEFAULT_PERIOD,
            nominal_burst: Self::DEFAULT_NOMINAL,
            reg_window: DEFAULT_WINDOW,
            ports: vec![PortRegs::default(); num_ports],
            generation: 0,
        }
    }

    /// Monotonic configuration generation: bumped on every control-plane
    /// write (AXI-Lite `write32` or a typed setter), but *not* by the
    /// interconnect's own counter write-backs (`port_mut`) or period
    /// recharges. The fast-forward scheduler compares it across hook
    /// invocations to detect reconfiguration during a skipped span.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of per-port register blocks.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Global enable.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Reservation period in cycles.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Nominal burst length in beats.
    pub fn nominal_burst(&self) -> u32 {
        self.nominal_burst
    }

    /// Regulator credit-refill window in cycles (global, >= 1).
    pub fn reg_window(&self) -> u32 {
        self.reg_window
    }

    /// The regulator configuration of port `i`, assembled from the
    /// per-port rate/burst/cap registers and the global window.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn regulator_config(&self, i: usize) -> RegulatorConfig {
        let p = &self.ports[i];
        RegulatorConfig {
            rate: p.rate,
            burst: p.reg_burst.max(1),
            out_cap: p.out_cap,
            window: self.reg_window,
        }
    }

    /// The register block of port `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn port(&self, i: usize) -> &PortRegs {
        &self.ports[i]
    }

    /// Mutable register block of port `i` (used by the TS to update
    /// transaction counters).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn port_mut(&mut self, i: usize) -> &mut PortRegs {
        &mut self.ports[i]
    }

    /// Typed write helpers used by tests and the driver model.
    pub fn set_budget(&mut self, port: usize, budget: u32) {
        self.ports[port].budget = budget;
        self.generation += 1;
    }

    /// Enables/decouples port `i`.
    pub fn set_enabled(&mut self, port: usize, enabled: bool) {
        self.ports[port].enabled = enabled;
        self.generation += 1;
    }

    /// Sets the reservation period (clamped to at least 1).
    pub fn set_period(&mut self, period: u32) {
        self.period = period.max(1);
        self.generation += 1;
    }

    /// Sets the nominal burst length (clamped to 1–256).
    pub fn set_nominal_burst(&mut self, beats: u32) {
        self.nominal_burst = beats.clamp(1, 256);
        self.generation += 1;
    }

    /// Sets the global regulator refill window (clamped to at least 1).
    pub fn set_reg_window(&mut self, cycles: u32) {
        self.reg_window = cycles.max(1);
        self.generation += 1;
    }

    /// Sets port `i`'s regulator rate ([`RATE_UNLIMITED`] disables).
    pub fn set_rate(&mut self, port: usize, rate: u32) {
        self.ports[port].rate = rate;
        self.generation += 1;
    }

    /// Sets port `i`'s regulator burst depth (clamped to at least 1).
    pub fn set_reg_burst(&mut self, port: usize, burst: u32) {
        self.ports[port].reg_burst = burst.max(1);
        self.generation += 1;
    }

    /// Sets port `i`'s outstanding-transaction cap
    /// ([`OUT_CAP_UNLIMITED`] disables).
    pub fn set_out_cap(&mut self, port: usize, cap: u32) {
        self.ports[port].out_cap = cap;
        self.generation += 1;
    }

    /// Clears all per-period transaction counters (called by the central
    /// unit at each period boundary).
    pub fn recharge(&mut self) {
        for p in &mut self.ports {
            p.txn_this_period = 0;
        }
    }

    fn decode_port(&self, offset: u64) -> Option<(usize, u64)> {
        if offset < PORT_BASE {
            return None;
        }
        let idx = ((offset - PORT_BASE) / PORT_STRIDE) as usize;
        let reg = (offset - PORT_BASE) % PORT_STRIDE;
        (idx < self.ports.len()).then_some((idx, reg))
    }
}

impl LiteDevice for RegFile {
    fn read32(&mut self, offset: u64) -> u32 {
        match offset {
            REG_CTRL => self.enabled as u32,
            REG_PERIOD => self.period,
            REG_NOMINAL => self.nominal_burst,
            REG_NPORTS => self.ports.len() as u32,
            REG_VERSION => IP_VERSION,
            REG_WINDOW => self.reg_window,
            _ => match self.decode_port(offset) {
                Some((i, PORT_BUDGET)) => self.ports[i].budget,
                Some((i, PORT_CTRL)) => self.ports[i].enabled as u32,
                Some((i, PORT_MAX_OUT)) => self.ports[i].max_outstanding,
                Some((i, PORT_TXN_PERIOD)) => self.ports[i].txn_this_period,
                // Hardware-register semantics: a 64-bit counter read
                // through a 32-bit window saturates instead of wrapping,
                // so long campaigns read as "pinned at max", never as a
                // silently small value.
                Some((i, PORT_TXN_TOTAL)) => {
                    u32::try_from(self.ports[i].txn_total).unwrap_or(u32::MAX)
                }
                Some((i, PORT_VIOLATIONS)) => self.ports[i].violations,
                Some((i, PORT_OUTSTANDING)) => self.ports[i].outstanding,
                Some((i, PORT_REG_RATE)) => self.ports[i].rate,
                Some((i, PORT_REG_BURST)) => self.ports[i].reg_burst,
                Some((i, PORT_REG_OUT_CAP)) => self.ports[i].out_cap,
                Some((i, PORT_REG_THROTTLE)) => {
                    u32::try_from(self.ports[i].throttle_events).unwrap_or(u32::MAX)
                }
                Some((i, PORT_REG_CREDITS)) => {
                    let p = &self.ports[i];
                    p.read_credits.min(0xFFFF) | (p.write_credits.min(0xFFFF) << 16)
                }
                Some((i, PORT_ERR_TOTAL)) => {
                    u32::try_from(self.ports[i].err_total).unwrap_or(u32::MAX)
                }
                Some((i, PORT_QUIESCE)) => {
                    let p = &self.ports[i];
                    ((p.quiesce_requested as u32) * QUIESCE_REQUESTED)
                        | ((p.drained as u32) * QUIESCE_DRAINED)
                        | ((p.force_flushed as u32) * QUIESCE_FLUSHED)
                        | (p.dropped_txns.min(0xFFFF) << 16)
                }
                _ => 0,
            },
        }
    }

    fn write32(&mut self, offset: u64, value: u32) {
        self.generation += 1;
        match offset {
            REG_CTRL => self.enabled = value & 1 != 0,
            REG_PERIOD => self.set_period(value),
            REG_NOMINAL => self.set_nominal_burst(value),
            REG_WINDOW => self.reg_window = value.max(1),
            // RO registers: writes ignored.
            REG_NPORTS | REG_VERSION => {}
            _ => match self.decode_port(offset) {
                Some((i, PORT_BUDGET)) => self.ports[i].budget = value,
                Some((i, PORT_CTRL)) => self.ports[i].enabled = value & 1 != 0,
                Some((i, PORT_MAX_OUT)) => self.ports[i].max_outstanding = value.max(1),
                Some((i, PORT_REG_RATE)) => self.ports[i].rate = value,
                Some((i, PORT_REG_BURST)) => self.ports[i].reg_burst = value.max(1),
                Some((i, PORT_REG_OUT_CAP)) => self.ports[i].out_cap = value,
                Some((i, PORT_REG_THROTTLE)) if value & 1 != 0 => {
                    let p = &mut self.ports[i];
                    // Visible immediately; the TS-side counter is
                    // cleared by the interconnect when it consumes
                    // `throttle_clear` on the next (never-skipped)
                    // slow-path tick.
                    p.throttle_events = 0;
                    p.throttle_clear = true;
                }
                Some((i, PORT_QUIESCE)) => {
                    let p = &mut self.ports[i];
                    let request = value & QUIESCE_REQUESTED != 0;
                    if request != p.quiesce_requested {
                        p.quiesce_requested = request;
                        // Status is recomputed by the interconnect under
                        // an active request; a release clears it.
                        p.drained = false;
                    }
                    if value & QUIESCE_FLUSHED != 0 {
                        p.force_flushed = false;
                        p.dropped_txns = 0;
                    }
                }
                // RO / unmapped: ignored.
                _ => {}
            },
        }
    }
}

/// Byte offset of port `i`'s register block (for drivers).
pub fn port_block_offset(i: usize) -> u64 {
    PORT_BASE + i as u64 * PORT_STRIDE
}

/// Offsets of the global registers (for drivers).
pub mod offsets {
    /// Global enable register.
    pub const CTRL: u64 = super::REG_CTRL;
    /// Reservation period register.
    pub const PERIOD: u64 = super::REG_PERIOD;
    /// Nominal burst register.
    pub const NOMINAL: u64 = super::REG_NOMINAL;
    /// Port count (read-only).
    pub const NPORTS: u64 = super::REG_NPORTS;
    /// IP version (read-only).
    pub const VERSION: u64 = super::REG_VERSION;
    /// Global regulator credit-refill window register.
    pub const REG_WINDOW: u64 = super::REG_WINDOW;
    /// Per-port `BUDGET` offset within a port block.
    pub const PORT_BUDGET: u64 = super::PORT_BUDGET;
    /// Per-port `PORT_CTRL` offset within a port block.
    pub const PORT_CTRL: u64 = super::PORT_CTRL;
    /// Per-port `MAX_OUT` offset within a port block.
    pub const PORT_MAX_OUT: u64 = super::PORT_MAX_OUT;
    /// Per-port `TXN_PERIOD` offset within a port block.
    pub const PORT_TXN_PERIOD: u64 = super::PORT_TXN_PERIOD;
    /// Per-port `TXN_TOTAL` offset within a port block.
    pub const PORT_TXN_TOTAL: u64 = super::PORT_TXN_TOTAL;
    /// Per-port `VIOLATIONS` offset within a port block (read-only).
    pub const PORT_VIOLATIONS: u64 = super::PORT_VIOLATIONS;
    /// Per-port `OUTSTANDING` offset within a port block (read-only).
    pub const PORT_OUTSTANDING: u64 = super::PORT_OUTSTANDING;
    /// Per-port `QUIESCE` offset within a port block.
    pub const PORT_QUIESCE: u64 = super::PORT_QUIESCE;
    /// Per-port `REG_RATE` offset within a port block.
    pub const PORT_REG_RATE: u64 = super::PORT_REG_RATE;
    /// Per-port `REG_BURST` offset within a port block.
    pub const PORT_REG_BURST: u64 = super::PORT_REG_BURST;
    /// Per-port `REG_OUT_CAP` offset within a port block.
    pub const PORT_REG_OUT_CAP: u64 = super::PORT_REG_OUT_CAP;
    /// Per-port `REG_THROTTLE` offset within a port block (RW1C).
    pub const PORT_REG_THROTTLE: u64 = super::PORT_REG_THROTTLE;
    /// Per-port `REG_CREDITS` offset within a port block (read-only).
    pub const PORT_REG_CREDITS: u64 = super::PORT_REG_CREDITS;
    /// Per-port `ERR_TOTAL` offset within a port block (read-only).
    pub const PORT_ERR_TOTAL: u64 = super::PORT_ERR_TOTAL;
}

impl sim::persist::PersistValue for PortRegs {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u32(self.budget);
        w.put_bool(self.enabled);
        w.put_u32(self.max_outstanding);
        w.put_u32(self.txn_this_period);
        w.put_u64(self.txn_total);
        w.put_u32(self.violations);
        w.put_u32(self.outstanding);
        w.put_bool(self.quiesce_requested);
        w.put_bool(self.drained);
        w.put_bool(self.force_flushed);
        w.put_u32(self.dropped_txns);
        w.put_u32(self.rate);
        w.put_u32(self.reg_burst);
        w.put_u32(self.out_cap);
        w.put_u64(self.throttle_events);
        w.put_bool(self.throttle_clear);
        w.put_u32(self.read_credits);
        w.put_u32(self.write_credits);
        w.put_u64(self.err_total);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            budget: r.take_u32()?,
            enabled: r.take_bool()?,
            max_outstanding: r.take_u32()?,
            txn_this_period: r.take_u32()?,
            txn_total: r.take_u64()?,
            violations: r.take_u32()?,
            outstanding: r.take_u32()?,
            quiesce_requested: r.take_bool()?,
            drained: r.take_bool()?,
            force_flushed: r.take_bool()?,
            dropped_txns: r.take_u32()?,
            rate: r.take_u32()?,
            reg_burst: r.take_u32()?,
            out_cap: r.take_u32()?,
            throttle_events: r.take_u64()?,
            throttle_clear: r.take_bool()?,
            read_credits: r.take_u32()?,
            write_credits: r.take_u32()?,
            err_total: r.take_u64()?,
        })
    }
}

impl sim::persist::PersistValue for RegFile {
    /// Persisting the generation counter verbatim keeps config-mutation
    /// fingerprints and the interconnect's fast-path cache (`seen_cfg_gen`)
    /// coherent across a snapshot/restore boundary.
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_bool(self.enabled);
        w.put_u32(self.period);
        w.put_u32(self.nominal_burst);
        w.put_u32(self.reg_window);
        self.ports.save_value(w);
        w.put_u64(self.generation);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        let enabled = r.take_bool()?;
        let period = r.take_u32()?;
        let nominal_burst = r.take_u32()?;
        let reg_window = r.take_u32()?;
        let ports: Vec<PortRegs> = Vec::load_value(r)?;
        if ports.is_empty() {
            return Err(sim::persist::PersistError::Corrupt("regfile with no ports"));
        }
        Ok(Self {
            enabled,
            period,
            nominal_burst,
            reg_window,
            ports,
            generation: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state() {
        let mut rf = RegFile::new(2);
        assert!(rf.is_enabled());
        assert_eq!(rf.period(), 65_536);
        assert_eq!(rf.nominal_burst(), 16);
        assert_eq!(rf.read32(REG_NPORTS), 2);
        assert_eq!(rf.read32(REG_VERSION), IP_VERSION);
        assert_eq!(rf.port(0).budget, BUDGET_UNLIMITED);
        assert!(rf.port(1).enabled);
    }

    #[test]
    fn global_registers_via_lite() {
        let mut rf = RegFile::new(2);
        rf.write32(REG_CTRL, 0);
        assert!(!rf.is_enabled());
        rf.write32(REG_PERIOD, 1000);
        assert_eq!(rf.period(), 1000);
        rf.write32(REG_NOMINAL, 8);
        assert_eq!(rf.nominal_burst(), 8);
        assert_eq!(rf.read32(REG_PERIOD), 1000);
    }

    #[test]
    fn clamping() {
        let mut rf = RegFile::new(1);
        rf.write32(REG_PERIOD, 0);
        assert_eq!(rf.period(), 1);
        rf.write32(REG_NOMINAL, 0);
        assert_eq!(rf.nominal_burst(), 1);
        rf.write32(REG_NOMINAL, 10_000);
        assert_eq!(rf.nominal_burst(), 256);
    }

    #[test]
    fn per_port_registers_via_lite() {
        let mut rf = RegFile::new(3);
        let p1 = port_block_offset(1);
        rf.write32(p1 + PORT_BUDGET, 42);
        rf.write32(p1 + PORT_CTRL, 0);
        rf.write32(p1 + PORT_MAX_OUT, 7);
        assert_eq!(rf.port(1).budget, 42);
        assert!(!rf.port(1).enabled);
        assert_eq!(rf.port(1).max_outstanding, 7);
        // Other ports untouched.
        assert_eq!(rf.port(0).budget, BUDGET_UNLIMITED);
        assert!(rf.port(2).enabled);
        assert_eq!(rf.read32(p1 + PORT_BUDGET), 42);
    }

    #[test]
    fn readonly_registers_ignore_writes() {
        let mut rf = RegFile::new(2);
        rf.write32(REG_NPORTS, 99);
        rf.write32(REG_VERSION, 99);
        assert_eq!(rf.read32(REG_NPORTS), 2);
        assert_eq!(rf.read32(REG_VERSION), IP_VERSION);
        let p0 = port_block_offset(0);
        rf.write32(p0 + PORT_TXN_PERIOD, 5);
        assert_eq!(rf.read32(p0 + PORT_TXN_PERIOD), 0);
        rf.write32(p0 + PORT_VIOLATIONS, 5);
        rf.write32(p0 + PORT_OUTSTANDING, 5);
        assert_eq!(rf.read32(p0 + PORT_VIOLATIONS), 0);
        assert_eq!(rf.read32(p0 + PORT_OUTSTANDING), 0);
    }

    #[test]
    fn health_registers_reflect_written_back_state() {
        let mut rf = RegFile::new(2);
        rf.port_mut(1).violations = 3;
        rf.port_mut(1).outstanding = 5;
        let p1 = port_block_offset(1);
        assert_eq!(rf.read32(p1 + PORT_VIOLATIONS), 3);
        assert_eq!(rf.read32(p1 + PORT_OUTSTANDING), 5);
        // Port 0 unaffected.
        let p0 = port_block_offset(0);
        assert_eq!(rf.read32(p0 + PORT_VIOLATIONS), 0);
    }

    #[test]
    fn counters_and_recharge() {
        let mut rf = RegFile::new(2);
        rf.port_mut(0).txn_this_period = 9;
        rf.port_mut(0).txn_total = 100;
        rf.recharge();
        assert_eq!(rf.port(0).txn_this_period, 0);
        assert_eq!(rf.port(0).txn_total, 100);
    }

    #[test]
    fn quiesce_register_request_status_and_sticky_clear() {
        let mut rf = RegFile::new(2);
        let p1 = port_block_offset(1);
        assert_eq!(rf.read32(p1 + PORT_QUIESCE), 0);
        // Request a quiesce: the request bit reads back, drained does not
        // (the interconnect writes that back).
        rf.write32(p1 + PORT_QUIESCE, QUIESCE_REQUESTED);
        assert!(rf.port(1).quiesce_requested);
        assert_eq!(rf.read32(p1 + PORT_QUIESCE), QUIESCE_REQUESTED);
        // Interconnect-side write-back of drain/flush state.
        rf.port_mut(1).drained = true;
        rf.port_mut(1).force_flushed = true;
        rf.port_mut(1).dropped_txns = 3;
        let status = rf.read32(p1 + PORT_QUIESCE);
        assert_eq!(
            status,
            QUIESCE_REQUESTED | QUIESCE_DRAINED | QUIESCE_FLUSHED | (3 << 16)
        );
        // Releasing the request clears drained; the flush state is
        // sticky until explicitly cleared (W1C on bit 2).
        rf.write32(p1 + PORT_QUIESCE, 0);
        assert!(!rf.port(1).quiesce_requested);
        assert!(!rf.port(1).drained);
        assert!(rf.port(1).force_flushed);
        rf.write32(p1 + PORT_QUIESCE, QUIESCE_FLUSHED);
        assert!(!rf.port(1).force_flushed);
        assert_eq!(rf.port(1).dropped_txns, 0);
        // Port 0 never touched.
        assert_eq!(rf.read32(port_block_offset(0) + PORT_QUIESCE), 0);
    }

    #[test]
    fn txn_total_read_saturates_past_32_bits() {
        let mut rf = RegFile::new(2);
        // Direct state injection: a long campaign has pushed the 64-bit
        // counter past what a 32-bit register window can express.
        rf.port_mut(0).txn_total = (1u64 << 32) + 5;
        rf.port_mut(1).txn_total = u64::from(u32::MAX);
        let p0 = port_block_offset(0);
        let p1 = port_block_offset(1);
        // Saturate, never wrap: the old `as u32` cast read back 5 here.
        assert_eq!(rf.read32(p0 + PORT_TXN_TOTAL), u32::MAX);
        // Exactly-representable values still read exactly.
        assert_eq!(rf.read32(p1 + PORT_TXN_TOTAL), u32::MAX);
        rf.port_mut(1).txn_total = 77;
        assert_eq!(rf.read32(p1 + PORT_TXN_TOTAL), 77);
    }

    #[test]
    fn regulator_registers_reset_and_program_via_lite() {
        let mut rf = RegFile::new(2);
        // Reset: regulation fully disabled.
        assert_eq!(rf.read32(REG_WINDOW), DEFAULT_WINDOW);
        let p1 = port_block_offset(1);
        assert_eq!(rf.read32(p1 + PORT_REG_RATE), RATE_UNLIMITED);
        assert_eq!(rf.read32(p1 + PORT_REG_BURST), 1);
        assert_eq!(rf.read32(p1 + PORT_REG_OUT_CAP), OUT_CAP_UNLIMITED);
        assert!(!rf.regulator_config(1).is_active());
        // Program a regulator over the lite interface.
        rf.write32(REG_WINDOW, 100);
        rf.write32(p1 + PORT_REG_RATE, 4);
        rf.write32(p1 + PORT_REG_BURST, 8);
        rf.write32(p1 + PORT_REG_OUT_CAP, 2);
        let cfg = rf.regulator_config(1);
        assert_eq!(
            (cfg.rate, cfg.burst, cfg.out_cap, cfg.window),
            (4, 8, 2, 100)
        );
        assert!(cfg.is_active());
        // Other port untouched.
        assert!(!rf.regulator_config(0).is_active());
        // Clamps: window and burst floor at 1.
        rf.write32(REG_WINDOW, 0);
        assert_eq!(rf.reg_window(), 1);
        rf.write32(p1 + PORT_REG_BURST, 0);
        assert_eq!(rf.port(1).reg_burst, 1);
    }

    #[test]
    fn throttle_register_is_w1c_and_saturating() {
        let mut rf = RegFile::new(1);
        let p0 = port_block_offset(0);
        rf.port_mut(0).throttle_events = (1u64 << 32) + 9;
        assert_eq!(rf.read32(p0 + PORT_REG_THROTTLE), u32::MAX);
        // Writes without bit 0 are ignored.
        rf.write32(p0 + PORT_REG_THROTTLE, 0);
        assert_eq!(rf.read32(p0 + PORT_REG_THROTTLE), u32::MAX);
        assert!(!rf.port(0).throttle_clear);
        // W1C: clears the visible count and latches the pending clear
        // for the interconnect to propagate to the TS.
        rf.write32(p0 + PORT_REG_THROTTLE, 1);
        assert_eq!(rf.read32(p0 + PORT_REG_THROTTLE), 0);
        assert!(rf.port(0).throttle_clear);
    }

    #[test]
    fn credits_register_packs_both_lanes_saturated() {
        let mut rf = RegFile::new(1);
        let p0 = port_block_offset(0);
        rf.port_mut(0).read_credits = 3;
        rf.port_mut(0).write_credits = 0x2_0000;
        assert_eq!(rf.read32(p0 + PORT_REG_CREDITS), 3 | (0xFFFF << 16));
        // Read-only: writes ignored.
        rf.write32(p0 + PORT_REG_CREDITS, 0xDEAD);
        assert_eq!(rf.port(0).read_credits, 3);
    }

    #[test]
    fn out_of_range_port_block_reads_zero() {
        let mut rf = RegFile::new(1);
        let beyond = port_block_offset(5);
        assert_eq!(rf.read32(beyond), 0);
        rf.write32(beyond, 1); // ignored
    }

    #[test]
    fn max_out_write_clamps_to_one() {
        let mut rf = RegFile::new(1);
        rf.write32(port_block_offset(0) + PORT_MAX_OUT, 0);
        assert_eq!(rf.port(0).max_outstanding, 1);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = RegFile::new(0);
    }
}
