//! The eFIFO module: a buffered AXI interface with decoupling.
//!
//! Paper §V-B: each HyperConnect port (slave or master) is an *efficient
//! FIFO queuing* module holding five independent proactive circular
//! buffers, one per AXI channel, each introducing exactly one cycle of
//! latency. In the cycle-level model a proactive circular buffer is a
//! [`sim::TimedFifo`] with latency 1: always ready to accept while not
//! full, output valid one clock later.
//!
//! The eFIFO also implements the *decoupling* mechanism: when a port is
//! decoupled, the AXI handshake toward the accelerator is held low and
//! every other signal is grounded, completely disconnecting the HA. In
//! the model this means the interconnect side neither consumes requests
//! from, nor delivers responses to, a decoupled eFIFO — responses that
//! arrive for in-flight transactions of a decoupled port are dropped
//! (grounded), and requests the HA managed to buffer simply wait.

use axi::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};
use axi::{AxiPort, PortConfig};
use sim::Cycle;

/// A buffered, decouplable AXI port boundary (one eFIFO module).
///
/// # Example
///
/// ```
/// use axi::ArBeat;
/// use axi::types::BurstSize;
/// use hyperconnect::efifo::EFifo;
///
/// let mut ef = EFifo::new(4, 32, 4);
/// ef.port.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
/// // One cycle of proactive-buffer latency.
/// assert!(ef.pop_ar(0).is_none());
/// assert!(ef.pop_ar(1).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct EFifo {
    /// The five channel queues. Exposed so accelerators (slave side) or
    /// the memory controller (master side) can exchange beats directly.
    pub port: AxiPort,
    decoupled: bool,
    /// Responses dropped while decoupled (observability for tests and
    /// the hypervisor's health monitoring).
    dropped_responses: u64,
}

impl EFifo {
    /// Creates an eFIFO with the given queue depths. The one-cycle
    /// channel latency of the proactive circular buffer is fixed.
    pub fn new(addr_depth: usize, data_depth: usize, resp_depth: usize) -> Self {
        let config = PortConfig {
            addr_capacity: addr_depth,
            data_capacity: data_depth,
            resp_capacity: resp_depth,
            latency: 1,
        };
        Self {
            port: AxiPort::new(config),
            decoupled: false,
            dropped_responses: 0,
        }
    }

    /// Whether the port is currently decoupled from the system.
    pub fn is_decoupled(&self) -> bool {
        self.decoupled
    }

    /// Couples/decouples the port (driven from the register file).
    pub fn set_decoupled(&mut self, decoupled: bool) {
        self.decoupled = decoupled;
    }

    /// Responses grounded while decoupled.
    pub fn dropped_responses(&self) -> u64 {
        self.dropped_responses
    }

    /// Pops a visible AR request unless decoupled.
    pub fn pop_ar(&mut self, now: Cycle) -> Option<ArBeat> {
        if self.decoupled {
            None
        } else {
            self.port.ar.pop_ready(now)
        }
    }

    /// Pops a visible AW request unless decoupled.
    pub fn pop_aw(&mut self, now: Cycle) -> Option<AwBeat> {
        if self.decoupled {
            None
        } else {
            self.port.aw.pop_ready(now)
        }
    }

    /// Peeks the visible head W beat unless decoupled.
    pub fn peek_w(&self, now: Cycle) -> Option<&WBeat> {
        if self.decoupled {
            None
        } else {
            self.port.w.peek_ready(now)
        }
    }

    /// Pops a visible W beat unless decoupled.
    pub fn pop_w(&mut self, now: Cycle) -> Option<WBeat> {
        if self.decoupled {
            None
        } else {
            self.port.w.pop_ready(now)
        }
    }

    /// Delivers a read-data beat toward the accelerator.
    ///
    /// Returns `true` if the beat was consumed (queued, or grounded
    /// because the port is decoupled); `false` if the queue is full and
    /// the caller must retry next cycle.
    pub fn push_r(&mut self, now: Cycle, beat: RBeat) -> bool {
        if self.decoupled {
            self.dropped_responses += 1;
            return true;
        }
        match self.port.r.push(now, beat) {
            Ok(()) => true,
            Err(_) => false,
        }
    }

    /// Delivers a write response toward the accelerator (same contract
    /// as [`Self::push_r`]).
    pub fn push_b(&mut self, now: Cycle, beat: BBeat) -> bool {
        if self.decoupled {
            self.dropped_responses += 1;
            return true;
        }
        match self.port.b.push(now, beat) {
            Ok(()) => true,
            Err(_) => false,
        }
    }

    /// Whether the R queue can accept a beat this cycle (always true
    /// while decoupled: grounding never back-pressures).
    pub fn can_push_r(&self) -> bool {
        self.decoupled || !self.port.r.is_full()
    }

    /// Whether the B queue can accept a response this cycle.
    pub fn can_push_b(&self) -> bool {
        self.decoupled || !self.port.b.is_full()
    }
}

impl sim::persist::PersistValue for EFifo {
    /// The eFIFO reconstructs fully from its serialized [`AxiPort`]
    /// (which carries its own queue capacities and latency), the
    /// decouple flag and the dropped-response counter.
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        self.port.save_value(w);
        w.put_bool(self.decoupled);
        w.put_u64(self.dropped_responses);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            port: axi::AxiPort::load_value(r)?,
            decoupled: r.take_bool()?,
            dropped_responses: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::{AxiId, BurstSize};

    fn efifo() -> EFifo {
        EFifo::new(4, 16, 4)
    }

    #[test]
    fn channel_latency_is_one_cycle() {
        let mut f = efifo();
        f.port.ar.push(5, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        assert!(f.pop_ar(5).is_none());
        assert!(f.pop_ar(6).is_some());
    }

    #[test]
    fn decoupled_port_stops_consuming_requests() {
        let mut f = efifo();
        f.port.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        f.set_decoupled(true);
        assert!(f.is_decoupled());
        assert!(f.pop_ar(10).is_none());
        assert!(f.pop_aw(10).is_none());
        assert!(f.pop_w(10).is_none());
        // Recoupling resumes delivery of the buffered request.
        f.set_decoupled(false);
        assert!(f.pop_ar(10).is_some());
    }

    #[test]
    fn decoupled_port_grounds_responses() {
        let mut f = efifo();
        f.set_decoupled(true);
        assert!(f.push_r(0, RBeat::new(AxiId(0), vec![0; 4], true)));
        assert!(f.push_b(0, BBeat::new(AxiId(0))));
        assert_eq!(f.dropped_responses(), 2);
        // Nothing reached the accelerator-facing queues.
        f.set_decoupled(false);
        assert!(f.port.r.pop_ready(100).is_none());
        assert!(f.port.b.pop_ready(100).is_none());
    }

    #[test]
    fn push_r_backpressure_when_full() {
        let mut f = EFifo::new(4, 1, 4);
        assert!(f.push_r(0, RBeat::new(AxiId(0), vec![], true)));
        assert!(!f.push_r(0, RBeat::new(AxiId(0), vec![], true)));
        assert!(!f.can_push_r());
        // Decoupling removes back-pressure (signals grounded).
        f.set_decoupled(true);
        assert!(f.can_push_r());
        assert!(f.push_r(0, RBeat::new(AxiId(0), vec![], true)));
    }

    #[test]
    fn w_peek_and_pop() {
        let mut f = efifo();
        f.port.w.push(0, WBeat::new(vec![1; 4], true)).unwrap();
        assert!(f.peek_w(0).is_none()); // not yet visible
        assert!(f.peek_w(1).is_some());
        assert!(f.pop_w(1).is_some());
        assert!(f.pop_w(1).is_none());
    }
}
