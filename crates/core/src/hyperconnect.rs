//! The assembled AXI HyperConnect interconnect.
//!
//! Pipeline (paper Fig. 2): each slave port is an eFIFO feeding a
//! Transaction Supervisor; all TS modules feed the EXBAR crossbar, whose
//! output is a buffered master eFIFO toward the FPGA-PS interface. The
//! central unit recharges reservation budgets synchronously, and an
//! AXI-Lite register file exposes runtime reconfiguration to the
//! hypervisor.
//!
//! Per-channel propagation latency by construction (paper Fig. 3a):
//!
//! * AR/AW: 4 cycles — slave eFIFO (1) + TS (1) + EXBAR (1) + master
//!   eFIFO (1);
//! * R/W/B: 2 cycles — slave eFIFO (1) + master eFIFO (1); the TS and
//!   EXBAR handle these channels proactively using stored routing
//!   information.

use axi::checker::{Violation, ViolationKind};
use axi::lite::LiteHandle;
use axi::{AxiInterconnect, AxiPort, PortConfig};
use sim::stats::CounterBank;
use sim::trace::Tracer;
use sim::{Component, Cycle};

use crate::central::CentralUnit;
use crate::config::HcConfig;
use crate::efifo::EFifo;
use crate::exbar::Exbar;
use crate::regfile::RegFile;
use crate::supervisor::{TransactionSupervisor, TsRuntime, TsStats};

/// The AXI HyperConnect: a predictable, hypervisor-controlled N-to-1
/// AXI interconnect.
///
/// # Example
///
/// ```
/// use hyperconnect::{HcConfig, HyperConnect};
/// use axi::AxiInterconnect;
///
/// let mut hc = HyperConnect::new(HcConfig::new(2));
/// assert_eq!(hc.num_ports(), 2);
/// // The hypervisor reconfigures it through the register file handle:
/// hc.regs().write32(0x04, 10_000); // reservation period
/// ```
#[derive(Debug)]
pub struct HyperConnect {
    config: HcConfig,
    regs: LiteHandle<RegFile>,
    efifos: Vec<EFifo>,
    supervisors: Vec<TransactionSupervisor>,
    exbar: Exbar,
    central: CentralUnit,
    mem_port: AxiPort,
    runtime_scratch: Vec<TsRuntime>,
    tracer: Tracer,
    /// Per-port structured violation log (drained from the TS modules).
    violation_log: Vec<Vec<Violation>>,
    /// Per-port violation counters, indexed by [`ViolationKind::index`].
    violation_counters: Vec<CounterBank>,
    /// Transaction-level metrics registry, when observability is on.
    metrics: Option<axi::MetricsRegistry>,
    /// Runtime worst-case-bound monitor, when armed.
    monitor: Option<crate::observe::BoundMonitor>,
    /// Scratch buffer reused to drain hop events each tick.
    obs_scratch: Vec<axi::ObsEvent>,
    /// Per-port absolute deadline of the active quiescent drain
    /// (`None` = no quiesce requested on that port).
    quiesce_deadline: Vec<Option<Cycle>>,
    /// Register-file generation observed by the most recent phase-0
    /// slow path. While it still matches `rf.generation()` and no
    /// quiescent drain is active, the quiesce-protocol scan, the
    /// `runtime_scratch` rebuild and the decouple sync are skipped:
    /// every input they read (enable flags, nominal burst, outstanding
    /// caps, quiesce requests) changes only through generation-bumping
    /// control-plane writes or inside the scan itself. `u64::MAX`
    /// forces the first tick onto the slow path.
    seen_cfg_gen: u64,
    /// Cached `violation_counters[i].total()`, maintained in phase 3 so
    /// the per-cycle counter write-back does not re-sum the bank.
    viol_totals: Vec<u64>,
    /// Service model used to derive the drain deadline; falls back to a
    /// conservative model built from live register state when unset.
    drain_model: Option<crate::analysis::ServiceModel>,
}

impl HyperConnect {
    /// Instantiates a HyperConnect with the given synthesis-time
    /// configuration and a reset-state register file.
    pub fn new(config: HcConfig) -> Self {
        let n = config.num_ports;
        let efifos = (0..n)
            .map(|_| {
                EFifo::new(
                    config.efifo_addr_depth,
                    config.efifo_data_depth,
                    config.efifo_resp_depth,
                )
            })
            .collect();
        let supervisors = (0..n)
            .map(|_| TransactionSupervisor::new(config.efifo_data_depth))
            .collect();
        Self {
            config,
            regs: LiteHandle::new(RegFile::new(n)),
            efifos,
            supervisors,
            exbar: Exbar::with_policy(n, config.routing_depth, config.arbitration),
            central: CentralUnit::new(),
            mem_port: AxiPort::new(
                PortConfig::registered()
                    .addr_capacity(config.efifo_addr_depth)
                    .data_capacity(config.efifo_data_depth),
            ),
            runtime_scratch: Vec::with_capacity(n),
            tracer: Tracer::disabled(),
            violation_log: (0..n).map(|_| Vec::new()).collect(),
            violation_counters: (0..n)
                .map(|_| CounterBank::new(ViolationKind::COUNT))
                .collect(),
            metrics: None,
            monitor: None,
            obs_scratch: Vec::new(),
            quiesce_deadline: vec![None; n],
            seen_cfg_gen: u64::MAX,
            viol_totals: vec![0; n],
            drain_model: None,
        }
    }

    /// Memory first-word latency assumed by the fallback drain model
    /// when [`Self::set_drain_model`] was never called. Deliberately
    /// pessimistic: a longer deadline only delays the force-flush, it
    /// never drops transactions early.
    pub const FALLBACK_DRAIN_MEM_LATENCY: u64 = 64;

    /// Declares the service model from which the quiescent-drain
    /// deadline is derived (see
    /// [`crate::analysis::ServiceModel::drain_deadline`]). Implied by
    /// [`Self::enable_bound_monitor`].
    pub fn set_drain_model(&mut self, model: crate::analysis::ServiceModel) {
        self.drain_model = Some(model);
    }

    /// The drain deadline in cycles currently in force: how long an
    /// active quiesce may take before the interconnect force-flushes
    /// the port's pre-grant state. Derived from the declared drain
    /// model, or from a conservative model built out of live register
    /// state ([`Self::FALLBACK_DRAIN_MEM_LATENCY`]) when none was set.
    pub fn drain_deadline(&self) -> u64 {
        let model = self.drain_model.unwrap_or_else(|| {
            self.regs
                .with(|rf| Self::fallback_drain_model(rf, self.config.num_ports))
        });
        model.drain_deadline()
    }

    fn fallback_drain_model(rf: &RegFile, num_ports: usize) -> crate::analysis::ServiceModel {
        let max_out = (0..rf.num_ports())
            .map(|i| rf.port(i).max_outstanding)
            .max()
            .unwrap_or(4);
        crate::analysis::ServiceModel::hyperconnect(
            num_ports,
            rf.nominal_burst(),
            Self::FALLBACK_DRAIN_MEM_LATENCY,
        )
        .max_outstanding(max_out)
    }

    /// Enables transaction-level observability: every AXI transaction
    /// is stamped with a unique ID at its TS and per-hop cycle
    /// timestamps as it crosses the pipeline; the aggregates are
    /// exposed through [`AxiInterconnect::metrics`].
    pub fn enable_metrics(&mut self) {
        let n = self.config.num_ports;
        for (i, ts) in self.supervisors.iter_mut().enumerate() {
            ts.enable_observability(i);
        }
        self.exbar.enable_observability();
        if self.metrics.is_none() {
            self.metrics = Some(axi::MetricsRegistry::new(n));
        }
    }

    /// Arms the runtime bound monitor: each completed sub-transaction's
    /// observed latency is cross-checked against the closed-form bounds
    /// of `model` (see [`crate::observe::BoundMonitor`] for the
    /// soundness assumptions). Implies [`Self::enable_metrics`].
    pub fn enable_bound_monitor(&mut self, model: crate::analysis::ServiceModel) {
        self.enable_metrics();
        self.monitor = Some(crate::observe::BoundMonitor::new(model));
        self.drain_model = Some(model);
    }

    /// The armed bound monitor, if any.
    pub fn bound_monitor(&self) -> Option<&crate::observe::BoundMonitor> {
        self.monitor.as_ref()
    }

    /// Enables event tracing (period recharges, decouple transitions),
    /// retaining the most recent `capacity` events — the open-design
    /// observability the paper contrasts with closed-source IPs.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled(capacity);
    }

    /// The event trace (empty unless [`Self::enable_trace`] was called).
    pub fn trace(&self) -> &Tracer {
        &self.tracer
    }

    /// The synthesis-time configuration.
    pub fn config(&self) -> &HcConfig {
        &self.config
    }

    /// The AXI-Lite register file handle — what the hypervisor maps into
    /// its address space to control the IP. Returned by reference so a
    /// per-poll read does not clone the handle; callers that need shared
    /// ownership (e.g. to map the device on a control bus) clone it
    /// explicitly.
    pub fn regs(&self) -> &LiteHandle<RegFile> {
        &self.regs
    }

    /// Per-port TS statistics.
    pub fn port_stats(&self, i: usize) -> TsStats {
        self.supervisors[i].stats()
    }

    /// Completed-read latency distribution for port `i`.
    pub fn read_latency(&self, i: usize) -> sim::stats::LatencyStat {
        *self.supervisors[i].read_latency()
    }

    /// Completed-write latency distribution for port `i`.
    pub fn write_latency(&self, i: usize) -> sim::stats::LatencyStat {
        *self.supervisors[i].write_latency()
    }

    /// EXBAR grant counters (fairness analysis).
    pub fn grant_stats(&self) -> &crate::exbar::ExbarStats {
        self.exbar.stats()
    }

    /// Responses grounded at port `i` while it was decoupled.
    pub fn dropped_responses(&self, i: usize) -> u64 {
        self.efifos[i].dropped_responses()
    }

    /// Structured violations detected on port `i` since reset, in
    /// detection order.
    pub fn violations(&self, i: usize) -> &[Violation] {
        &self.violation_log[i]
    }

    /// Violations of a given kind detected on port `i`.
    pub fn violation_count(&self, i: usize, kind: ViolationKind) -> u64 {
        self.violation_counters[i].get(kind.index())
    }

    /// All violations detected on port `i`, across kinds.
    pub fn total_violations(&self, i: usize) -> u64 {
        self.violation_counters[i].total()
    }

    /// Strobe-disabled W beats the EXBAR synthesized to complete write
    /// bursts of decoupled ports.
    pub fn firewall_beats(&self) -> u64 {
        self.exbar.firewall_beats()
    }

    /// Number of completed reservation periods.
    pub fn periods_elapsed(&self) -> u64 {
        self.central.periods_elapsed()
    }
}

impl Component for HyperConnect {
    fn tick(&mut self, now: Cycle) -> bool {
        // Phase 0: consult the register file once — runtime config,
        // decouple flags, period recharge, counter write-back.
        let central = &mut self.central;
        let supervisors = &mut self.supervisors;
        let efifos = &mut self.efifos;
        let scratch = &mut self.runtime_scratch;
        let tracer = &mut self.tracer;
        let viol_totals = &self.viol_totals;
        let quiesce = &mut self.quiesce_deadline;
        let seen_gen = &mut self.seen_cfg_gen;
        let drain_model = self.drain_model;
        let num_ports = self.config.num_ports;
        let monitor = &mut self.monitor;
        let mut enabled = true;
        let mut progress = self.regs.with(|rf| {
            if !rf.is_enabled() {
                enabled = false;
                return false;
            }
            let recharged = central.tick(now, rf, supervisors);
            if recharged {
                tracer.emit(
                    now,
                    "central",
                    format!("budget recharge, period {}", central.periods_elapsed()),
                );
            }
            let mut quiesce_progress = false;
            // Fast path: with the config generation unchanged since the
            // last scan and no drain in flight, the scan below would
            // recompute exactly what it produced last tick (its inputs
            // only move via generation-bumping writes, a recharge, or
            // the scan itself), so `runtime_scratch` and the decouple
            // flags are already correct and it is skipped wholesale.
            let gen = rf.generation();
            if gen == *seen_gen && !recharged && quiesce.iter().all(|q| q.is_none()) {
                for (i, ts) in supervisors.iter().enumerate() {
                    let port = rf.port_mut(i);
                    port.txn_this_period = ts.txn_this_period();
                    port.txn_total = ts.txn_total();
                    port.violations = viol_totals[i] as u32;
                    port.outstanding = ts.read_outstanding() + ts.write_outstanding();
                    port.throttle_events = ts.throttle_events();
                    port.err_total = ts.err_total();
                    let (rc, wc) = ts.stored_credits();
                    port.read_credits = rc;
                    port.write_credits = wc;
                }
                return false;
            }
            *seen_gen = gen;
            scratch.clear();
            for (i, efifo) in efifos.iter_mut().enumerate() {
                // Quiescent-drain protocol: track the request edge, the
                // drain-complete write-back and the force-flush deadline
                // *before* the decouple sync, so a flush-induced
                // decouple takes effect this very tick.
                let requested = rf.port(i).quiesce_requested;
                match (requested, quiesce[i]) {
                    (true, None) => {
                        let deadline = drain_model
                            .unwrap_or_else(|| Self::fallback_drain_model(rf, num_ports))
                            .drain_deadline();
                        quiesce[i] = Some(now + deadline);
                        tracer.emit(
                            now,
                            "quiesce",
                            format!("port {i} drain started, deadline +{deadline} cycles"),
                        );
                    }
                    (false, Some(_)) => {
                        quiesce[i] = None;
                        tracer.emit(now, "quiesce", format!("port {i} quiesce released"));
                    }
                    _ => {}
                }
                if let Some(deadline_at) = quiesce[i] {
                    if supervisors[i].is_idle() {
                        if !rf.port(i).drained {
                            rf.port_mut(i).drained = true;
                            quiesce_progress = true;
                            tracer.emit(now, "quiesce", format!("port {i} drained"));
                        }
                    } else if now >= deadline_at {
                        // Stuck pipeline: drop everything not yet granted
                        // and decouple, so granted writes complete via
                        // firewall-beat synthesis and responses ground.
                        let dropped = supervisors[i].force_flush(now);
                        let port = rf.port_mut(i);
                        port.force_flushed = true;
                        port.dropped_txns = port.dropped_txns.saturating_add(dropped);
                        port.enabled = false;
                        quiesce_progress = true;
                        tracer.emit(
                            now,
                            "quiesce",
                            format!(
                                "port {i} drain deadline blown: force-flushed {dropped} \
                                 sub-transactions, port decoupled"
                            ),
                        );
                    }
                }
                // Propagate a pending W1C throttle clear to the TS-side
                // counter. The triggering write bumped the generation,
                // so this (slow-path) tick is never skipped.
                if rf.port(i).throttle_clear {
                    supervisors[i].clear_throttle_events();
                    rf.port_mut(i).throttle_clear = false;
                }
                let regulator = rf.regulator_config(i);
                let port = rf.port(i);
                scratch.push(TsRuntime {
                    nominal: rf.nominal_burst(),
                    max_outstanding: port.max_outstanding,
                    enabled: port.enabled,
                    quiesced: port.quiesce_requested,
                    regulator,
                });
                if efifo.is_decoupled() == port.enabled {
                    tracer.emit(
                        now,
                        "efifo",
                        format!(
                            "port {i} {}",
                            if port.enabled {
                                "recoupled"
                            } else {
                                "DECOUPLED"
                            }
                        ),
                    );
                }
                efifo.set_decoupled(!port.enabled);
            }
            // Counter write-back so the hypervisor can observe activity
            // and health through the register file.
            for (i, ts) in supervisors.iter().enumerate() {
                let port = rf.port_mut(i);
                port.txn_this_period = ts.txn_this_period();
                port.txn_total = ts.txn_total();
                port.violations = viol_totals[i] as u32;
                port.outstanding = ts.read_outstanding() + ts.write_outstanding();
                port.throttle_events = ts.throttle_events();
                port.err_total = ts.err_total();
                let (rc, wc) = ts.stored_credits();
                port.read_credits = rc;
                port.write_credits = wc;
            }
            // Re-arm the bound monitor's per-port regulated bounds from
            // the (possibly reprogrammed) regulator registers. Runs only
            // on slow-path ticks, which every scheduler executes, so the
            // armed bounds are scheduler-invariant.
            if let Some(mon) = monitor.as_mut() {
                let caps: Vec<Option<crate::analysis::RegulationCap>> = (0..num_ports)
                    .map(|i| {
                        let cfg = rf.regulator_config(i);
                        cfg.is_active().then(|| crate::analysis::RegulationCap {
                            rate: cfg.rate_limited().then_some(cfg.rate),
                            burst: cfg.burst,
                            out_cap: (cfg.out_cap != crate::regulate::OUT_CAP_UNLIMITED)
                                .then_some(cfg.out_cap),
                        })
                    })
                    .collect();
                mon.arm_regulation(&caps);
            }
            recharged | quiesce_progress
        });
        if !enabled {
            return false;
        }

        // Phase 1: per-port ingest (split/equalize) and issue
        // (reservation + outstanding limits).
        for ((ts, efifo), &rt) in supervisors
            .iter_mut()
            .zip(self.efifos.iter_mut())
            .zip(self.runtime_scratch.iter())
        {
            progress |= ts.ingest(now, efifo, rt);
            progress |= ts.issue(now, rt);
        }

        // Phase 2: crossbar — address arbitration, data movement,
        // proactive response routing.
        progress |= self.exbar.arbitrate_ar(now, supervisors);
        progress |= self.exbar.arbitrate_aw(now, supervisors);
        progress |= self
            .exbar
            .move_w(now, supervisors, &self.efifos, &mut self.mem_port);
        progress |= self.exbar.move_to_mem(now, &mut self.mem_port);
        progress |= self
            .exbar
            .route_r(now, supervisors, &mut self.efifos, &mut self.mem_port);
        progress |= self
            .exbar
            .route_b(now, supervisors, &mut self.efifos, &mut self.mem_port);

        // Phase 3: drain structured violations detected this cycle and
        // attribute them to their ports.
        for (i, ts) in supervisors.iter_mut().enumerate() {
            if !ts.has_violations() {
                continue;
            }
            for v in ts.take_violations() {
                let v = v.at_port(i);
                self.violation_counters[i].incr(v.kind.index());
                self.viol_totals[i] += 1;
                self.tracer.emit(now, "violation", v.to_string());
                self.violation_log[i].push(v);
            }
        }

        // Phase 4: observability — drain the hop events emitted this
        // tick, fold them into the registry (and monitor), and refresh
        // the occupancy gauges. Events only fire on progress cycles, so
        // this is identical under the fast-forward scheduler.
        if let Some(metrics) = self.metrics.as_mut() {
            self.obs_scratch.clear();
            for ts in supervisors.iter_mut() {
                ts.drain_obs_events(&mut self.obs_scratch);
            }
            self.exbar.drain_obs_events(&mut self.obs_scratch);
            for ev in &self.obs_scratch {
                metrics.on_event(ev);
                if let Some(mon) = self.monitor.as_mut() {
                    mon.on_event(ev, metrics);
                }
            }
            for (i, efifo) in self.efifos.iter().enumerate() {
                metrics.set_efifo_occupancy(i, efifo.port.occupancy() as u64);
            }
            metrics.set_master_occupancy(self.mem_port.occupancy() as u64);
            // Regulator telemetry: throttle-event counters and stored-
            // credit gauges, only for ports whose regulator is armed so
            // the flat schema is byte-unchanged when regulation is off.
            // Stored credits only move on commonly-ticked cycles, so
            // the gauge peaks are scheduler-invariant.
            for (i, ts) in supervisors.iter().enumerate() {
                if ts.regulator_active() {
                    let (rc, wc) = ts.stored_credits();
                    metrics.set_regulator(i, ts.throttle_events(), u64::from(rc), u64::from(wc));
                }
            }
        }
        progress
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // One register-file lock answers both gating questions: globally
        // disabled (pipeline frozen, only a control-plane write can wake
        // it → None) and an active quiescent drain (its deadline clock
        // and drained write-back advance every cycle → no skipping).
        enum Gate {
            Frozen,
            Draining,
            Open,
        }
        let (gate, central_horizon) = self.regs.with(|rf| {
            if !rf.is_enabled() {
                return (Gate::Frozen, None);
            }
            let draining =
                self.quiesce_deadline.iter().enumerate().any(|(i, q)| {
                    (q.is_some() || rf.port(i).quiesce_requested) && !rf.port(i).drained
                });
            let gate = if draining { Gate::Draining } else { Gate::Open };
            // The period boundary is an event horizon only while a
            // recharge would change state (any port with a finite
            // budget or a pending per-period counter clear); an idle
            // unlimited configuration may skip boundaries, which the
            // central unit catches up on without leaving the grid.
            (gate, self.central.boundary_horizon(rf, &self.supervisors))
        });
        if matches!(gate, Gate::Frozen) {
            return None;
        }
        // A supervisor owing W beats or spinning on an exhausted budget
        // advances observable counters every cycle — no skipping allowed.
        if self.supervisors.iter().any(|ts| ts.counts_every_cycle()) {
            return Some(now + 1);
        }
        if matches!(gate, Gate::Draining) {
            return Some(now + 1);
        }
        let mut horizon = central_horizon;
        let mut merge = |c: Option<Cycle>| {
            if let Some(c) = c {
                horizon = Some(horizon.map_or(c, |h: Cycle| h.min(c)));
            }
        };
        for ts in &self.supervisors {
            merge(ts.next_stage_ready());
            // A credit-blocked sub-request wakes at the next refill
            // window boundary.
            merge(ts.regulator_next_refill(now));
        }
        for efifo in &self.efifos {
            merge(efifo.port.next_ready_at());
        }
        merge(self.exbar.next_stage_ready());
        merge(self.mem_port.next_ready_at());
        horizon
    }
}

impl AxiInterconnect for HyperConnect {
    fn num_ports(&self) -> usize {
        self.config.num_ports
    }

    fn port(&mut self, i: usize) -> &mut AxiPort {
        &mut self.efifos[i].port
    }

    fn mem_port(&mut self) -> &mut AxiPort {
        &mut self.mem_port
    }

    fn name(&self) -> &'static str {
        "HyperConnect"
    }

    fn is_idle(&self) -> bool {
        self.efifos.iter().all(|e| e.port.is_idle())
            && self.supervisors.iter().all(|t| t.is_idle())
            && self.exbar.is_idle()
            && self.mem_port.is_idle()
    }

    fn config_generation(&self) -> u64 {
        self.regs.with(|rf| rf.generation())
    }

    fn metrics(&self) -> Option<&axi::MetricsRegistry> {
        self.metrics.as_ref()
    }

    fn metrics_mut(&mut self) -> Option<&mut axi::MetricsRegistry> {
        self.metrics.as_mut()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn bound_violations(&self) -> &[axi::BoundViolation] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    fn bound_report(&self) -> Option<axi::BoundReport> {
        self.monitor.as_ref().map(|m| m.report())
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        use sim::persist::PersistValue;
        w.put_usize(self.config.num_ports);
        self.regs.with(|rf| rf.save_value(w));
        self.efifos.save_value(w);
        self.supervisors.save_value(w);
        self.exbar.save_value(w);
        self.central.save_value(w);
        self.mem_port.save_value(w);
        self.runtime_scratch.save_value(w);
        self.tracer.save_value(w);
        self.violation_log.save_value(w);
        self.violation_counters.save_value(w);
        self.metrics.save_value(w);
        self.monitor.save_value(w);
        self.quiesce_deadline.save_value(w);
        w.put_u64(self.seen_cfg_gen);
        self.viol_totals.save_value(w);
        self.drain_model.save_value(w);
        // `obs_scratch` is a per-tick scratch buffer, cleared before
        // every use — deliberately not part of the snapshot.
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        use sim::persist::{PersistError, PersistValue};
        let n = r.take_usize()?;
        if n != self.config.num_ports {
            return Err(PersistError::ShapeMismatch("hyperconnect port count"));
        }
        // Decode everything before touching `self`, so a corrupt stream
        // leaves the interconnect unchanged.
        let regs = RegFile::load_value(r)?;
        let efifos: Vec<EFifo> = Vec::load_value(r)?;
        let supervisors: Vec<TransactionSupervisor> = Vec::load_value(r)?;
        let exbar = Exbar::load_value(r)?;
        let central = CentralUnit::load_value(r)?;
        let mem_port = axi::AxiPort::load_value(r)?;
        let runtime_scratch: Vec<TsRuntime> = Vec::load_value(r)?;
        let tracer = Tracer::load_value(r)?;
        let violation_log: Vec<Vec<Violation>> = Vec::load_value(r)?;
        let violation_counters: Vec<CounterBank> = Vec::load_value(r)?;
        let metrics: Option<axi::MetricsRegistry> = Option::load_value(r)?;
        let monitor: Option<crate::observe::BoundMonitor> = Option::load_value(r)?;
        let quiesce_deadline: Vec<Option<Cycle>> = Vec::load_value(r)?;
        let seen_cfg_gen = r.take_u64()?;
        let viol_totals: Vec<u64> = Vec::load_value(r)?;
        let drain_model: Option<crate::analysis::ServiceModel> = Option::load_value(r)?;
        if regs.num_ports() != n
            || efifos.len() != n
            || supervisors.len() != n
            || violation_log.len() != n
            || violation_counters.len() != n
            || quiesce_deadline.len() != n
            || viol_totals.len() != n
        {
            return Err(PersistError::ShapeMismatch("hyperconnect per-port state"));
        }
        // The register file is restored *through the shared handle*, so
        // hypervisor-side clones of the handle observe the restored
        // registers without any re-wiring.
        self.regs.with(|rf| *rf = regs);
        self.efifos = efifos;
        self.supervisors = supervisors;
        self.exbar = exbar;
        self.central = central;
        self.mem_port = mem_port;
        self.runtime_scratch = runtime_scratch;
        self.tracer = tracer;
        self.violation_log = violation_log;
        self.violation_counters = violation_counters;
        self.metrics = metrics;
        self.monitor = monitor;
        self.quiesce_deadline = quiesce_deadline;
        self.seen_cfg_gen = seen_cfg_gen;
        self.viol_totals = viol_totals;
        self.drain_model = drain_model;
        self.obs_scratch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::BurstSize;
    use axi::{ArBeat, AwBeat, WBeat};

    /// Ticks the interconnect through `cycles` cycles.
    fn run(hc: &mut HyperConnect, cycles: Cycle) {
        for now in 0..cycles {
            hc.tick(now);
        }
    }

    #[test]
    fn ar_propagation_latency_is_four_cycles() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        // Push at cycle 0 (after the cycle-0 tick has run, the beat was
        // pushed before tick 0 here, so count from push cycle).
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        let mut arrival = None;
        for now in 0..20 {
            hc.tick(now);
            if arrival.is_none() && hc.mem_port().ar.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(4), "AR latency must be 4 cycles");
    }

    #[test]
    fn aw_propagation_latency_is_four_cycles() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.port(1)
            .aw
            .push(0, AwBeat::new(0x200, 1, BurstSize::B4))
            .unwrap();
        let mut arrival = None;
        for now in 0..20 {
            hc.tick(now);
            if arrival.is_none() && hc.mem_port().aw.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(4), "AW latency must be 4 cycles");
    }

    #[test]
    fn w_propagation_latency_is_two_cycles() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x200, 1, BurstSize::B4))
            .unwrap();
        hc.port(0).w.push(0, WBeat::new(vec![1; 4], true)).unwrap();
        let mut arrival = None;
        for now in 0..20 {
            hc.tick(now);
            if arrival.is_none() && hc.mem_port().w.has_ready(now) {
                arrival = Some(now);
            }
        }
        // W needs its AW grant before it can move; the W beat itself
        // traverses only the two eFIFOs. The AW is granted at cycle 3
        // (visible in EXBAR stage), W routing exists from then on; the W
        // beat (visible at 1) moves at 3 and appears at 4... but the
        // paper's d_W is the pure channel traversal: measured with the
        // routing already established. See `w_latency_streaming` below
        // for the steady-state check; here we assert it arrives.
        assert!(arrival.is_some());
    }

    #[test]
    fn w_latency_streaming_is_two_cycles_behind_push() {
        // With the write address long granted, subsequent W beats take
        // exactly 2 cycles (slave eFIFO + master eFIFO).
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x200, 4, BurstSize::B4))
            .unwrap();
        // First beat pushed immediately, rest later.
        hc.port(0).w.push(0, WBeat::new(vec![0; 4], false)).unwrap();
        for now in 0..6 {
            hc.tick(now);
            hc.mem_port().w.pop_ready(now);
        }
        // Routing is established; now measure a fresh beat.
        hc.port(0).w.push(6, WBeat::new(vec![1; 4], false)).unwrap();
        let mut arrival = None;
        for now in 6..16 {
            hc.tick(now);
            if arrival.is_none() && hc.mem_port().w.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(8), "steady-state W latency must be 2");
    }

    #[test]
    fn r_propagation_latency_is_two_cycles() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        // Issue a read so routing information exists.
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        for now in 0..6 {
            hc.tick(now);
            hc.mem_port().ar.pop_ready(now);
        }
        // Memory responds at cycle 6.
        hc.mem_port()
            .r
            .push(6, axi::RBeat::new(axi::types::AxiId(0), vec![0; 4], true))
            .unwrap();
        let mut arrival = None;
        for now in 6..16 {
            hc.tick(now);
            if arrival.is_none() && hc.port(0).r.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(8), "R latency must be 2 cycles");
    }

    #[test]
    fn b_propagation_latency_is_two_cycles() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        hc.port(0).w.push(0, WBeat::new(vec![0; 4], true)).unwrap();
        for now in 0..8 {
            hc.tick(now);
            hc.mem_port().aw.pop_ready(now);
            hc.mem_port().w.pop_ready(now);
        }
        hc.mem_port()
            .b
            .push(8, axi::BBeat::new(axi::types::AxiId(0)))
            .unwrap();
        let mut arrival = None;
        for now in 8..18 {
            hc.tick(now);
            if arrival.is_none() && hc.port(0).b.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(10), "B latency must be 2 cycles");
    }

    #[test]
    fn global_disable_freezes_everything() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.regs().write32(crate::regfile::offsets::CTRL, 0);
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        run(&mut hc, 20);
        assert!(hc.mem_port().ar.pop_ready(20).is_none());
        // Re-enable: traffic flows again.
        hc.regs().write32(crate::regfile::offsets::CTRL, 1);
        for now in 20..40 {
            hc.tick(now);
        }
        assert!(hc.mem_port().ar.pop_ready(40).is_some());
    }

    #[test]
    fn decoupled_port_is_isolated_but_others_flow() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        let p0 = crate::regfile::port_block_offset(0) + crate::regfile::offsets::PORT_CTRL;
        hc.regs().write32(p0, 0); // decouple port 0
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        hc.port(1)
            .ar
            .push(0, ArBeat::new(0x1000, 1, BurstSize::B4))
            .unwrap();
        let mut seen = Vec::new();
        for now in 0..20 {
            hc.tick(now);
            if let Some(ar) = hc.mem_port().ar.pop_ready(now) {
                seen.push(ar.addr);
            }
        }
        assert_eq!(seen, vec![0x1000], "only port 1 traffic reaches memory");
    }

    #[test]
    fn counters_visible_through_regfile() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        run(&mut hc, 30);
        let off = crate::regfile::port_block_offset(0) + crate::regfile::offsets::PORT_TXN_TOTAL;
        // 64 beats at nominal 16 = 4 sub-transactions.
        assert_eq!(hc.regs().read32(off), 4);
    }

    #[test]
    fn violations_attributed_and_visible_through_regfile() {
        use crate::regfile::{offsets, port_block_offset};
        use axi::checker::ViolationKind;
        let mut hc = HyperConnect::new(HcConfig::new(2));
        // Port 1 drives a 4-beat write with WLAST asserted a beat early.
        hc.port(1)
            .aw
            .push(0, AwBeat::new(0x100, 4, BurstSize::B4))
            .unwrap();
        for i in 0..4u32 {
            hc.port(1)
                .w
                .push(0, WBeat::new(vec![0; 4], i == 2))
                .unwrap();
        }
        run(&mut hc, 20);
        // Two mismatches (early assert + missing final), on port 1 only.
        assert_eq!(hc.violation_count(1, ViolationKind::WlastMismatch), 2);
        assert_eq!(hc.total_violations(0), 0);
        let vs = hc.violations(1);
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.port == Some(1)));
        // And the hypervisor sees the same count through AXI-Lite.
        let off = port_block_offset(1) + offsets::PORT_VIOLATIONS;
        assert_eq!(hc.regs().read32(off), 2);
        assert_eq!(
            hc.regs()
                .read32(port_block_offset(0) + offsets::PORT_VIOLATIONS),
            0
        );
    }

    #[test]
    fn outstanding_counter_visible_through_regfile() {
        use crate::regfile::{offsets, port_block_offset};
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        // Run only a few cycles: subs have issued but no data returned,
        // so some are in flight and the register reflects that.
        run(&mut hc, 8);
        let off = port_block_offset(0) + offsets::PORT_OUTSTANDING;
        assert!(hc.regs().read32(off) > 0);
    }

    #[test]
    fn is_idle_after_draining() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        assert!(hc.is_idle());
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        assert!(!hc.is_idle());
        run(&mut hc, 10);
        // The request reached the mem port; drain it and the routing
        // entry is still outstanding, so not idle.
        assert!(!hc.is_idle());
    }

    #[test]
    fn trace_records_recharges_and_decoupling() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.enable_trace(64);
        hc.regs().write32(crate::regfile::offsets::PERIOD, 100);
        run(&mut hc, 250);
        // Decouple port 1 at runtime.
        let p1 = crate::regfile::port_block_offset(1) + crate::regfile::offsets::PORT_CTRL;
        hc.regs().write32(p1, 0);
        for now in 250..260 {
            hc.tick(now);
        }
        let lines = hc.trace().dump();
        assert!(
            lines
                .iter()
                .filter(|l| l.contains("budget recharge"))
                .count()
                >= 3,
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("port 1 DECOUPLED")));
        // Recouple and observe the transition.
        hc.regs().write32(p1, 1);
        for now in 260..270 {
            hc.tick(now);
        }
        assert!(hc
            .trace()
            .dump()
            .iter()
            .any(|l| l.contains("port 1 recoupled")));
    }

    #[test]
    fn metrics_registry_pins_address_propagation_goldens() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.enable_metrics();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        hc.port(1)
            .aw
            .push(0, AwBeat::new(0x200, 1, BurstSize::B4))
            .unwrap();
        hc.port(1).w.push(0, WBeat::new(vec![1; 4], true)).unwrap();
        run(&mut hc, 12);
        let m = AxiInterconnect::metrics(&hc).unwrap();
        // Fig. 3(a): address channels cross the fabric in exactly 4
        // cycles; the registry must measure the same number the probe
        // tests above observe at the mem port.
        assert_eq!(m.port(0).ar.latency.min(), Some(4));
        assert_eq!(m.port(1).aw.latency.min(), Some(4));
        assert_eq!(m.port(0).ar.bandwidth.bytes(), 4);
        // A transaction is in flight (no memory model attached here).
        assert_eq!(m.inflight_len(), 2);
        assert!(m.master_occupancy().peak() > 0);
    }

    #[test]
    fn bound_monitor_is_clean_without_memory_pressure() {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.enable_bound_monitor(crate::analysis::ServiceModel::hyperconnect(2, 16, 22));
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        run(&mut hc, 12);
        assert!(AxiInterconnect::bound_violations(&hc).is_empty());
        let rep = AxiInterconnect::bound_report(&hc).unwrap();
        assert_eq!(rep.violations, 0);
        assert_eq!(rep.read_bound, 300);
    }

    #[test]
    fn quiesce_idle_port_reports_drained_and_blocks_new_traffic() {
        use crate::regfile::{offsets, port_block_offset, QUIESCE_DRAINED, QUIESCE_REQUESTED};
        let mut hc = HyperConnect::new(HcConfig::new(2));
        let q1 = port_block_offset(1) + offsets::PORT_QUIESCE;
        hc.regs().write32(q1, QUIESCE_REQUESTED);
        hc.tick(0);
        assert_eq!(hc.regs().read32(q1) & QUIESCE_DRAINED, QUIESCE_DRAINED);
        // Requests pushed under quiesce park in the slave eFIFO and
        // never reach memory...
        hc.port(1)
            .ar
            .push(1, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        for now in 1..20 {
            hc.tick(now);
        }
        assert!(hc.mem_port().ar.pop_ready(20).is_none());
        // ...until the quiesce is released.
        hc.regs().write32(q1, 0);
        for now in 20..40 {
            hc.tick(now);
        }
        assert!(hc.mem_port().ar.pop_ready(40).is_some());
    }

    #[test]
    fn blown_drain_deadline_force_flushes_and_decouples() {
        use crate::regfile::{offsets, port_block_offset, QUIESCE_FLUSHED, QUIESCE_REQUESTED};
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.set_drain_model(crate::analysis::ServiceModel::hyperconnect(2, 16, 22));
        // 256 beats = 16 subs; MAX_OUT 4 are granted, 12 stay pre-grant.
        // No memory model is attached, so the granted subs never
        // complete and the drain can only end by force-flush.
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..6 {
            hc.tick(now);
        }
        let q0 = port_block_offset(0) + offsets::PORT_QUIESCE;
        hc.regs().write32(q0, QUIESCE_REQUESTED);
        let deadline = hc.drain_deadline();
        assert_eq!(deadline, 450, "(2,16,22) staged write bound");
        for now in 6..(deadline + 40) {
            hc.tick(now);
        }
        let status = hc.regs().read32(q0);
        assert_ne!(status & QUIESCE_FLUSHED, 0, "sticky flush bit set");
        assert!(status >> 16 > 0, "dropped sub-transactions surfaced");
        // The flush decouples the port so downstream state can drain.
        assert_eq!(
            hc.regs().read32(port_block_offset(0) + offsets::PORT_CTRL),
            0
        );
        // W1C clears the sticky flush state.
        hc.regs().write32(q0, QUIESCE_FLUSHED);
        assert_eq!(hc.regs().read32(q0) >> 16, 0);
    }

    #[test]
    fn snapshot_roundtrip_resumes_byte_identical() {
        use sim::persist::{SnapshotReader, SnapshotWriter};
        let mut a = HyperConnect::new(HcConfig::new(2));
        a.enable_metrics();
        a.port(0)
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        a.port(1)
            .aw
            .push(0, AwBeat::new(0x200, 4, BurstSize::B4))
            .unwrap();
        for i in 0..4u32 {
            a.port(1)
                .w
                .push(0, WBeat::new(vec![i as u8; 4], i == 3))
                .unwrap();
        }
        // Snapshot mid-flight, with subs split, staged and in the EXBAR.
        for now in 0..7 {
            a.tick(now);
        }
        let mut w = SnapshotWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        // Restore into a freshly-constructed instance — observability
        // enablement, uids and all pipeline registers come from the
        // snapshot, not from the constructor.
        let mut b = HyperConnect::new(HcConfig::new(2));
        b.restore_state(&mut SnapshotReader::new(&bytes)).unwrap();
        for now in 7..40 {
            a.tick(now);
            b.tick(now);
        }
        let mut wa = SnapshotWriter::new();
        a.save_state(&mut wa);
        let mut wb = SnapshotWriter::new();
        b.save_state(&mut wb);
        assert_eq!(
            wa.into_bytes(),
            wb.into_bytes(),
            "restored run must stay byte-identical to the donor"
        );
    }

    #[test]
    fn restore_rejects_port_count_mismatch() {
        use sim::persist::{PersistError, SnapshotReader, SnapshotWriter};
        let a = HyperConnect::new(HcConfig::new(2));
        let mut w = SnapshotWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = HyperConnect::new(HcConfig::new(3));
        assert!(matches!(
            b.restore_state(&mut SnapshotReader::new(&bytes)),
            Err(PersistError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn sustained_ar_throughput_is_one_per_cycle() {
        // With a single port and short bursts, the pipeline must sustain
        // one sub-request per cycle at the master port.
        let mut hc = HyperConnect::new(HcConfig::new(1));
        // Raise the outstanding limit so it doesn't throttle.
        let off = crate::regfile::port_block_offset(0) + crate::regfile::offsets::PORT_MAX_OUT;
        hc.regs().write32(off, 64);
        let mut arrivals = Vec::new();
        for now in 0..40u64 {
            // Keep the input eFIFO fed.
            let _ = hc
                .port(0)
                .ar
                .push(now, ArBeat::new(now * 64, 1, BurstSize::B4));
            hc.tick(now);
            if hc.mem_port().ar.pop_ready(now).is_some() {
                arrivals.push(now);
            }
        }
        assert!(arrivals.len() >= 20);
        // After the pipeline fills, arrivals are back-to-back.
        let steady = &arrivals[4..];
        for pair in steady.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "bubble in AR pipeline");
        }
    }
}
