//! Static (synthesis-time) configuration of a HyperConnect instance.
//!
//! These parameters mirror what a system integrator would fix when
//! instantiating the IP in a block design; everything that the paper
//! describes as *runtime*-configurable (budgets, period, nominal burst,
//! per-port enables) lives in the register file instead and is set
//! through the AXI-Lite control interface.

use axi::types::AxiVersion;

/// Address-arbitration policy of the EXBAR.
///
/// The paper's EXBAR uses round robin with fixed granularity one; the
/// fixed-priority variant is provided as an extension for systems where
/// one port must always win (at the cost of starving the others — the
/// ablation tests demonstrate exactly that hazard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Fair round robin, one transaction per grant (the paper).
    #[default]
    RoundRobin,
    /// Lowest port index always wins when contending.
    FixedPriority,
}

/// Synthesis-time parameters of a [`crate::HyperConnect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcConfig {
    /// Number of slave (accelerator-facing) input ports.
    pub num_ports: usize,
    /// AXI revision spoken on the ports (bounds legal burst lengths).
    pub version: AxiVersion,
    /// Depth of each eFIFO address queue (AR/AW), in requests.
    pub efifo_addr_depth: usize,
    /// Depth of each eFIFO data queue (W/R), in beats.
    pub efifo_data_depth: usize,
    /// Depth of each eFIFO response queue (B), in responses.
    pub efifo_resp_depth: usize,
    /// Capacity of the EXBAR routing-information buffers, in
    /// outstanding transactions (the paper's circular buffer).
    pub routing_depth: usize,
    /// EXBAR address-arbitration policy.
    pub arbitration: ArbitrationPolicy,
}

impl HcConfig {
    /// A HyperConnect with `num_ports` inputs and default buffer depths
    /// (matching the slim instance evaluated in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is zero.
    pub fn new(num_ports: usize) -> Self {
        assert!(num_ports > 0, "an interconnect needs at least one port");
        Self {
            num_ports,
            version: AxiVersion::Axi4,
            efifo_addr_depth: 4,
            efifo_data_depth: 32,
            efifo_resp_depth: 4,
            routing_depth: 32,
            arbitration: ArbitrationPolicy::RoundRobin,
        }
    }

    /// Sets the AXI revision.
    pub fn version(mut self, version: AxiVersion) -> Self {
        self.version = version;
        self
    }

    /// Sets the eFIFO data-queue depth.
    pub fn efifo_data_depth(mut self, depth: usize) -> Self {
        self.efifo_data_depth = depth;
        self
    }

    /// Sets the routing-buffer depth.
    pub fn routing_depth(mut self, depth: usize) -> Self {
        self.routing_depth = depth;
        self
    }

    /// Sets the EXBAR arbitration policy.
    pub fn arbitration(mut self, policy: ArbitrationPolicy) -> Self {
        self.arbitration = policy;
        self
    }
}

impl Default for HcConfig {
    /// The two-port instance used throughout the paper's evaluation.
    fn default() -> Self {
        Self::new(2)
    }
}

impl sim::persist::PersistValue for ArbitrationPolicy {
    // Discriminant table: array index = wire byte, append-only.
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        const TABLE: [ArbitrationPolicy; 2] = [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::FixedPriority,
        ];
        let idx = TABLE.iter().position(|p| p == self).expect("in table");
        w.put_u8(idx as u8);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        match r.take_u8()? {
            0 => Ok(ArbitrationPolicy::RoundRobin),
            1 => Ok(ArbitrationPolicy::FixedPriority),
            _ => Err(sim::persist::PersistError::Corrupt(
                "arbitration policy discriminant",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_case_study() {
        let cfg = HcConfig::default();
        assert_eq!(cfg.num_ports, 2);
        assert_eq!(cfg.version, AxiVersion::Axi4);
    }

    #[test]
    fn builders_override() {
        let cfg = HcConfig::new(4)
            .version(AxiVersion::Axi3)
            .efifo_data_depth(64)
            .routing_depth(8);
        assert_eq!(cfg.num_ports, 4);
        assert_eq!(cfg.version, AxiVersion::Axi3);
        assert_eq!(cfg.efifo_data_depth, 64);
        assert_eq!(cfg.routing_depth, 8);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = HcConfig::new(0);
    }
}
