//! Per-port credit-based traffic regulation.
//!
//! The reservation mechanism ([`crate::supervisor`] budgets recharged by
//! [`crate::central::CentralUnit`]) is all-or-nothing: a port either has
//! budget left in the current period or it stalls. Nothing shapes *how*
//! that budget is spent — a port with budget 64 may legally issue all 64
//! sub-transactions back-to-back at the start of the period, producing
//! exactly the burst interference the reservation was meant to contain.
//!
//! [`CreditRegulator`] closes that gap with a classic credit scheme, in
//! the style of AXI-REALM's per-master traffic regulators:
//!
//! * every `window` cycles each lane (read and write regulate
//!   independently) earns `rate` credits, saturating at `burst`;
//! * issuing one sub-transaction spends one credit of the matching lane;
//! * a separate `out_cap` bounds the *total* (read + write) outstanding
//!   sub-transactions regardless of credits.
//!
//! The regulator is enforced in [`crate::supervisor`] *ahead of* the
//! reservation budget check: a throttled port does not touch its budget
//! and does not count budget-stall cycles, so reservation accounting
//! stays meaningful under regulation.
//!
//! # Determinism under fast-forward
//!
//! The simulator's fast-forward and sharded schedulers skip cycles where
//! no component makes progress, so regulator state must never mutate on
//! a cycle that only the naive scheduler would tick. The implementation
//! therefore stores credits *as of an anchor window* and computes the
//! current ("effective") credit level purely from the cycle counter:
//!
//! ```text
//! effective(now) = min(burst, stored + windows_since_anchor(now) * rate)
//! ```
//!
//! Stored state only changes when a credit is consumed (a progress
//! cycle, ticked by every scheduler) or when the configuration changes
//! (an AXI-Lite write, which bumps the regfile generation and forces a
//! common tick). Both lanes share one anchor, so a consume on either
//! lane first materialises the effective credits of *both* lanes before
//! re-anchoring.
//!
//! Throttle events are edge-triggered (one event per transition into
//! the throttled state, not one per throttled cycle) for the same
//! reason: a fast-forward skip across a throttled span must not change
//! the event count.

use sim::Cycle;

/// `REG_RATE` value meaning "no rate limit" (reset default).
pub const RATE_UNLIMITED: u32 = u32::MAX;

/// `REG_OUT_CAP` value meaning "no outstanding-transaction cap"
/// (reset default).
pub const OUT_CAP_UNLIMITED: u32 = u32::MAX;

/// Reset value of the global `REG_WINDOW` register: credit refill
/// window in cycles.
pub const DEFAULT_WINDOW: u32 = 64;

/// Runtime-reprogrammable regulator parameters for one port.
///
/// Mirrors the per-port `REG_RATE` / `REG_BURST` / `REG_OUT_CAP`
/// registers plus the global `REG_WINDOW`; carried into the data path
/// through [`crate::TsRuntime`] like every other regfile-derived
/// setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegulatorConfig {
    /// Credits granted to each lane per refill window
    /// ([`RATE_UNLIMITED`] disables rate limiting).
    pub rate: u32,
    /// Maximum credits a lane can accumulate (clamped to >= 1).
    pub burst: u32,
    /// Cap on total outstanding (read + write) sub-transactions
    /// ([`OUT_CAP_UNLIMITED`] disables the cap).
    pub out_cap: u32,
    /// Refill window length in cycles (clamped to >= 1).
    pub window: u32,
}

impl RegulatorConfig {
    /// Reset configuration: everything unlimited, regulation inert.
    pub fn unlimited() -> Self {
        Self {
            rate: RATE_UNLIMITED,
            burst: 1,
            out_cap: OUT_CAP_UNLIMITED,
            window: DEFAULT_WINDOW,
        }
    }

    /// True when the rate limiter applies (rate below unlimited).
    pub fn rate_limited(&self) -> bool {
        self.rate != RATE_UNLIMITED
    }

    /// True when any mechanism (rate limit or outstanding cap) is
    /// armed; an inactive regulator is byte-for-byte invisible.
    pub fn is_active(&self) -> bool {
        self.rate_limited() || self.out_cap != OUT_CAP_UNLIMITED
    }

    fn window_cycles(&self) -> Cycle {
        Cycle::from(self.window.max(1))
    }

    fn burst_clamped(&self) -> u32 {
        self.burst.max(1)
    }
}

impl Default for RegulatorConfig {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Dual-lane (read/write) credit regulator with an outstanding cap.
///
/// See the [module docs](self) for the determinism contract; in short,
/// all observable state changes happen on cycles every scheduler ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditRegulator {
    cfg: RegulatorConfig,
    /// Read-lane credits as of `anchor_window`.
    read_credits: u32,
    /// Write-lane credits as of `anchor_window`.
    write_credits: u32,
    /// Window index the stored credits are anchored at.
    anchor_window: u64,
    /// Saturating count of throttle-onset events (edge-triggered).
    throttle_events: u64,
    /// Whether the port was throttled as of the last issue attempt.
    throttled: bool,
}

impl Default for CreditRegulator {
    fn default() -> Self {
        Self::new(RegulatorConfig::unlimited())
    }
}

impl CreditRegulator {
    /// A regulator starting with full burst credits on both lanes.
    pub fn new(cfg: RegulatorConfig) -> Self {
        let full = cfg.burst_clamped();
        Self {
            cfg,
            read_credits: full,
            write_credits: full,
            anchor_window: 0,
            throttle_events: 0,
            throttled: false,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> RegulatorConfig {
        self.cfg
    }

    /// True when either the rate limiter or the outstanding cap is
    /// armed.
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// True when the rate limiter applies.
    pub fn rate_limited(&self) -> bool {
        self.cfg.rate_limited()
    }

    fn window_index(&self, now: Cycle) -> u64 {
        now / self.cfg.window_cycles()
    }

    /// Credits available on a lane at `now`, computed purely from the
    /// stored anchor state (no mutation).
    fn effective(&self, stored: u32, now: Cycle) -> u32 {
        let elapsed = self.window_index(now).saturating_sub(self.anchor_window);
        let refilled =
            u64::from(stored).saturating_add(elapsed.saturating_mul(u64::from(self.cfg.rate)));
        refilled.min(u64::from(self.cfg.burst_clamped())) as u32
    }

    /// Adopt a (possibly changed) configuration. On any change both
    /// lanes reset to full burst and the anchor moves to the current
    /// window; the sticky throttle-event counter is preserved (it has
    /// its own W1C clear).
    ///
    /// Called at the top of every issue attempt; configuration writes
    /// bump the regfile generation, so the adopting cycle is ticked by
    /// every scheduler.
    pub fn sync(&mut self, now: Cycle, cfg: RegulatorConfig) {
        if cfg == self.cfg {
            return;
        }
        self.cfg = cfg;
        let full = cfg.burst_clamped();
        self.read_credits = full;
        self.write_credits = full;
        self.anchor_window = self.window_index(now);
        self.throttled = false;
    }

    /// Can the read lane issue one sub-transaction at `now`?
    pub fn read_available(&self, now: Cycle) -> bool {
        !self.cfg.rate_limited() || self.effective(self.read_credits, now) > 0
    }

    /// Can the write lane issue one sub-transaction at `now`?
    pub fn write_available(&self, now: Cycle) -> bool {
        !self.cfg.rate_limited() || self.effective(self.write_credits, now) > 0
    }

    /// Does the outstanding-transaction cap admit one more
    /// sub-transaction given `outstanding` currently in flight?
    pub fn out_cap_ok(&self, outstanding: u32) -> bool {
        self.cfg.out_cap == OUT_CAP_UNLIMITED || outstanding < self.cfg.out_cap
    }

    /// Materialise both lanes at `now` and re-anchor. The lanes share
    /// one anchor, so a consume on either lane must first bank the
    /// other lane's accrued refills or they would silently vanish.
    fn materialise(&mut self, now: Cycle) {
        self.read_credits = self.effective(self.read_credits, now);
        self.write_credits = self.effective(self.write_credits, now);
        self.anchor_window = self.window_index(now);
    }

    /// Spend one read-lane credit. Caller must have checked
    /// [`Self::read_available`]. No-op when rate limiting is off.
    pub fn consume_read(&mut self, now: Cycle) {
        if !self.cfg.rate_limited() {
            return;
        }
        self.materialise(now);
        debug_assert!(
            self.read_credits > 0,
            "consume_read without available credit"
        );
        self.read_credits = self.read_credits.saturating_sub(1);
    }

    /// Spend one write-lane credit. Caller must have checked
    /// [`Self::write_available`]. No-op when rate limiting is off.
    pub fn consume_write(&mut self, now: Cycle) {
        if !self.cfg.rate_limited() {
            return;
        }
        self.materialise(now);
        debug_assert!(
            self.write_credits > 0,
            "consume_write without available credit"
        );
        self.write_credits = self.write_credits.saturating_sub(1);
    }

    /// Record the throttle state observed this issue attempt; a rising
    /// edge (not-throttled -> throttled) counts one event. Transitions
    /// only happen on cycles every scheduler ticks (work arrival,
    /// credit consume, completion), so the count is
    /// scheduler-invariant.
    pub fn note_throttled(&mut self, throttled: bool) {
        if throttled && !self.throttled {
            self.throttle_events = self.throttle_events.saturating_add(1);
        }
        self.throttled = throttled;
    }

    /// Number of throttle-onset events since the last clear.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// W1C backing for the `REG_THROTTLE` register.
    pub fn clear_throttle_events(&mut self) {
        self.throttle_events = 0;
    }

    /// Stored (anchor-time) credits `(read, write)` for gauges and the
    /// read-only `REG_CREDITS` register.
    ///
    /// Deliberately *not* the effective value: stored credits change
    /// only on commonly-ticked cycles, so sampling them every tick is
    /// scheduler-invariant, while the effective value varies with `now`
    /// and would let a naive-only tick observe a refill fast-forward
    /// skips over.
    pub fn stored_credits(&self) -> (u32, u32) {
        (self.read_credits, self.write_credits)
    }

    /// First cycle at which the next refill window opens.
    pub fn next_refill(&self, now: Cycle) -> Cycle {
        (self.window_index(now) + 1).saturating_mul(self.cfg.window_cycles())
    }
}

impl sim::persist::PersistValue for RegulatorConfig {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u32(self.rate);
        w.put_u32(self.burst);
        w.put_u32(self.out_cap);
        w.put_u32(self.window);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            rate: r.take_u32()?,
            burst: r.take_u32()?,
            out_cap: r.take_u32()?,
            window: r.take_u32()?,
        })
    }
}

impl sim::persist::PersistValue for CreditRegulator {
    /// Effective credits are derived purely from the stored anchor
    /// values and the cycle counter, so persisting the anchor state is
    /// enough for the restored regulator to extrapolate identically.
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        self.cfg.save_value(w);
        w.put_u32(self.read_credits);
        w.put_u32(self.write_credits);
        w.put_u64(self.anchor_window);
        w.put_u64(self.throttle_events);
        w.put_bool(self.throttled);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            cfg: RegulatorConfig::load_value(r)?,
            read_credits: r.take_u32()?,
            write_credits: r.take_u32()?,
            anchor_window: r.take_u64()?,
            throttle_events: r.take_u64()?,
            throttled: r.take_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: u32, burst: u32, window: u32) -> RegulatorConfig {
        RegulatorConfig {
            rate,
            burst,
            out_cap: OUT_CAP_UNLIMITED,
            window,
        }
    }

    #[test]
    fn unlimited_regulator_is_inert() {
        let mut r = CreditRegulator::default();
        assert!(!r.is_active());
        for now in 0..100 {
            assert!(r.read_available(now));
            assert!(r.write_available(now));
            assert!(r.out_cap_ok(u32::MAX - 1));
            r.consume_read(now);
            r.consume_write(now);
        }
        // No state drift: still byte-identical to a fresh regulator.
        assert_eq!(r, CreditRegulator::default());
    }

    #[test]
    fn credits_deplete_and_refill_on_window_boundaries() {
        let mut r = CreditRegulator::new(cfg(2, 4, 10));
        // Fresh regulator starts at full burst.
        assert_eq!(r.stored_credits(), (4, 4));
        for now in 0..4 {
            assert!(r.read_available(now));
            r.consume_read(now);
        }
        assert!(!r.read_available(4));
        // Still blocked until the next window boundary...
        assert!(!r.read_available(9));
        assert_eq!(r.next_refill(4), 10);
        // ...then exactly `rate` credits arrive.
        assert!(r.read_available(10));
        r.consume_read(10);
        r.consume_read(10);
        assert!(!r.read_available(10));
    }

    #[test]
    fn refill_saturates_at_burst() {
        let r = CreditRegulator::new(cfg(100, 3, 10));
        // Many windows elapse; effective credits cap at burst.
        assert_eq!(r.effective(3, 1_000), 3);
        assert_eq!(r.effective(0, 1_000), 3);
    }

    #[test]
    fn lanes_are_independent_but_share_the_anchor() {
        let mut r = CreditRegulator::new(cfg(1, 2, 10));
        r.consume_read(0);
        r.consume_read(0);
        assert!(!r.read_available(0));
        // Write lane untouched.
        assert!(r.write_available(0));
        // Window 1 refills the read lane; consuming WRITE at cycle 12
        // re-anchors both lanes and must not lose the read refill.
        r.consume_write(12);
        assert!(r.read_available(12));
        r.consume_read(12);
        assert!(!r.read_available(12));
    }

    #[test]
    fn consume_banks_other_lanes_refill_before_reanchoring() {
        let mut r = CreditRegulator::new(cfg(1, 4, 10));
        // Drain both lanes in window 0.
        for _ in 0..4 {
            r.consume_read(0);
            r.consume_write(0);
        }
        // Three windows later both lanes accrued 3 credits. A read
        // consume at cycle 30 must bank the write lane's 3 too.
        r.consume_read(30);
        assert_eq!(r.stored_credits(), (2, 3));
        assert!(r.write_available(30));
    }

    #[test]
    fn out_cap_is_independent_of_credits() {
        let r = CreditRegulator::new(RegulatorConfig {
            rate: RATE_UNLIMITED,
            burst: 1,
            out_cap: 3,
            window: DEFAULT_WINDOW,
        });
        assert!(r.is_active());
        assert!(r.out_cap_ok(0));
        assert!(r.out_cap_ok(2));
        assert!(!r.out_cap_ok(3));
        assert!(!r.out_cap_ok(10));
        // Rate lanes unconstrained.
        assert!(r.read_available(0) && r.write_available(0));
    }

    #[test]
    fn throttle_events_are_edge_triggered() {
        let mut r = CreditRegulator::new(cfg(1, 1, 10));
        r.consume_read(0);
        // Many consecutive throttled observations count once.
        for _ in 0..50 {
            r.note_throttled(true);
        }
        assert_eq!(r.throttle_events(), 1);
        r.note_throttled(false);
        r.note_throttled(true);
        assert_eq!(r.throttle_events(), 2);
        r.clear_throttle_events();
        assert_eq!(r.throttle_events(), 0);
        // Clearing does not forget the level: still throttled, no new
        // edge until it first unthrottles.
        r.note_throttled(true);
        assert_eq!(r.throttle_events(), 0);
    }

    #[test]
    fn sync_adopts_config_and_resets_credits() {
        let mut r = CreditRegulator::new(cfg(1, 2, 10));
        r.consume_read(0);
        r.note_throttled(true);
        assert_eq!(r.throttle_events(), 1);
        // Identical config: pure no-op.
        let before = r.clone();
        r.sync(5, cfg(1, 2, 10));
        assert_eq!(r, before);
        // Changed config: full credits, fresh anchor, throttle level
        // reset, sticky event counter preserved.
        r.sync(25, cfg(3, 5, 10));
        assert_eq!(r.stored_credits(), (5, 5));
        assert_eq!(r.throttle_events(), 1);
        assert!(r.read_available(25));
    }

    #[test]
    fn effective_credits_are_pure() {
        let r = CreditRegulator::new(cfg(2, 8, 10));
        // Repeated availability checks at any cycle leave the stored
        // state untouched — the fast-forward determinism contract.
        let snap = r.clone();
        for now in [0, 5, 10, 99, 1_000_000] {
            let _ = r.read_available(now);
            let _ = r.write_available(now);
        }
        assert_eq!(r, snap);
    }

    #[test]
    fn zero_rate_blocks_forever_but_reports_refill_horizon() {
        let r = CreditRegulator::new(cfg(0, 1, 10));
        // Credits start at burst, so the first issue goes through; once
        // spent, rate 0 never refills.
        let mut r2 = r.clone();
        r2.consume_read(0);
        assert!(!r2.read_available(1_000_000));
        // The refill horizon still advances (harmless wake-ups).
        assert_eq!(r2.next_refill(25), 30);
    }

    #[test]
    fn window_clamps_to_one_cycle() {
        let r = CreditRegulator::new(cfg(1, 4, 0));
        // window 0 behaves as window 1: one credit per cycle.
        assert_eq!(r.next_refill(7), 8);
    }
}
