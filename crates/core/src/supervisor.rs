//! The Transaction Supervisor (TS): burst equalization, outstanding
//! limiting and bandwidth reservation for one slave port.
//!
//! Paper §V-B: the TS is the core module for bandwidth and memory-access
//! management. Reads and writes are managed by independent subsystems
//! (the AXI channels are parallel). The TS
//!
//! * **equalizes** bursts to a *nominal* length (Restuccia et al., TECS
//!   2019): read requests are split into sub-requests of nominal size
//!   and their data merged back; write requests are split along with
//!   their data, and the write responses merged into one;
//! * **limits outstanding transactions** per direction to a programmed
//!   value;
//! * **enforces bandwidth reservation** (Pagani et al., ECRTS 2019): a
//!   budget of sub-transactions per port, recharged every reservation
//!   period by the central unit — combined with equalization this bounds
//!   both the number of transactions *and* the data moved in any period;
//! * adds exactly **one cycle** of latency on each address request and
//!   none on the R/W/B channels, which are handled proactively.

use sim::ring::Ring;

use axi::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};
use axi::burst::{crosses_4k, split_incr};
use axi::checker::{Violation, ViolationKind};
use axi::observe::{Hop, ObsChannel, ObsEvent};
use axi::types::{BurstKind, Resp};
use sim::stats::LatencyStat;
use sim::{Cycle, TimedFifo};

use crate::efifo::EFifo;
use crate::regfile::BUDGET_UNLIMITED;
use crate::regulate::{CreditRegulator, RegulatorConfig};

/// Consecutive cycles the W channel may starve a pending write burst
/// before the TS reports a [`ViolationKind::HandshakeHang`]. The
/// detector re-arms after each report, so a persistent hang produces a
/// report every `W_HANG_THRESHOLD` cycles.
pub const W_HANG_THRESHOLD: u32 = 64;

/// An equalized (sub-)read request staged for arbitration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubAr {
    /// The sub-request itself (original tag/ID/timestamp preserved).
    pub beat: ArBeat,
    /// Whether this is the final fragment of the original burst.
    pub final_sub: bool,
}

/// An equalized (sub-)write request staged for arbitration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubAw {
    /// The sub-request itself (original tag/ID/timestamp preserved).
    pub beat: AwBeat,
    /// Whether this is the final fragment of the original burst.
    pub final_sub: bool,
}

/// Per-tick runtime configuration of a TS, read from the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsRuntime {
    /// Nominal burst length in beats.
    pub nominal: u32,
    /// Outstanding sub-transaction limit per direction.
    pub max_outstanding: u32,
    /// Whether the port is enabled (coupled).
    pub enabled: bool,
    /// Whether the port is quiescing: no new transactions are admitted
    /// at ingest, while staged and in-flight ones complete normally
    /// (the recovery protocol's drain phase).
    pub quiesced: bool,
    /// Traffic-regulation parameters (rate/burst/out-cap/window) the TS
    /// adopts lazily at its next issue attempt.
    pub regulator: RegulatorConfig,
}

/// Aggregate per-port counters exposed by the TS.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TsStats {
    /// Original read bursts fully completed.
    pub reads_completed: u64,
    /// Original write bursts fully completed (B delivered).
    pub writes_completed: u64,
    /// Bytes of read data delivered to the accelerator.
    pub bytes_read: u64,
    /// Bytes of write data forwarded toward memory.
    pub bytes_written: u64,
    /// Sub-transactions issued since reset.
    pub subs_issued: u64,
    /// Cycles an issue-eligible sub-transaction was stalled by an
    /// exhausted budget (reservation throttling at work).
    pub budget_stall_cycles: u64,
}

/// The Transaction Supervisor for one slave port.
#[derive(Debug)]
pub struct TransactionSupervisor {
    // --- read management subsystem ---
    ar_split: Ring<SubAr>,
    /// Staged sub-reads toward the EXBAR (the TS's one-cycle register).
    pub ar_stage: TimedFifo<SubAr>,
    read_outstanding: u32,
    // --- write management subsystem ---
    aw_split: Ring<SubAw>,
    /// Staged sub-writes toward the EXBAR.
    pub aw_stage: TimedFifo<SubAw>,
    /// Upcoming sub-burst lengths for W-stream re-chunking.
    w_sublens: Ring<u32>,
    w_current_left: u32,
    /// Original (pre-split) burst lengths, for WLAST-position checking
    /// against what the accelerator actually drives.
    w_orig_lens: Ring<u32>,
    w_orig_left: u32,
    /// Cycles the W channel has starved a pending write burst.
    w_starved: u32,
    /// Re-chunked write data toward the EXBAR (proactive: no latency).
    pub w_stage: TimedFifo<WBeat>,
    write_outstanding: u32,
    // --- traffic regulation (AXI-REALM-style credit scheme) ---
    regulator: CreditRegulator,
    // --- reservation ---
    budget_left: Option<u32>,
    txn_this_period: u32,
    txn_total: u64,
    overrun_reported: bool,
    // --- error-response merging ---
    r_sub_resp: Resp,
    b_merged_resp: Resp,
    // --- statistics ---
    stats: TsStats,
    read_latency: LatencyStat,
    write_latency: LatencyStat,
    violations: Vec<Violation>,
    // --- observability (off unless enable_observability was called) ---
    /// Port index for event attribution and uid salting.
    obs_port: Option<usize>,
    /// Monotonic uid sequence for transactions accepted by this TS.
    uid_seq: u64,
    /// Hop events buffered for the owning interconnect to drain.
    obs_events: Vec<ObsEvent>,
    /// Saturating count of error-completed transactions (merged R and B
    /// responses that were not OKAY), surfaced through `PORT_ERR_TOTAL`.
    err_total: u64,
}

impl TransactionSupervisor {
    /// Creates a TS with the given W staging depth (beats).
    pub fn new(w_depth: usize) -> Self {
        Self {
            ar_split: Ring::new(),
            ar_stage: TimedFifo::new(2, 1),
            read_outstanding: 0,
            aw_split: Ring::new(),
            aw_stage: TimedFifo::new(2, 1),
            w_sublens: Ring::new(),
            w_current_left: 0,
            w_orig_lens: Ring::new(),
            w_orig_left: 0,
            w_starved: 0,
            w_stage: TimedFifo::new(w_depth.max(2), 0),
            write_outstanding: 0,
            regulator: CreditRegulator::default(),
            budget_left: None,
            txn_this_period: 0,
            txn_total: 0,
            overrun_reported: false,
            r_sub_resp: Resp::Okay,
            b_merged_resp: Resp::Okay,
            stats: TsStats::default(),
            read_latency: LatencyStat::new(),
            write_latency: LatencyStat::new(),
            violations: Vec::new(),
            obs_port: None,
            uid_seq: 0,
            obs_events: Vec::new(),
            err_total: 0,
        }
    }

    /// Saturating count of transactions this TS completed with a
    /// non-OKAY merged response (read sub-bursts and merged writes).
    pub fn err_total(&self) -> u64 {
        self.err_total
    }

    /// Turns on transaction observability for this TS, identifying it as
    /// slave port `port`. From the next accepted transaction on, address
    /// beats get a unique `uid` (salted with the port index so uids are
    /// globally unique) and the TS buffers [`ObsEvent`]s for the owning
    /// interconnect to drain with [`Self::drain_obs_events`].
    ///
    /// # Panics
    ///
    /// Panics if `port >= 1023` (the uid salt is 10 bits).
    pub fn enable_observability(&mut self, port: usize) {
        assert!(port < 1023, "uid salt supports at most 1022 ports");
        self.obs_port = Some(port);
    }

    /// Appends buffered hop events into `into` (preserving order) and
    /// clears the internal buffer.
    pub fn drain_obs_events(&mut self, into: &mut Vec<ObsEvent>) {
        into.append(&mut self.obs_events);
    }

    /// Whether hop events are waiting to be drained.
    pub fn has_obs_events(&self) -> bool {
        !self.obs_events.is_empty()
    }

    /// Allocates the next uid for a transaction accepted on this port.
    fn next_uid(&mut self, port: usize) -> u64 {
        self.uid_seq += 1;
        (self.uid_seq << 10) | (port as u64 + 1)
    }

    fn record(&mut self, cycle: Cycle, kind: ViolationKind, detail: String) {
        self.violations.push(Violation::new(cycle, kind, detail));
    }

    /// Drains the structured violations this TS has detected since the
    /// last call (the interconnect attributes them to its port).
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether any violations are waiting to be drained.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Recharges the reservation budget (called synchronously for all
    /// ports by the central unit at each period boundary). The register
    /// value [`BUDGET_UNLIMITED`] disables reservation for the port.
    pub fn recharge(&mut self, budget_reg: u32) {
        self.budget_left = (budget_reg != BUDGET_UNLIMITED).then_some(budget_reg);
        self.txn_this_period = 0;
        self.overrun_reported = false;
    }

    /// Remaining budget this period (`None` = unlimited).
    pub fn budget_left(&self) -> Option<u32> {
        self.budget_left
    }

    /// Sub-transactions issued in the current period.
    pub fn txn_this_period(&self) -> u32 {
        self.txn_this_period
    }

    /// Sub-transactions issued since reset.
    pub fn txn_total(&self) -> u64 {
        self.txn_total
    }

    /// Outstanding read sub-transactions.
    pub fn read_outstanding(&self) -> u32 {
        self.read_outstanding
    }

    /// Outstanding write sub-transactions.
    pub fn write_outstanding(&self) -> u32 {
        self.write_outstanding
    }

    /// Whether this port's regulator has any mechanism armed (as of the
    /// configuration last adopted at an issue attempt).
    pub fn regulator_active(&self) -> bool {
        self.regulator.is_active()
    }

    /// Throttle-onset events recorded by the regulator since the last
    /// clear.
    pub fn throttle_events(&self) -> u64 {
        self.regulator.throttle_events()
    }

    /// Clears the regulator's throttle-event counter (backs the
    /// register file's W1C `REG_THROTTLE`).
    pub fn clear_throttle_events(&mut self) {
        self.regulator.clear_throttle_events();
    }

    /// Stored `(read, write)` regulator credits — anchor-time values,
    /// deliberately not extrapolated to the current cycle (see
    /// [`CreditRegulator::stored_credits`]).
    pub fn stored_credits(&self) -> (u32, u32) {
        self.regulator.stored_credits()
    }

    /// Event-horizon hint for the regulator: the next credit-refill
    /// boundary, but only while a pending sub-request is actually
    /// blocked on credits. `None` means the regulator constrains
    /// nothing right now (under-promising is always safe: an extra
    /// wake-up makes no progress and is re-skipped).
    pub fn regulator_next_refill(&self, now: Cycle) -> Option<Cycle> {
        if !self.regulator.rate_limited() {
            return None;
        }
        let read_blocked = !self.ar_split.is_empty() && !self.regulator.read_available(now);
        let write_blocked = !self.aw_split.is_empty() && !self.regulator.write_available(now);
        (read_blocked || write_blocked).then(|| self.regulator.next_refill(now))
    }

    /// Aggregate counters.
    pub fn stats(&self) -> TsStats {
        self.stats
    }

    /// Completed-read latency distribution (AR issue to final R beat).
    pub fn read_latency(&self) -> &LatencyStat {
        &self.read_latency
    }

    /// Completed-write latency distribution (AW issue to merged B).
    pub fn write_latency(&self) -> &LatencyStat {
        &self.write_latency
    }

    /// Whether a tick with no new port input would still mutate TS
    /// state: the W-starvation detector and the budget-stall counter
    /// advance on every cycle their condition holds, even when nothing
    /// observable moves. Event-horizon scheduling must not skip cycles
    /// while this is true, or [`ViolationKind::HandshakeHang`] /
    /// [`ViolationKind::BudgetOverrun`] timing would diverge from
    /// cycle-by-cycle stepping.
    ///
    /// The budget check conservatively ignores the outstanding limit
    /// (it is runtime configuration the TS does not store), so it may
    /// report `true` when the counter would in fact not advance —
    /// under-promising the horizon is always safe.
    pub fn counts_every_cycle(&self) -> bool {
        let w_owed =
            !self.w_stage.is_full() && (self.w_current_left > 0 || !self.w_sublens.is_empty());
        let budget_stalled = self.budget_left == Some(0)
            && ((!self.ar_split.is_empty() && !self.ar_stage.is_full())
                || (!self.aw_split.is_empty() && !self.aw_stage.is_full()));
        w_owed || budget_stalled
    }

    /// Event-horizon hint over the TS's internal pipeline registers:
    /// the earliest cycle a staged sub-request or W beat becomes
    /// visible, or `None` if all stages are empty. Split queues are
    /// issue-eligible immediately and are covered by
    /// [`Self::counts_every_cycle`] / the caller's progress check.
    pub fn next_stage_ready(&self) -> Option<Cycle> {
        [
            self.ar_stage.next_ready_at(),
            self.aw_stage.next_ready_at(),
            self.w_stage.next_ready_at(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Whether the TS holds no in-flight state.
    pub fn is_idle(&self) -> bool {
        self.ar_split.is_empty()
            && self.ar_stage.is_empty()
            && self.aw_split.is_empty()
            && self.aw_stage.is_empty()
            && self.w_sublens.is_empty()
            && self.w_current_left == 0
            && self.w_stage.is_empty()
            && self.read_outstanding == 0
            && self.write_outstanding == 0
    }

    /// Force-flushes all *pre-grant* state after a blown drain
    /// deadline: the split queues, staged sub-requests and the buffered
    /// / owed W stream are dropped. Sub-transactions already granted to
    /// the EXBAR are untouched — their routing state lives downstream
    /// and they complete (or are firewalled) normally. Returns the
    /// number of sub-transactions dropped.
    ///
    /// The caller must decouple the port's eFIFO at the same time:
    /// granted writes whose buffered data was flushed here can only
    /// complete via the EXBAR's firewall-beat synthesis, which engages
    /// while the port is decoupled.
    pub fn force_flush(&mut self, now: Cycle) -> u32 {
        // (uid, channel, was_staged): staged drops carry `sub_end` so
        // the bound monitor can retire their pending service clocks;
        // split-queue drops never started one.
        let mut flushed: Vec<(u64, ObsChannel, bool)> = Vec::new();
        while let Some(sub) = self.ar_split.pop_front() {
            flushed.push((sub.beat.uid, ObsChannel::Ar, false));
        }
        while let Some(sub) = self.aw_split.pop_front() {
            flushed.push((sub.beat.uid, ObsChannel::Aw, false));
        }
        while let Some(sub) = self.ar_stage.pop_ready(Cycle::MAX) {
            self.read_outstanding = self.read_outstanding.saturating_sub(1);
            flushed.push((sub.beat.uid, ObsChannel::Ar, true));
        }
        while let Some(sub) = self.aw_stage.pop_ready(Cycle::MAX) {
            self.write_outstanding = self.write_outstanding.saturating_sub(1);
            flushed.push((sub.beat.uid, ObsChannel::Aw, true));
        }
        self.w_sublens.clear();
        self.w_current_left = 0;
        self.w_orig_lens.clear();
        self.w_orig_left = 0;
        self.w_starved = 0;
        while self.w_stage.pop_ready(Cycle::MAX).is_some() {}
        if let Some(port) = self.obs_port {
            for &(uid, channel, staged) in &flushed {
                self.obs_events.push(ObsEvent {
                    uid,
                    port: Some(port),
                    channel,
                    hop: Hop::Dropped,
                    cycle: now,
                    ref_cycle: now,
                    bytes: 0,
                    sub_end: staged,
                    txn_end: true,
                });
            }
        }
        flushed.len() as u32
    }

    fn split_ar(&mut self, ar: ArBeat, nominal: u32) {
        if ar.burst != BurstKind::Incr || ar.len <= nominal {
            self.ar_split.push_back(SubAr {
                beat: ar,
                final_sub: true,
            });
            return;
        }
        let subs = split_incr(ar.addr, ar.len, ar.size, nominal);
        let mut subs = subs.into_iter();
        let final_geom = subs.next_back().expect("split yields at least one sub");
        for s in subs {
            let mut beat = ar.clone();
            beat.addr = s.addr;
            beat.len = s.len;
            self.ar_split.push_back(SubAr {
                beat,
                final_sub: false,
            });
        }
        // The final sub-request takes ownership of the original beat —
        // no clone on the last (or only-split) fragment.
        let mut beat = ar;
        beat.addr = final_geom.addr;
        beat.len = final_geom.len;
        self.ar_split.push_back(SubAr {
            beat,
            final_sub: true,
        });
    }

    fn split_aw(&mut self, aw: AwBeat, nominal: u32) {
        if aw.burst != BurstKind::Incr || aw.len <= nominal {
            self.w_sublens.push_back(aw.len);
            self.aw_split.push_back(SubAw {
                beat: aw,
                final_sub: true,
            });
            return;
        }
        let subs = split_incr(aw.addr, aw.len, aw.size, nominal);
        let mut subs = subs.into_iter();
        let final_geom = subs.next_back().expect("split yields at least one sub");
        for s in subs {
            let mut beat = aw.clone();
            beat.addr = s.addr;
            beat.len = s.len;
            self.w_sublens.push_back(s.len);
            self.aw_split.push_back(SubAw {
                beat,
                final_sub: false,
            });
        }
        // As in `split_ar`: the final sub moves the original beat.
        let mut beat = aw;
        beat.addr = final_geom.addr;
        beat.len = final_geom.len;
        self.w_sublens.push_back(final_geom.len);
        self.aw_split.push_back(SubAw {
            beat,
            final_sub: true,
        });
    }

    /// Consumes new requests and data from the port's eFIFO: splits
    /// address requests to the nominal size and re-chunks the W stream.
    /// Returns `true` on any progress.
    pub fn ingest(&mut self, now: Cycle, efifo: &mut EFifo, rt: TsRuntime) -> bool {
        if !rt.enabled {
            return false;
        }
        let mut progress = false;
        // One original request per cycle per direction enters the
        // splitter once the previous one is fully staged. A quiescing
        // port stops here: nothing new is admitted, but everything
        // below (already-accepted W data) keeps flowing so the
        // in-flight population can drain.
        if self.ar_split.is_empty() && !rt.quiesced {
            if let Some(mut ar) = efifo.pop_ar(now) {
                if ar.burst == BurstKind::Incr && crosses_4k(ar.addr, ar.len, ar.size) {
                    self.record(
                        now,
                        ViolationKind::Boundary4K,
                        format!("AR {:#x} len {} crosses a 4 KiB boundary", ar.addr, ar.len),
                    );
                }
                if let Some(port) = self.obs_port {
                    // Stamp the uid before splitting so every
                    // sub-request inherits it when the splitter clones/moves the beat.
                    ar.uid = self.next_uid(port);
                    self.obs_events.push(ObsEvent {
                        uid: ar.uid,
                        port: Some(port),
                        channel: ObsChannel::Ar,
                        hop: Hop::TsAccepted,
                        cycle: now,
                        ref_cycle: ar.issued_at,
                        bytes: ar.total_bytes(),
                        sub_end: false,
                        txn_end: false,
                    });
                }
                self.split_ar(ar, rt.nominal);
                progress = true;
            }
        }
        if self.aw_split.is_empty() && !rt.quiesced {
            if let Some(mut aw) = efifo.pop_aw(now) {
                if aw.burst == BurstKind::Incr && crosses_4k(aw.addr, aw.len, aw.size) {
                    self.record(
                        now,
                        ViolationKind::Boundary4K,
                        format!("AW {:#x} len {} crosses a 4 KiB boundary", aw.addr, aw.len),
                    );
                }
                if let Some(port) = self.obs_port {
                    aw.uid = self.next_uid(port);
                    self.obs_events.push(ObsEvent {
                        uid: aw.uid,
                        port: Some(port),
                        channel: ObsChannel::Aw,
                        hop: Hop::TsAccepted,
                        cycle: now,
                        ref_cycle: aw.issued_at,
                        bytes: aw.total_bytes(),
                        sub_end: false,
                        txn_end: false,
                    });
                }
                self.w_orig_lens.push_back(aw.len);
                self.split_aw(aw, rt.nominal);
                progress = true;
            }
        }
        // W stream: one beat per cycle, with LAST rewritten to the
        // equalized sub-burst boundaries.
        if !self.w_stage.is_full() && (self.w_current_left > 0 || !self.w_sublens.is_empty()) {
            if let Some(mut w) = efifo.pop_w(now) {
                self.w_starved = 0;
                if self.w_current_left == 0 {
                    self.w_current_left = self.w_sublens.pop_front().expect("checked non-empty");
                }
                if self.w_orig_left == 0 {
                    self.w_orig_left = self.w_orig_lens.pop_front().unwrap_or(0);
                }
                // Check the accelerator's WLAST against the original
                // burst boundary before rewriting it.
                let expected_last = self.w_orig_left == 1;
                if w.last != expected_last {
                    self.record(
                        now,
                        ViolationKind::WlastMismatch,
                        format!(
                            "WLAST={} on beat with {} remaining in the original burst",
                            w.last, self.w_orig_left
                        ),
                    );
                }
                self.w_orig_left = self.w_orig_left.saturating_sub(1);
                w.last = self.w_current_left == 1;
                self.w_current_left -= 1;
                self.stats.bytes_written += w.data.len() as u64;
                if w.last {
                    if let Some(port) = self.obs_port {
                        // The equalized sub's write data is now fully
                        // offered to the interconnect — the point the
                        // bound monitor starts a write's service clock
                        // (W beats carry no uid; FIFO order pairs them
                        // with staged AW subs).
                        self.obs_events.push(ObsEvent {
                            uid: 0,
                            port: Some(port),
                            channel: ObsChannel::W,
                            hop: Hop::TsStaged,
                            cycle: now,
                            ref_cycle: w.issued_at,
                            bytes: w.data.len() as u64,
                            sub_end: true,
                            txn_end: false,
                        });
                    }
                }
                self.w_stage.push(now, w).expect("checked space");
                progress = true;
            } else {
                // Write data is owed (an AW was accepted) but the
                // accelerator is not driving the W channel.
                self.w_starved += 1;
                if self.w_starved >= W_HANG_THRESHOLD {
                    self.w_starved = 0;
                    self.record(
                        now,
                        ViolationKind::HandshakeHang,
                        format!(
                            "W channel starved for {W_HANG_THRESHOLD} cycles with a write pending"
                        ),
                    );
                }
            }
        }
        progress
    }

    fn budget_available(&self) -> bool {
        self.budget_left.is_none_or(|b| b > 0)
    }

    fn consume_budget(&mut self) {
        if let Some(b) = self.budget_left.as_mut() {
            *b -= 1;
        }
        self.txn_this_period += 1;
        self.txn_total += 1;
        self.stats.subs_issued += 1;
    }

    /// Moves split sub-requests into the arbitration stages, enforcing
    /// (in order) the traffic regulator, the reservation budget and the
    /// outstanding limits. Returns `true` on any progress.
    ///
    /// The regulator is checked *ahead of* the budget: a throttled port
    /// neither consumes budget nor counts budget-stall cycles, so
    /// reservation accounting stays meaningful under regulation.
    /// Regulator throttling is recorded as edge-triggered events rather
    /// than stall cycles — see [`crate::regulate`] for why.
    pub fn issue(&mut self, now: Cycle, rt: TsRuntime) -> bool {
        if !rt.enabled {
            return false;
        }
        self.regulator.sync(now, rt.regulator);
        let mut progress = false;
        let mut stalled_by_budget = false;
        let mut throttled = false;
        if !self.ar_split.is_empty()
            && self.read_outstanding < rt.max_outstanding
            && !self.ar_stage.is_full()
        {
            let in_flight = self.read_outstanding + self.write_outstanding;
            if !self.regulator.out_cap_ok(in_flight) || !self.regulator.read_available(now) {
                throttled = true;
            } else if self.budget_available() {
                self.regulator.consume_read(now);
                let sub = self.ar_split.pop_front().expect("checked non-empty");
                if let Some(port) = self.obs_port {
                    self.obs_events.push(ObsEvent {
                        uid: sub.beat.uid,
                        port: Some(port),
                        channel: ObsChannel::Ar,
                        hop: Hop::TsStaged,
                        cycle: now,
                        ref_cycle: sub.beat.issued_at,
                        bytes: sub.beat.total_bytes(),
                        sub_end: sub.final_sub,
                        txn_end: false,
                    });
                }
                self.ar_stage.push(now, sub).expect("checked space");
                self.read_outstanding += 1;
                self.consume_budget();
                progress = true;
            } else {
                stalled_by_budget = true;
            }
        }
        if !self.aw_split.is_empty()
            && self.write_outstanding < rt.max_outstanding
            && !self.aw_stage.is_full()
        {
            let in_flight = self.read_outstanding + self.write_outstanding;
            if !self.regulator.out_cap_ok(in_flight) || !self.regulator.write_available(now) {
                throttled = true;
            } else if self.budget_available() {
                self.regulator.consume_write(now);
                let sub = self.aw_split.pop_front().expect("checked non-empty");
                if let Some(port) = self.obs_port {
                    self.obs_events.push(ObsEvent {
                        uid: sub.beat.uid,
                        port: Some(port),
                        channel: ObsChannel::Aw,
                        hop: Hop::TsStaged,
                        cycle: now,
                        ref_cycle: sub.beat.issued_at,
                        bytes: sub.beat.total_bytes(),
                        sub_end: sub.final_sub,
                        txn_end: false,
                    });
                }
                self.aw_stage.push(now, sub).expect("checked space");
                self.write_outstanding += 1;
                self.consume_budget();
                progress = true;
            } else {
                stalled_by_budget = true;
            }
        }
        if stalled_by_budget {
            self.stats.budget_stall_cycles += 1;
            if !self.overrun_reported {
                self.overrun_reported = true;
                self.record(
                    now,
                    ViolationKind::BudgetOverrun,
                    format!(
                        "issue throttled: reservation budget exhausted after {} sub-transactions",
                        self.txn_this_period
                    ),
                );
            }
        }
        self.regulator.note_throttled(throttled);
        progress
    }

    /// Delivers a read-data beat coming back from the EXBAR, rewriting
    /// the LAST flag so only the final fragment of the original burst
    /// carries it. Returns whether the beat ended a sub-burst.
    ///
    /// The caller must have checked [`EFifo::can_push_r`].
    pub fn deliver_r(
        &mut self,
        now: Cycle,
        mut beat: RBeat,
        final_sub: bool,
        efifo: &mut EFifo,
    ) -> bool {
        let sub_end = beat.last;
        beat.last = final_sub && sub_end;
        self.r_sub_resp = self.r_sub_resp.worst(beat.resp);
        if sub_end && !self.r_sub_resp.is_ok() {
            let kind = if self.r_sub_resp == Resp::DecErr {
                ViolationKind::AddressDecode
            } else {
                ViolationKind::ErrorResponse
            };
            self.record(
                now,
                kind,
                format!("read sub-burst completed with {}", self.r_sub_resp),
            );
            self.err_total = self.err_total.saturating_add(1);
            self.r_sub_resp = Resp::Okay;
        } else if sub_end {
            self.r_sub_resp = Resp::Okay;
        }
        self.stats.bytes_read += beat.data.len() as u64;
        if beat.last {
            self.stats.reads_completed += 1;
            self.read_latency.record(now.saturating_sub(beat.issued_at));
        }
        if let Some(port) = self.obs_port {
            self.obs_events.push(ObsEvent {
                uid: beat.uid,
                port: Some(port),
                channel: ObsChannel::R,
                hop: Hop::Delivered,
                cycle: now,
                ref_cycle: beat.hopped_at,
                bytes: beat.data.len() as u64,
                sub_end,
                txn_end: beat.last,
            });
        }
        let accepted = efifo.push_r(now, beat);
        debug_assert!(accepted, "caller must check can_push_r");
        if sub_end {
            self.read_outstanding = self.read_outstanding.saturating_sub(1);
        }
        sub_end
    }

    /// Delivers a write response coming back from the EXBAR: responses
    /// of intermediate fragments are merged (swallowed); only the final
    /// fragment's response reaches the accelerator.
    ///
    /// The caller must have checked [`EFifo::can_push_b`].
    pub fn deliver_b(&mut self, now: Cycle, mut beat: BBeat, final_sub: bool, efifo: &mut EFifo) {
        self.write_outstanding = self.write_outstanding.saturating_sub(1);
        self.b_merged_resp = self.b_merged_resp.worst(beat.resp);
        if let Some(port) = self.obs_port {
            // Every sub's response is observed (the monitor pops one
            // pending write per event); only the final, merged one is a
            // slave-port B-channel traversal.
            self.obs_events.push(ObsEvent {
                uid: beat.uid,
                port: Some(port),
                channel: ObsChannel::B,
                hop: Hop::Delivered,
                cycle: now,
                ref_cycle: beat.hopped_at,
                bytes: 0,
                sub_end: true,
                txn_end: final_sub,
            });
        }
        if final_sub {
            // The merged response reports the worst outcome across all
            // sub-bursts of the original write (AXI merge rule).
            beat.resp = self.b_merged_resp;
            if !self.b_merged_resp.is_ok() {
                let kind = if self.b_merged_resp == Resp::DecErr {
                    ViolationKind::AddressDecode
                } else {
                    ViolationKind::ErrorResponse
                };
                self.record(
                    now,
                    kind,
                    format!(
                        "write completed with merged response {}",
                        self.b_merged_resp
                    ),
                );
                self.err_total = self.err_total.saturating_add(1);
            }
            self.b_merged_resp = Resp::Okay;
            self.stats.writes_completed += 1;
            self.write_latency
                .record(now.saturating_sub(beat.issued_at));
            let accepted = efifo.push_b(now, beat);
            debug_assert!(accepted, "caller must check can_push_b");
        }
    }
}

mod persist_impls {
    use super::{SubAr, SubAw, TransactionSupervisor, TsRuntime, TsStats};
    use crate::regulate::{CreditRegulator, RegulatorConfig};
    use axi::beat::{ArBeat, AwBeat};
    use axi::checker::Violation;
    use axi::types::Resp;
    use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};
    use sim::ring::Ring;
    use sim::stats::LatencyStat;
    use sim::TimedFifo;

    impl PersistValue for SubAr {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.beat.save_value(w);
            w.put_bool(self.final_sub);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                beat: ArBeat::load_value(r)?,
                final_sub: r.take_bool()?,
            })
        }
    }

    impl PersistValue for SubAw {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.beat.save_value(w);
            w.put_bool(self.final_sub);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                beat: AwBeat::load_value(r)?,
                final_sub: r.take_bool()?,
            })
        }
    }

    impl PersistValue for TsRuntime {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u32(self.nominal);
            w.put_u32(self.max_outstanding);
            w.put_bool(self.enabled);
            w.put_bool(self.quiesced);
            self.regulator.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                nominal: r.take_u32()?,
                max_outstanding: r.take_u32()?,
                enabled: r.take_bool()?,
                quiesced: r.take_bool()?,
                regulator: RegulatorConfig::load_value(r)?,
            })
        }
    }

    impl PersistValue for TsStats {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.reads_completed);
            w.put_u64(self.writes_completed);
            w.put_u64(self.bytes_read);
            w.put_u64(self.bytes_written);
            w.put_u64(self.subs_issued);
            w.put_u64(self.budget_stall_cycles);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                reads_completed: r.take_u64()?,
                writes_completed: r.take_u64()?,
                bytes_read: r.take_u64()?,
                bytes_written: r.take_u64()?,
                subs_issued: r.take_u64()?,
                budget_stall_cycles: r.take_u64()?,
            })
        }
    }

    impl PersistValue for TransactionSupervisor {
        /// Every field is captured, including the observability buffer
        /// (hop events emitted this tick but not yet drained) and the
        /// uid sequence, so restored runs keep allocating the exact
        /// same transaction uids the uninterrupted run would.
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.ar_split.save_value(w);
            self.ar_stage.save_value(w);
            w.put_u32(self.read_outstanding);
            self.aw_split.save_value(w);
            self.aw_stage.save_value(w);
            self.w_sublens.save_value(w);
            w.put_u32(self.w_current_left);
            self.w_orig_lens.save_value(w);
            w.put_u32(self.w_orig_left);
            w.put_u32(self.w_starved);
            self.w_stage.save_value(w);
            w.put_u32(self.write_outstanding);
            self.regulator.save_value(w);
            self.budget_left.save_value(w);
            w.put_u32(self.txn_this_period);
            w.put_u64(self.txn_total);
            w.put_bool(self.overrun_reported);
            self.r_sub_resp.save_value(w);
            self.b_merged_resp.save_value(w);
            self.stats.save_value(w);
            self.read_latency.save_value(w);
            self.write_latency.save_value(w);
            self.violations.save_value(w);
            self.obs_port.save_value(w);
            w.put_u64(self.uid_seq);
            self.obs_events.save_value(w);
            w.put_u64(self.err_total);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                ar_split: Ring::load_value(r)?,
                ar_stage: TimedFifo::load_value(r)?,
                read_outstanding: r.take_u32()?,
                aw_split: Ring::load_value(r)?,
                aw_stage: TimedFifo::load_value(r)?,
                w_sublens: Ring::load_value(r)?,
                w_current_left: r.take_u32()?,
                w_orig_lens: Ring::load_value(r)?,
                w_orig_left: r.take_u32()?,
                w_starved: r.take_u32()?,
                w_stage: TimedFifo::load_value(r)?,
                write_outstanding: r.take_u32()?,
                regulator: CreditRegulator::load_value(r)?,
                budget_left: Option::load_value(r)?,
                txn_this_period: r.take_u32()?,
                txn_total: r.take_u64()?,
                overrun_reported: r.take_bool()?,
                r_sub_resp: Resp::load_value(r)?,
                b_merged_resp: Resp::load_value(r)?,
                stats: TsStats::load_value(r)?,
                read_latency: LatencyStat::load_value(r)?,
                write_latency: LatencyStat::load_value(r)?,
                violations: Vec::<Violation>::load_value(r)?,
                obs_port: Option::load_value(r)?,
                uid_seq: r.take_u64()?,
                obs_events: Vec::load_value(r)?,
                err_total: r.take_u64()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::{AxiId, BurstSize};

    fn rt() -> TsRuntime {
        TsRuntime {
            nominal: 16,
            max_outstanding: 4,
            enabled: true,
            quiesced: false,
            regulator: RegulatorConfig::unlimited(),
        }
    }

    fn efifo() -> EFifo {
        EFifo::new(4, 32, 4)
    }

    #[test]
    fn short_read_not_split() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ef.port
            .ar
            .push(0, ArBeat::new(0, 8, BurstSize::B4))
            .unwrap();
        assert!(ts.ingest(1, &mut ef, rt()));
        ts.issue(1, rt());
        let sub = ts.ar_stage.pop_ready(2).unwrap();
        assert_eq!(sub.beat.len, 8);
        assert!(sub.final_sub);
        assert_eq!(ts.read_outstanding(), 1);
    }

    #[test]
    fn long_read_split_to_nominal() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ef.port
            .ar
            .push(0, ArBeat::new(0, 40, BurstSize::B4).with_tag(9))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        let mut lens = Vec::new();
        let mut finals = Vec::new();
        for now in 1..20 {
            ts.issue(now, rt());
            if let Some(sub) = ts.ar_stage.pop_ready(now) {
                lens.push(sub.beat.len);
                finals.push(sub.final_sub);
                assert_eq!(sub.beat.tag, 9);
            }
        }
        assert_eq!(lens, vec![16, 16, 8]);
        assert_eq!(finals, vec![false, false, true]);
    }

    #[test]
    fn ts_stage_latency_is_one_cycle() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ef.port
            .ar
            .push(0, ArBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        ts.issue(1, rt());
        assert!(ts.ar_stage.pop_ready(1).is_none());
        assert!(ts.ar_stage.pop_ready(2).is_some());
    }

    #[test]
    fn outstanding_limit_blocks_issue() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        let limit = TsRuntime {
            max_outstanding: 1,
            ..rt()
        };
        ef.port
            .ar
            .push(0, ArBeat::new(0, 32, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, limit);
        ts.issue(1, limit);
        assert_eq!(ts.read_outstanding(), 1);
        // Second sub cannot issue until the first completes.
        for now in 2..6 {
            ts.issue(now, limit);
        }
        assert_eq!(ts.read_outstanding(), 1);
        // Complete the first sub-burst.
        ts.ar_stage.pop_ready(2).unwrap();
        let beat = RBeat::new(AxiId(0), vec![0; 4], true);
        ts.deliver_r(10, beat, false, &mut ef);
        assert_eq!(ts.read_outstanding(), 0);
        ts.issue(11, limit);
        assert_eq!(ts.read_outstanding(), 1);
    }

    #[test]
    fn budget_throttles_and_recharges() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ts.recharge(2);
        ef.port
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        for now in 1..10 {
            ts.issue(now, rt());
            ts.ar_stage.pop_ready(now); // keep the stage drained
        }
        // Only 2 of 4 subs issued.
        assert_eq!(ts.txn_this_period(), 2);
        assert_eq!(ts.budget_left(), Some(0));
        assert!(ts.stats().budget_stall_cycles > 0);
        ts.recharge(2);
        for now in 10..20 {
            ts.issue(now, rt());
            ts.ar_stage.pop_ready(now);
        }
        assert_eq!(ts.txn_total(), 4);
    }

    #[test]
    fn unlimited_budget_never_stalls() {
        let mut ts = TransactionSupervisor::new(32);
        ts.recharge(BUDGET_UNLIMITED);
        assert_eq!(ts.budget_left(), None);
        let mut ef = efifo();
        ef.port
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        for now in 1..40 {
            ts.issue(now, rt());
            ts.ar_stage.pop_ready(now);
            // Immediately complete each sub so outstanding never limits.
            if ts.read_outstanding() > 0 {
                let beat = RBeat::new(AxiId(0), vec![0; 4], true);
                ts.deliver_r(now, beat, false, &mut ef);
            }
        }
        assert_eq!(ts.txn_total(), 16);
        assert_eq!(ts.stats().budget_stall_cycles, 0);
    }

    #[test]
    fn regulator_rate_paces_issue_one_per_window() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        // 1 credit per 10-cycle window, burst 1: at most one sub per
        // window regardless of demand (budget unlimited here).
        let reg = TsRuntime {
            regulator: RegulatorConfig {
                rate: 1,
                burst: 1,
                out_cap: crate::regulate::OUT_CAP_UNLIMITED,
                window: 10,
            },
            ..rt()
        };
        ef.port
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        let mut issued_at = Vec::new();
        for now in 0..40 {
            ts.ingest(now, &mut ef, reg);
            let before = ts.txn_total();
            ts.issue(now, reg);
            if ts.txn_total() > before {
                issued_at.push(now);
            }
            if now == 5 {
                // Credit-blocked with pending work: the TS advertises
                // the next refill boundary as its wake-up horizon.
                assert_eq!(ts.regulator_next_refill(now), Some(10));
            }
            ts.ar_stage.pop_ready(now);
            if ts.read_outstanding() > 0 {
                let beat = RBeat::new(AxiId(0), vec![0; 4], true);
                ts.deliver_r(now, beat, false, &mut ef);
            }
        }
        // One sub per refill window: the initial burst credit as soon
        // as the eFIFO presents the request (latency 1), then one per
        // boundary.
        assert_eq!(issued_at, vec![1, 10, 20, 30]);
        // Regulator throttling is not budget stalling.
        assert_eq!(ts.stats().budget_stall_cycles, 0);
        // Edge-triggered: one event per throttled span, not per cycle.
        assert_eq!(ts.throttle_events(), 3);
        // All demand issued: nothing blocked, no horizon.
        assert_eq!(ts.regulator_next_refill(40), None);
    }

    #[test]
    fn regulator_throttling_is_accounted_ahead_of_the_budget() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        let reg = TsRuntime {
            regulator: RegulatorConfig {
                rate: 1,
                burst: 1,
                out_cap: crate::regulate::OUT_CAP_UNLIMITED,
                window: 10,
            },
            ..rt()
        };
        // Reservation budget of 2 per period on top of the rate limit.
        ts.recharge(2);
        ef.port
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        for now in 0..40 {
            ts.ingest(now, &mut ef, reg);
            ts.issue(now, reg);
            ts.ar_stage.pop_ready(now);
            if ts.read_outstanding() > 0 {
                let beat = RBeat::new(AxiId(0), vec![0; 4], true);
                ts.deliver_r(now, beat, false, &mut ef);
            }
        }
        // Credits admit subs at 1/10/20/30 but the budget stops at 2.
        assert_eq!(ts.txn_this_period(), 2);
        // Cycles 2-9 and 11-19 were regulator-throttled (credits
        // exhausted, budget untouched) and must NOT count as budget
        // stalls; cycles 20-39 had a credit but no budget and must.
        assert_eq!(ts.stats().budget_stall_cycles, 20);
        assert_eq!(ts.throttle_events(), 2);
    }

    #[test]
    fn regulator_out_cap_limits_total_in_flight() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        let reg = TsRuntime {
            max_outstanding: 8,
            regulator: RegulatorConfig {
                rate: crate::regulate::RATE_UNLIMITED,
                burst: 1,
                out_cap: 1,
                window: crate::regulate::DEFAULT_WINDOW,
            },
            ..rt()
        };
        ef.port
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        for now in 0..10 {
            ts.ingest(now, &mut ef, reg);
            ts.issue(now, reg);
            ts.ar_stage.pop_ready(now);
        }
        // Nothing completed, so the cap of 1 pins in-flight at 1 even
        // though max_outstanding would admit 8.
        assert_eq!(ts.read_outstanding(), 1);
        assert!(ts.throttle_events() > 0);
        // Not a rate block: no refill horizon is advertised.
        assert_eq!(ts.regulator_next_refill(5), None);
        // Completing the sub re-opens the cap.
        let beat = RBeat::new(AxiId(0), vec![0; 4], true);
        ts.deliver_r(10, beat, false, &mut ef);
        ts.issue(11, reg);
        assert_eq!(ts.read_outstanding(), 1);
    }

    #[test]
    fn unlimited_regulator_leaves_state_byte_identical() {
        // Two supervisors fed identically, one with the regulator
        // explicitly unlimited: every observable counter must match the
        // plain run (the fast-forward byte-identity contract).
        let run = |reg: RegulatorConfig| {
            let mut ts = TransactionSupervisor::new(32);
            let mut ef = efifo();
            let cfg = TsRuntime {
                regulator: reg,
                ..rt()
            };
            ef.port
                .ar
                .push(0, ArBeat::new(0, 64, BurstSize::B4))
                .unwrap();
            for now in 0..30 {
                ts.ingest(now, &mut ef, cfg);
                ts.issue(now, cfg);
                ts.ar_stage.pop_ready(now);
                if ts.read_outstanding() > 0 {
                    let beat = RBeat::new(AxiId(0), vec![0; 4], true);
                    ts.deliver_r(now, beat, false, &mut ef);
                }
            }
            (ts.txn_total(), ts.stats(), ts.throttle_events())
        };
        // Burst/window settings are inert while rate is unlimited: the
        // regulator is inactive and traffic is untouched.
        assert_eq!(
            run(RegulatorConfig::unlimited()),
            run(RegulatorConfig {
                burst: 4,
                window: 7,
                ..RegulatorConfig::unlimited()
            })
        );
    }

    #[test]
    fn write_split_rechunks_w_stream() {
        let mut ts = TransactionSupervisor::new(64);
        let mut ef = efifo();
        let rt8 = TsRuntime { nominal: 8, ..rt() };
        ef.port
            .aw
            .push(0, AwBeat::new(0, 20, BurstSize::B4))
            .unwrap();
        for i in 0..20u32 {
            // HA marks only the final beat.
            ef.port
                .w
                .push(i as u64 / 8, WBeat::new(vec![i as u8; 4], i == 19))
                .unwrap();
        }
        let mut lasts = Vec::new();
        for now in 1..64 {
            ts.ingest(now, &mut ef, rt8);
            if let Some(w) = ts.w_stage.pop_ready(now) {
                lasts.push(w.last);
            }
        }
        assert_eq!(lasts.len(), 20);
        let last_positions: Vec<usize> = lasts
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| l.then_some(i))
            .collect();
        // Sub-bursts of 8, 8, 4 beats.
        assert_eq!(last_positions, vec![7, 15, 19]);
    }

    #[test]
    fn b_merge_emits_single_response() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ef.port
            .aw
            .push(0, AwBeat::new(0, 48, BurstSize::B4).with_tag(3))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        // Three sub-AWs issue.
        for now in 1..10 {
            ts.issue(now, rt());
            ts.aw_stage.pop_ready(now);
        }
        assert_eq!(ts.write_outstanding(), 3);
        // Two intermediate Bs are swallowed; the final one is emitted.
        ts.deliver_b(20, BBeat::new(AxiId(0)).with_tag(3), false, &mut ef);
        ts.deliver_b(21, BBeat::new(AxiId(0)).with_tag(3), false, &mut ef);
        assert!(ef.port.b.pop_ready(30).is_none());
        ts.deliver_b(22, BBeat::new(AxiId(0)).with_tag(3), true, &mut ef);
        assert_eq!(ts.write_outstanding(), 0);
        let b = ef.port.b.pop_ready(30).unwrap();
        assert_eq!(b.tag, 3);
        assert_eq!(ts.stats().writes_completed, 1);
    }

    #[test]
    fn r_merge_rewrites_last_flags() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        // Two sub-bursts of a single original read.
        let mk = |last| RBeat::new(AxiId(0), vec![0; 4], last).with_issued_at(0);
        ts.deliver_r(5, mk(false), false, &mut ef);
        ts.deliver_r(6, mk(true), false, &mut ef); // end of sub 1
        ts.deliver_r(7, mk(false), true, &mut ef);
        ts.deliver_r(8, mk(true), true, &mut ef); // end of original
        let beats: Vec<RBeat> = std::iter::from_fn(|| ef.port.r.pop_ready(20)).collect();
        assert_eq!(beats.len(), 4);
        let lasts: Vec<bool> = beats.iter().map(|b| b.last).collect();
        assert_eq!(lasts, vec![false, false, false, true]);
        assert_eq!(ts.stats().reads_completed, 1);
        assert_eq!(ts.read_latency().count(), 1);
        assert_eq!(ts.read_latency().max(), Some(8));
    }

    #[test]
    fn disabled_ts_does_nothing() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        let disabled = TsRuntime {
            enabled: false,
            ..rt()
        };
        ef.port
            .ar
            .push(0, ArBeat::new(0, 4, BurstSize::B4))
            .unwrap();
        assert!(!ts.ingest(1, &mut ef, disabled));
        assert!(!ts.issue(1, disabled));
        assert!(ts.is_idle());
    }

    #[test]
    fn boundary_4k_crossing_is_reported() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        // 16 beats x 4 bytes starting 0xFC0 ends at 0x1000 exactly: OK.
        ef.port
            .ar
            .push(0, ArBeat::new(0xFC0, 16, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        assert!(!ts.has_violations());
        // 17 beats from 0xFC0 crosses into the next 4 KiB page.
        ef.port
            .ar
            .push(1, ArBeat::new(0xFC0, 17, BurstSize::B4))
            .unwrap();
        // Drain the staged subs so the splitter accepts the next AR.
        for now in 2..40 {
            ts.issue(now, rt());
            if ts.ar_stage.pop_ready(now).is_some() && ts.read_outstanding() > 0 {
                let beat = RBeat::new(AxiId(0), vec![0; 4], true);
                ts.deliver_r(now, beat, false, &mut ef);
            }
            ts.ingest(now, &mut ef, rt());
        }
        let vs = ts.take_violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::Boundary4K);
        assert!(!ts.has_violations());
    }

    #[test]
    fn wlast_mismatch_is_reported() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ef.port
            .aw
            .push(0, AwBeat::new(0, 4, BurstSize::B4))
            .unwrap();
        // LAST asserted one beat early (on beat 2 of 4) and missing on
        // the true final beat: two violations.
        for i in 0..4u32 {
            ef.port.w.push(0, WBeat::new(vec![0; 4], i == 2)).unwrap();
        }
        for now in 1..10 {
            ts.ingest(now, &mut ef, rt());
            ts.w_stage.pop_ready(now);
        }
        let vs = ts.take_violations();
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.kind == ViolationKind::WlastMismatch));
    }

    #[test]
    fn well_formed_wlast_is_silent() {
        let mut ts = TransactionSupervisor::new(64);
        let mut ef = efifo();
        let rt8 = TsRuntime { nominal: 8, ..rt() };
        ef.port
            .aw
            .push(0, AwBeat::new(0, 20, BurstSize::B4))
            .unwrap();
        for i in 0..20u32 {
            ef.port
                .w
                .push(i as u64 / 8, WBeat::new(vec![0; 4], i == 19))
                .unwrap();
        }
        for now in 1..64 {
            ts.ingest(now, &mut ef, rt8);
            ts.w_stage.pop_ready(now);
        }
        assert!(!ts.has_violations());
    }

    #[test]
    fn stalled_w_channel_triggers_hang_report() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ef.port
            .aw
            .push(0, AwBeat::new(0, 4, BurstSize::B4))
            .unwrap();
        // The HA never drives W. The detector fires once per threshold
        // window and re-arms.
        for now in 1..(2 * W_HANG_THRESHOLD as u64 + 2) {
            ts.ingest(now, &mut ef, rt());
        }
        let vs = ts.take_violations();
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().all(|v| v.kind == ViolationKind::HandshakeHang));
    }

    #[test]
    fn budget_overrun_reported_once_per_period() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ts.recharge(1);
        ef.port
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        for now in 1..10 {
            ts.issue(now, rt());
            ts.ar_stage.pop_ready(now);
        }
        let vs = ts.take_violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::BudgetOverrun);
        // A recharge re-arms the reporter for the next period.
        ts.recharge(1);
        for now in 10..20 {
            ts.issue(now, rt());
            ts.ar_stage.pop_ready(now);
        }
        let vs = ts.take_violations();
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn b_merge_surfaces_worst_response() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        ef.port
            .aw
            .push(0, AwBeat::new(0, 48, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        for now in 1..10 {
            ts.issue(now, rt());
            ts.aw_stage.pop_ready(now);
        }
        use axi::types::Resp;
        // Middle sub-burst hits a faulty slave; the merged B must carry
        // SLVERR even though the final sub-burst succeeded.
        ts.deliver_b(20, BBeat::new(AxiId(0)), false, &mut ef);
        ts.deliver_b(
            21,
            BBeat::new(AxiId(0)).with_resp(Resp::SlvErr),
            false,
            &mut ef,
        );
        ts.deliver_b(22, BBeat::new(AxiId(0)), true, &mut ef);
        let b = ef.port.b.pop_ready(30).unwrap();
        assert_eq!(b.resp, Resp::SlvErr);
        let vs = ts.take_violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::ErrorResponse);
        // The merge state resets for the next write.
        ef.port
            .aw
            .push(30, AwBeat::new(0, 8, BurstSize::B4))
            .unwrap();
        ts.ingest(31, &mut ef, rt());
        for now in 31..35 {
            ts.issue(now, rt());
            ts.aw_stage.pop_ready(now);
        }
        ts.deliver_b(40, BBeat::new(AxiId(0)), true, &mut ef);
        assert_eq!(ef.port.b.pop_ready(50).unwrap().resp, Resp::Okay);
        assert!(!ts.has_violations());
    }

    #[test]
    fn r_error_classified_by_kind() {
        use axi::types::Resp;
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        let mk = |last, resp| {
            RBeat::new(AxiId(0), vec![0; 4], last)
                .with_issued_at(0)
                .with_resp(resp)
        };
        // A DECERR read maps to an address-decode violation.
        ts.deliver_r(5, mk(false, Resp::Okay), true, &mut ef);
        ts.deliver_r(6, mk(true, Resp::DecErr), true, &mut ef);
        // A SLVERR read maps to a generic error-response violation.
        ts.deliver_r(7, mk(true, Resp::SlvErr), true, &mut ef);
        let vs = ts.take_violations();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].kind, ViolationKind::AddressDecode);
        assert_eq!(vs[1].kind, ViolationKind::ErrorResponse);
    }

    #[test]
    fn quiesce_blocks_new_admissions_but_drains_w() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        // One write accepted before the quiesce; its W data arrives late.
        ef.port
            .aw
            .push(0, AwBeat::new(0, 4, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        let q = TsRuntime {
            quiesced: true,
            ..rt()
        };
        // New requests are refused while quiesced...
        ef.port
            .ar
            .push(2, ArBeat::new(0, 4, BurstSize::B4))
            .unwrap();
        ts.ingest(3, &mut ef, q);
        assert!(ts.ar_stage.is_empty());
        ts.issue(3, q);
        assert!(ts.ar_stage.is_empty(), "no AR admitted under quiesce");
        // ...but the owed W stream of the accepted write keeps flowing.
        for i in 0..4u32 {
            ef.port.w.push(3, WBeat::new(vec![0; 4], i == 3)).unwrap();
        }
        let mut w_seen = 0;
        for now in 4..12 {
            ts.ingest(now, &mut ef, q);
            if ts.w_stage.pop_ready(now).is_some() {
                w_seen += 1;
            }
        }
        assert_eq!(w_seen, 4, "owed write data drains under quiesce");
        // Releasing the quiesce admits the parked AR.
        ts.ingest(20, &mut ef, rt());
        ts.issue(20, rt());
        assert!(ts.ar_stage.pop_ready(21).is_some());
    }

    #[test]
    fn force_flush_drops_pre_grant_state_and_counts_it() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        // A 64-beat read splits into 4 subs; stage 2 (TimedFifo depth),
        // leave 2 in the split queue.
        ef.port
            .ar
            .push(0, ArBeat::new(0, 64, BurstSize::B4))
            .unwrap();
        ts.ingest(1, &mut ef, rt());
        ts.issue(1, rt());
        ts.issue(2, rt());
        assert_eq!(ts.read_outstanding(), 2);
        // A write with its data buffered but not yet granted.
        ef.port
            .aw
            .push(2, AwBeat::new(0x100, 4, BurstSize::B4))
            .unwrap();
        for i in 0..4u32 {
            ef.port.w.push(2, WBeat::new(vec![0; 4], i == 3)).unwrap();
        }
        for now in 3..8 {
            ts.ingest(now, &mut ef, rt());
        }
        ts.issue(8, rt());
        assert_eq!(ts.write_outstanding(), 1);
        assert!(!ts.is_idle());
        // 2 split ARs + 2 staged ARs + 1 staged AW dropped.
        let dropped = ts.force_flush(10);
        assert_eq!(dropped, 5);
        assert_eq!(ts.read_outstanding(), 0);
        assert_eq!(ts.write_outstanding(), 0);
        assert!(ts.is_idle(), "flushed TS holds no state");
    }

    #[test]
    fn fixed_bursts_pass_unsplit() {
        let mut ts = TransactionSupervisor::new(32);
        let mut ef = efifo();
        let mut ar = ArBeat::new(0x100, 64, BurstSize::B4);
        ar.burst = BurstKind::Fixed;
        ef.port.ar.push(0, ar).unwrap();
        ts.ingest(1, &mut ef, rt());
        ts.issue(1, rt());
        let sub = ts.ar_stage.pop_ready(2).unwrap();
        assert_eq!(sub.beat.len, 64);
        assert!(sub.final_sub);
    }
}
