//! The central unit: synchronous reservation-period management.
//!
//! Paper §V-B: "the reservation period is recharged for all the TS
//! modules by the central unit in a synchronous manner". Every `PERIOD`
//! cycles the central unit reloads each port's budget counter from the
//! register file and clears the per-period transaction counters.

use sim::Cycle;

use crate::regfile::RegFile;
use crate::supervisor::TransactionSupervisor;

/// Periodic budget-recharge logic shared by all TS modules.
#[derive(Debug, Clone, Copy)]
pub struct CentralUnit {
    next_boundary: Cycle,
    periods_elapsed: u64,
}

impl CentralUnit {
    /// Creates a central unit that recharges immediately on the first
    /// tick (cycle 0 starts the first reservation period).
    pub fn new() -> Self {
        Self {
            next_boundary: 0,
            periods_elapsed: 0,
        }
    }

    /// Number of completed recharges (period boundaries crossed).
    pub fn periods_elapsed(&self) -> u64 {
        self.periods_elapsed
    }

    /// Cycle of the next period boundary.
    pub fn next_boundary(&self) -> Cycle {
        self.next_boundary
    }

    /// Recharges all budgets if a period boundary has been reached.
    /// Returns `true` when a recharge happened.
    pub fn tick(
        &mut self,
        now: Cycle,
        regfile: &mut RegFile,
        supervisors: &mut [TransactionSupervisor],
    ) -> bool {
        if now < self.next_boundary {
            return false;
        }
        for (i, ts) in supervisors.iter_mut().enumerate() {
            ts.recharge(regfile.port(i).budget);
        }
        regfile.recharge();
        self.periods_elapsed += 1;
        self.next_boundary = now + regfile.period() as Cycle;
        true
    }
}

impl Default for CentralUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_recharges() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(2);
        rf.set_budget(0, 5);
        let mut ts = vec![TransactionSupervisor::new(8), TransactionSupervisor::new(8)];
        assert!(cu.tick(0, &mut rf, &mut ts));
        assert_eq!(ts[0].budget_left(), Some(5));
        assert_eq!(ts[1].budget_left(), None); // unlimited
        assert_eq!(cu.periods_elapsed(), 1);
        assert_eq!(cu.next_boundary(), rf.period() as u64);
    }

    #[test]
    fn recharge_happens_exactly_at_period() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(1);
        rf.set_period(100);
        rf.set_budget(0, 3);
        let mut ts = vec![TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        for now in 1..100 {
            assert!(!cu.tick(now, &mut rf, &mut ts), "cycle {now}");
        }
        assert!(cu.tick(100, &mut rf, &mut ts));
        assert_eq!(cu.periods_elapsed(), 2);
    }

    #[test]
    fn period_change_applies_at_next_boundary() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(1);
        rf.set_period(10);
        let mut ts = vec![TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        rf.set_period(50); // runtime reconfiguration
        assert!(cu.tick(10, &mut rf, &mut ts));
        assert_eq!(cu.next_boundary(), 60);
    }

    #[test]
    fn recharge_clears_regfile_period_counters() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(1);
        rf.port_mut(0).txn_this_period = 7;
        let mut ts = vec![TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        assert_eq!(rf.port(0).txn_this_period, 0);
    }
}
