//! The central unit: synchronous reservation-period management.
//!
//! Paper §V-B: "the reservation period is recharged for all the TS
//! modules by the central unit in a synchronous manner". Every `PERIOD`
//! cycles the central unit reloads each port's budget counter from the
//! register file and clears the per-period transaction counters.

use sim::Cycle;

use crate::regfile::{RegFile, BUDGET_UNLIMITED};
use crate::supervisor::TransactionSupervisor;

/// Periodic budget-recharge logic shared by all TS modules.
#[derive(Debug, Clone, Copy)]
pub struct CentralUnit {
    next_boundary: Cycle,
    periods_elapsed: u64,
}

impl CentralUnit {
    /// Creates a central unit that recharges immediately on the first
    /// tick (cycle 0 starts the first reservation period).
    pub fn new() -> Self {
        Self {
            next_boundary: 0,
            periods_elapsed: 0,
        }
    }

    /// Number of completed recharges (period boundaries crossed).
    pub fn periods_elapsed(&self) -> u64 {
        self.periods_elapsed
    }

    /// Cycle of the next period boundary.
    pub fn next_boundary(&self) -> Cycle {
        self.next_boundary
    }

    /// Event-horizon contract for fast-forward scheduling: the next
    /// period boundary, but only while crossing it would actually
    /// change state — i.e. any port has a finite programmed budget, a
    /// finite budget counter still armed from an earlier program, or a
    /// nonzero per-period transaction count that the recharge would
    /// clear (register-visible through `TXN_PERIOD`). When every port
    /// is unlimited and idle the recharge is a pure no-op and the
    /// boundary may be skipped; [`Self::tick`] catches up on skipped
    /// boundaries without drifting off the period grid.
    ///
    /// Surfacing the boundary whenever a finite budget exists is what
    /// keeps tight-budget runs byte-identical between the naive and
    /// fast-forward schedulers: with every component reporting a far
    /// horizon, a fast-forward jump must still land on the recharge
    /// point or issued-transaction counts would diverge.
    pub fn boundary_horizon(
        &self,
        regfile: &RegFile,
        supervisors: &[TransactionSupervisor],
    ) -> Option<Cycle> {
        let armed = (0..regfile.num_ports()).any(|i| {
            regfile.port(i).budget != BUDGET_UNLIMITED
                || supervisors[i].budget_left().is_some()
                || supervisors[i].txn_this_period() != 0
                || regfile.port(i).txn_this_period != 0
        });
        armed.then_some(self.next_boundary)
    }

    /// Recharges all budgets if a period boundary has been reached.
    /// Returns `true` when a recharge happened.
    ///
    /// A tick landing past several boundaries (legal only when
    /// [`Self::boundary_horizon`] reported `None` for the skipped span)
    /// performs one recharge and accounts for every crossed boundary,
    /// keeping `next_boundary` on the same period grid a cycle-by-cycle
    /// run would produce.
    pub fn tick(
        &mut self,
        now: Cycle,
        regfile: &mut RegFile,
        supervisors: &mut [TransactionSupervisor],
    ) -> bool {
        if now < self.next_boundary {
            return false;
        }
        let period = Cycle::from(regfile.period().max(1));
        let crossings = (now - self.next_boundary) / period + 1;
        for (i, ts) in supervisors.iter_mut().enumerate() {
            ts.recharge(regfile.port(i).budget);
        }
        regfile.recharge();
        self.periods_elapsed += crossings;
        self.next_boundary += crossings * period;
        true
    }
}

impl Default for CentralUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl sim::persist::PersistValue for CentralUnit {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u64(self.next_boundary);
        w.put_u64(self.periods_elapsed);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            next_boundary: r.take_u64()?,
            periods_elapsed: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_recharges() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(2);
        rf.set_budget(0, 5);
        let mut ts = vec![TransactionSupervisor::new(8), TransactionSupervisor::new(8)];
        assert!(cu.tick(0, &mut rf, &mut ts));
        assert_eq!(ts[0].budget_left(), Some(5));
        assert_eq!(ts[1].budget_left(), None); // unlimited
        assert_eq!(cu.periods_elapsed(), 1);
        assert_eq!(cu.next_boundary(), rf.period() as u64);
    }

    #[test]
    fn recharge_happens_exactly_at_period() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(1);
        rf.set_period(100);
        rf.set_budget(0, 3);
        let mut ts = vec![TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        for now in 1..100 {
            assert!(!cu.tick(now, &mut rf, &mut ts), "cycle {now}");
        }
        assert!(cu.tick(100, &mut rf, &mut ts));
        assert_eq!(cu.periods_elapsed(), 2);
    }

    #[test]
    fn period_change_applies_at_next_boundary() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(1);
        rf.set_period(10);
        let mut ts = vec![TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        rf.set_period(50); // runtime reconfiguration
        assert!(cu.tick(10, &mut rf, &mut ts));
        assert_eq!(cu.next_boundary(), 60);
    }

    #[test]
    fn boundary_horizon_surfaced_only_while_reservation_is_armed() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(2);
        rf.set_period(100);
        let mut ts = vec![TransactionSupervisor::new(8), TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        // All ports unlimited and idle: the recharge is a no-op, the
        // boundary may be skipped.
        assert_eq!(cu.boundary_horizon(&rf, &ts), None);
        // A finite programmed budget arms the horizon immediately, even
        // before the next recharge loads it into the TS.
        rf.set_budget(1, 4);
        assert_eq!(cu.boundary_horizon(&rf, &ts), Some(100));
        // Returning to unlimited: the TS-side counter from the previous
        // recharge still needs one more boundary to clear.
        cu.tick(100, &mut rf, &mut ts);
        rf.set_budget(1, BUDGET_UNLIMITED);
        assert_eq!(ts[1].budget_left(), Some(4));
        assert_eq!(cu.boundary_horizon(&rf, &ts), Some(200));
        cu.tick(200, &mut rf, &mut ts);
        assert_eq!(cu.boundary_horizon(&rf, &ts), None);
        // A nonzero per-period count (register-visible TXN_PERIOD) also
        // pins the boundary: the recharge that clears it is observable.
        rf.port_mut(0).txn_this_period = 3;
        assert_eq!(cu.boundary_horizon(&rf, &ts), Some(300));
    }

    #[test]
    fn catch_up_after_skipped_boundaries_stays_on_the_period_grid() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(1);
        rf.set_period(100);
        let mut ts = vec![TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        // A fast-forward jump lands at cycle 370, past boundaries 100,
        // 200 and 300: one recharge, three boundaries accounted, and
        // the next boundary back on the grid (400, not 470).
        assert!(cu.tick(370, &mut rf, &mut ts));
        assert_eq!(cu.periods_elapsed(), 4);
        assert_eq!(cu.next_boundary(), 400);
        assert!(!cu.tick(399, &mut rf, &mut ts));
        assert!(cu.tick(400, &mut rf, &mut ts));
    }

    #[test]
    fn recharge_clears_regfile_period_counters() {
        let mut cu = CentralUnit::new();
        let mut rf = RegFile::new(1);
        rf.port_mut(0).txn_this_period = 7;
        let mut ts = vec![TransactionSupervisor::new(8)];
        cu.tick(0, &mut rf, &mut ts);
        assert_eq!(rf.port(0).txn_this_period, 0);
    }
}
