//! Transaction-level observability: hop events, a metrics registry and
//! bound-violation records.
//!
//! The paper's central claim is *predictability* — fixed per-channel
//! propagation latencies (Fig. 3a) and an analyzable worst-case service
//! bound (§V-B). This module supplies the vocabulary that turns the
//! claim into a continuously checked runtime property:
//!
//! * every transaction accepted by an observed interconnect gets a
//!   unique `uid` (stamped on its address beat and propagated by burst
//!   splitting and by the memory controller onto R/B responses);
//! * the pipeline stages emit [`ObsEvent`]s as the transaction crosses
//!   each hop (ingest, staging, crossbar grant, master port, delivery);
//! * a [`MetricsRegistry`] folds the event stream into per-port,
//!   per-channel latency/histogram/bandwidth aggregates plus
//!   queue-occupancy gauges, and keeps per-transaction hop histories;
//! * a bound monitor (in the `hyperconnect` crate, where the analytical
//!   model lives) cross-checks the same stream against the closed-form
//!   bounds and files [`BoundViolation`]s with full hop history.
//!
//! Everything here is plain data: the event producers buffer events
//! internally and the interconnect drains them once per cycle, so the
//! whole system stays `Send` and works unchanged under both the naive
//! and the fast-forward scheduler (events only occur on progress cycles,
//! which the fast-forward scheduler never skips).

use std::collections::{BTreeMap, VecDeque};

use sim::stats::{BandwidthMeter, Gauge, Histogram, LatencyStat};
use sim::Cycle;

/// Latency-histogram bucket width (cycles) used by [`ChannelMetrics`].
pub const HIST_BUCKET_WIDTH: u64 = 8;
/// Latency-histogram bucket count used by [`ChannelMetrics`]; samples at
/// or above `HIST_BUCKET_WIDTH * HIST_BUCKETS` land in the explicit
/// overflow bucket.
pub const HIST_BUCKETS: usize = 64;
/// How many completed per-transaction hop histories the registry
/// retains (a ring of the most recent completions).
pub const COMPLETED_RING: usize = 32;

/// The five AXI channels, as seen by the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsChannel {
    /// Read-address channel.
    Ar,
    /// Write-address channel.
    Aw,
    /// Write-data channel.
    W,
    /// Read-data channel.
    R,
    /// Write-response channel.
    B,
}

impl ObsChannel {
    /// Lower-case channel name (JSON key).
    pub fn name(self) -> &'static str {
        match self {
            ObsChannel::Ar => "ar",
            ObsChannel::Aw => "aw",
            ObsChannel::W => "w",
            ObsChannel::R => "r",
            ObsChannel::B => "b",
        }
    }
}

/// A pipeline hop a transaction (or one of its sub-transactions) can
/// cross. Hops are emitted in this order for the request path and in
/// reverse for responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// The originating master pushed the beat into the slave port
    /// (reconstructed from the beat's `issued_at` stamp).
    Issued,
    /// The Transaction Supervisor popped the request from the slave
    /// eFIFO (uid assignment point).
    TsAccepted,
    /// A sub-transaction entered the TS issue stage (reservation and
    /// outstanding checks passed — the reference point for the service
    /// bound).
    TsStaged,
    /// The EXBAR arbiter granted the sub-transaction.
    ExbarGranted,
    /// The beat was pushed into the master eFIFO toward memory.
    MemVisible,
    /// The memory controller emitted the response beat (reconstructed
    /// from the response's `hopped_at` stamp).
    MemResponded,
    /// The response was delivered back into the slave port.
    Delivered,
    /// The sub-transaction was force-flushed by a blown quiescent-drain
    /// deadline and will never complete (dropped-transaction
    /// accounting; `sub_end` marks drops that had already been staged).
    Dropped,
}

impl Hop {
    /// Short hop name for rendering violations and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Hop::Issued => "issued",
            Hop::TsAccepted => "ts_accepted",
            Hop::TsStaged => "ts_staged",
            Hop::ExbarGranted => "exbar_granted",
            Hop::MemVisible => "mem_visible",
            Hop::MemResponded => "mem_responded",
            Hop::Delivered => "delivered",
            Hop::Dropped => "dropped",
        }
    }
}

/// One timestamped hop in a transaction's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopStamp {
    /// Which hop was crossed.
    pub hop: Hop,
    /// On which channel.
    pub channel: ObsChannel,
    /// Cycle of the crossing.
    pub cycle: Cycle,
}

/// One observability event, emitted by a pipeline stage when a beat
/// crosses a hop. Producers buffer these internally; the owning
/// interconnect drains them once per tick into its [`MetricsRegistry`]
/// and bound monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Observability transaction ID (0 only for W-data events, whose
    /// beats carry no uid; those events carry an explicit `port`).
    pub uid: u64,
    /// Slave port the transaction entered through, when the emitting
    /// stage knows it (`None` at the shared master port, where the
    /// registry resolves the port via `uid`).
    pub port: Option<usize>,
    /// Channel the beat travelled on.
    pub channel: ObsChannel,
    /// Hop that was crossed.
    pub hop: Hop,
    /// Cycle the beat was pushed at this hop (it becomes visible at the
    /// hop's output one queue-latency later).
    pub cycle: Cycle,
    /// The measurement reference carried by the beat: `issued_at` for
    /// request channels, `hopped_at` for response channels.
    pub ref_cycle: Cycle,
    /// Payload bytes moved by this beat (0 for pure control hops).
    pub bytes: u64,
    /// Whether this event completes one sub-transaction.
    pub sub_end: bool,
    /// Whether this event completes the whole (pre-split) transaction.
    pub txn_end: bool,
}

/// Per-transaction record: identity, totals and the hop history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Observability transaction ID.
    pub uid: u64,
    /// Slave port of origin.
    pub port: usize,
    /// Write (AW/W/B) or read (AR/R) transaction.
    pub is_write: bool,
    /// Cycle the master issued the address beat.
    pub issued_at: Cycle,
    /// Cycle the response completed at the slave port (output-visible),
    /// `None` while in flight.
    pub completed_at: Option<Cycle>,
    /// Total payload bytes of the burst.
    pub bytes: u64,
    /// Timestamped hops crossed so far, in order.
    pub hops: Vec<HopStamp>,
}

/// Latency + distribution + bandwidth aggregate for one channel of one
/// port.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelMetrics {
    /// Min/max/mean of the channel's observed latency.
    pub latency: LatencyStat,
    /// Latency distribution (bucket width [`HIST_BUCKET_WIDTH`]).
    pub histogram: Histogram,
    /// Payload bytes moved over the channel.
    pub bandwidth: BandwidthMeter,
}

impl Default for ChannelMetrics {
    fn default() -> Self {
        Self {
            latency: LatencyStat::new(),
            histogram: Histogram::new(HIST_BUCKET_WIDTH, HIST_BUCKETS),
            bandwidth: BandwidthMeter::new(),
        }
    }
}

impl ChannelMetrics {
    /// Records one channel traversal: `latency` cycles, moving `bytes`
    /// payload bytes, completing at cycle `now`.
    pub fn record(&mut self, now: Cycle, latency: u64, bytes: u64) {
        self.latency.record(latency);
        self.histogram.record(latency);
        if bytes > 0 {
            self.bandwidth.record(now, bytes);
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"overflow\":{},\"bytes\":{}}}",
            self.latency.count(),
            json_opt_u64(self.latency.min()),
            json_opt_u64(self.latency.max()),
            json_opt_f64(self.latency.mean()),
            json_opt_u64(self.histogram.quantile(0.5)),
            json_opt_u64(self.histogram.quantile(0.99)),
            self.histogram.overflow(),
            self.bandwidth.bytes(),
        )
    }
}

/// Metrics of one port's credit regulator (QoS traffic regulation).
/// Present only on ports with an active regulator so the flat schema
/// stays byte-identical when regulation is disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegulatorMetrics {
    /// Throttle events: rising edges of the regulator's blocked state
    /// (credit exhaustion or outstanding-transaction cap).
    pub throttle_events: u64,
    /// Stored (banked) read-lane credits. Stored — not effective —
    /// credits keep the gauge scheduler-invariant: stored state only
    /// changes at cycles every scheduler executes.
    pub read_credits: Gauge,
    /// Stored write-lane credits.
    pub write_credits: Gauge,
}

impl RegulatorMetrics {
    fn json(&self) -> String {
        format!(
            "{{\"throttle_events\":{},\
             \"read_credits\":{{\"current\":{},\"peak\":{}}},\
             \"write_credits\":{{\"current\":{},\"peak\":{}}}}}",
            self.throttle_events,
            self.read_credits.current(),
            self.read_credits.peak(),
            self.write_credits.current(),
            self.write_credits.peak(),
        )
    }
}

/// All metrics of one slave port.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PortMetrics {
    /// Read-address channel (issue to master-port-visible).
    pub ar: ChannelMetrics,
    /// Write-address channel (issue to master-port-visible).
    pub aw: ChannelMetrics,
    /// Write-data channel (issue to master-port-visible).
    pub w: ChannelMetrics,
    /// Read-data channel (memory emit to slave-port-visible).
    pub r: ChannelMetrics,
    /// Write-response channel (memory emit to slave-port-visible).
    pub b: ChannelMetrics,
    /// End-to-end read transactions: issue to last data visible.
    pub read_txns: LatencyStat,
    /// End-to-end write transactions: issue to response visible.
    pub write_txns: LatencyStat,
    /// Slave eFIFO occupancy (sum over the five channel queues).
    pub efifo_occupancy: Gauge,
    /// Credit-regulator metrics; `None` while the port is unregulated
    /// (the JSON snapshot then omits the section entirely).
    pub regulator: Option<RegulatorMetrics>,
}

impl PortMetrics {
    fn channel_mut(&mut self, c: ObsChannel) -> &mut ChannelMetrics {
        match c {
            ObsChannel::Ar => &mut self.ar,
            ObsChannel::Aw => &mut self.aw,
            ObsChannel::W => &mut self.w,
            ObsChannel::R => &mut self.r,
            ObsChannel::B => &mut self.b,
        }
    }

    /// Read-only access to one channel's metrics.
    pub fn channel(&self, c: ObsChannel) -> &ChannelMetrics {
        match c {
            ObsChannel::Ar => &self.ar,
            ObsChannel::Aw => &self.aw,
            ObsChannel::W => &self.w,
            ObsChannel::R => &self.r,
            ObsChannel::B => &self.b,
        }
    }
}

/// Aggregates the [`ObsEvent`] stream of one interconnect into per-port
/// metrics and per-transaction hop histories.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    ports: Vec<PortMetrics>,
    master_efifo_occupancy: Gauge,
    inflight: BTreeMap<u64, TxnRecord>,
    completed: VecDeque<TxnRecord>,
    /// Sub-transactions force-flushed by blown drain deadlines.
    dropped_subs: u64,
    /// Transactions abandoned by a force-flush (tracked in flight when
    /// their first sub was dropped).
    dropped_txns: u64,
    /// Namespace label distinguishing this registry from other
    /// interconnect instances of the same model in one topology (empty
    /// until assigned, e.g. by `TopologyBuilder::build`).
    instance: String,
}

impl MetricsRegistry {
    /// Creates an empty registry for `num_ports` slave ports.
    pub fn new(num_ports: usize) -> Self {
        Self {
            ports: (0..num_ports).map(|_| PortMetrics::default()).collect(),
            ..Self::default()
        }
    }

    /// Assigns the instance namespace label (see
    /// [`MetricsRegistry::instance`]).
    pub fn set_instance(&mut self, label: impl Into<String>) {
        self.instance = label.into();
    }

    /// The instance namespace label — the topology node label of the
    /// interconnect owning this registry, or `""` when the registry
    /// lives outside a topology. Multi-interconnect snapshots key their
    /// per-instance sections on it so two `"HyperConnect"`s never
    /// collide.
    pub fn instance(&self) -> &str {
        &self.instance
    }

    /// Number of slave ports tracked.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Metrics of port `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn port(&self, i: usize) -> &PortMetrics {
        &self.ports[i]
    }

    /// Records one channel-latency sample directly, without an event or
    /// per-transaction record — the path used by interconnect models
    /// that do not stamp uids (e.g. the SmartConnect baseline, whose
    /// closed-source internals expose only boundary-visible latencies).
    pub fn record_channel(
        &mut self,
        port: usize,
        channel: ObsChannel,
        now: Cycle,
        latency: u64,
        bytes: u64,
    ) {
        self.ports[port]
            .channel_mut(channel)
            .record(now, latency, bytes);
    }

    /// Updates the slave eFIFO occupancy gauge of port `i` (idempotent,
    /// fast-forward-safe).
    pub fn set_efifo_occupancy(&mut self, i: usize, level: u64) {
        self.ports[i].efifo_occupancy.set(level);
    }

    /// Updates port `i`'s credit-regulator metrics: cumulative throttle
    /// events and the stored per-lane credit levels (idempotent,
    /// fast-forward-safe). Instantiates the optional section on first
    /// call; unregulated ports never allocate it.
    pub fn set_regulator(&mut self, i: usize, events: u64, read: u64, write: u64) {
        let reg = self.ports[i]
            .regulator
            .get_or_insert_with(RegulatorMetrics::default);
        reg.throttle_events = events;
        reg.read_credits.set(read);
        reg.write_credits.set(write);
    }

    /// Updates the master eFIFO occupancy gauge.
    pub fn set_master_occupancy(&mut self, level: u64) {
        self.master_efifo_occupancy.set(level);
    }

    /// The master eFIFO occupancy gauge.
    pub fn master_occupancy(&self) -> Gauge {
        self.master_efifo_occupancy
    }

    /// Transactions currently in flight (accepted, not yet completed).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// The most recently completed transactions (up to
    /// [`COMPLETED_RING`]), oldest first.
    pub fn completed(&self) -> impl Iterator<Item = &TxnRecord> {
        self.completed.iter()
    }

    /// The hop history of transaction `uid`, in flight or recently
    /// completed; empty if unknown.
    pub fn hops_of(&self, uid: u64) -> Vec<HopStamp> {
        if let Some(rec) = self.inflight.get(&uid) {
            return rec.hops.clone();
        }
        self.completed
            .iter()
            .rev()
            .find(|r| r.uid == uid)
            .map(|r| r.hops.clone())
            .unwrap_or_default()
    }

    /// Folds one event into the aggregates and hop histories.
    ///
    /// Channel-latency convention: a beat pushed at cycle `c` becomes
    /// visible at the hop's output at `c + 1` (every eFIFO boundary is a
    /// one-cycle register), so the recorded latency is
    /// `(c + 1) - ref_cycle` — exactly the quantity the paper reports in
    /// Fig. 3(a).
    pub fn on_event(&mut self, ev: &ObsEvent) {
        match ev.hop {
            Hop::TsAccepted => {
                let port = ev.port.unwrap_or(0);
                let rec = TxnRecord {
                    uid: ev.uid,
                    port,
                    is_write: ev.channel == ObsChannel::Aw,
                    issued_at: ev.ref_cycle,
                    completed_at: None,
                    bytes: ev.bytes,
                    hops: vec![
                        HopStamp {
                            hop: Hop::Issued,
                            channel: ev.channel,
                            cycle: ev.ref_cycle,
                        },
                        HopStamp {
                            hop: Hop::TsAccepted,
                            channel: ev.channel,
                            cycle: ev.cycle,
                        },
                    ],
                };
                self.inflight.insert(ev.uid, rec);
            }
            Hop::TsStaged | Hop::ExbarGranted => {
                self.append_hop(ev);
            }
            Hop::MemVisible => {
                let visible = ev.cycle + 1;
                match ev.channel {
                    ObsChannel::W => {
                        // W beats carry no uid; the emitting stage knows
                        // the port from its write route instead.
                        if let Some(p) = ev.port {
                            self.ports[p].channel_mut(ObsChannel::W).record(
                                visible,
                                visible.saturating_sub(ev.ref_cycle),
                                ev.bytes,
                            );
                        }
                    }
                    ch => {
                        self.append_hop(ev);
                        if let Some(rec) = self.inflight.get(&ev.uid) {
                            let port = rec.port;
                            self.ports[port].channel_mut(ch).record(
                                visible,
                                visible.saturating_sub(ev.ref_cycle),
                                ev.bytes,
                            );
                        }
                    }
                }
            }
            Hop::Delivered => {
                let visible = ev.cycle + 1;
                // Reconstruct the memory-emit hop from the response
                // beat's `hopped_at` stamp the first time this sub's
                // response shows up.
                self.append_mem_responded(ev);
                self.append_hop(ev);
                let port = ev
                    .port
                    .or_else(|| self.inflight.get(&ev.uid).map(|r| r.port));
                if let Some(p) = port {
                    // Merged (non-final) B responses never reach the
                    // slave port; only delivered beats count as channel
                    // traffic.
                    let reaches_port = ev.channel != ObsChannel::B || ev.txn_end;
                    if reaches_port {
                        self.ports[p].channel_mut(ev.channel).record(
                            visible,
                            visible.saturating_sub(ev.ref_cycle),
                            ev.bytes,
                        );
                    }
                }
                if ev.txn_end {
                    self.complete(ev, visible);
                }
            }
            Hop::Dropped => {
                self.dropped_subs += 1;
                if self.inflight.remove(&ev.uid).is_some() {
                    self.dropped_txns += 1;
                }
            }
            Hop::Issued | Hop::MemResponded => {}
        }
    }

    /// Sub-transactions force-flushed by blown drain deadlines.
    pub fn dropped_subs(&self) -> u64 {
        self.dropped_subs
    }

    /// Transactions abandoned by a force-flush (their remaining subs
    /// never complete; the record is removed from the in-flight table).
    pub fn dropped_txns(&self) -> u64 {
        self.dropped_txns
    }

    fn append_hop(&mut self, ev: &ObsEvent) {
        if let Some(rec) = self.inflight.get_mut(&ev.uid) {
            rec.hops.push(HopStamp {
                hop: ev.hop,
                channel: ev.channel,
                cycle: ev.cycle,
            });
        }
    }

    fn append_mem_responded(&mut self, ev: &ObsEvent) {
        if let Some(rec) = self.inflight.get_mut(&ev.uid) {
            let already = rec
                .hops
                .iter()
                .any(|h| h.hop == Hop::MemResponded && h.cycle == ev.ref_cycle);
            if !already {
                rec.hops.push(HopStamp {
                    hop: Hop::MemResponded,
                    channel: ev.channel,
                    cycle: ev.ref_cycle,
                });
            }
        }
    }

    fn complete(&mut self, ev: &ObsEvent, visible: Cycle) {
        if let Some(mut rec) = self.inflight.remove(&ev.uid) {
            rec.completed_at = Some(visible);
            let latency = visible.saturating_sub(rec.issued_at);
            let stat = if rec.is_write {
                &mut self.ports[rec.port].write_txns
            } else {
                &mut self.ports[rec.port].read_txns
            };
            stat.record(latency);
            if self.completed.len() == COMPLETED_RING {
                self.completed.pop_front();
            }
            self.completed.push_back(rec);
        }
    }

    /// Renders the per-port metrics as a deterministic JSON fragment
    /// (an object, `BENCH_simulator.json` style). The `SocSystem`
    /// snapshot wraps this with memory-side and bound-monitor sections.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"ports\":[");
        for (i, p) in self.ports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"port\":{},\"ar\":{},\"aw\":{},\"w\":{},\"r\":{},\"b\":{},\
                 \"read_txns\":{},\"write_txns\":{},\
                 \"efifo_occupancy\":{{\"current\":{},\"peak\":{}}}",
                i,
                p.ar.json(),
                p.aw.json(),
                p.w.json(),
                p.r.json(),
                p.b.json(),
                json_latency(&p.read_txns),
                json_latency(&p.write_txns),
                p.efifo_occupancy.current(),
                p.efifo_occupancy.peak(),
            ));
            if let Some(reg) = &p.regulator {
                out.push_str(&format!(",\"regulator\":{}", reg.json()));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"master_efifo_occupancy\":{{\"current\":{},\"peak\":{}}},\"inflight\":{}}}",
            self.master_efifo_occupancy.current(),
            self.master_efifo_occupancy.peak(),
            self.inflight.len(),
        ));
        out
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| format!("{v:.3}"))
}

/// Formats a [`LatencyStat`] as a JSON object.
pub fn json_latency(l: &LatencyStat) -> String {
    format!(
        "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
        l.count(),
        json_opt_u64(l.min()),
        json_opt_u64(l.max()),
        json_opt_f64(l.mean()),
    )
}

/// Which closed-form bound a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// A read sub-transaction exceeded the staged worst-case service
    /// bound.
    ReadService,
    /// A write sub-transaction exceeded the staged worst-case service
    /// bound.
    WriteService,
    /// An AR beat crossed the fabric faster than its pipeline depth —
    /// the fixed-latency model itself is broken.
    ArPropagation,
    /// AW analogue of [`BoundKind::ArPropagation`].
    AwPropagation,
    /// W analogue of [`BoundKind::ArPropagation`].
    WPropagation,
    /// R analogue of [`BoundKind::ArPropagation`].
    RPropagation,
    /// B analogue of [`BoundKind::ArPropagation`].
    BPropagation,
}

impl BoundKind {
    /// Short kind name for rendering.
    pub fn name(self) -> &'static str {
        match self {
            BoundKind::ReadService => "read_service",
            BoundKind::WriteService => "write_service",
            BoundKind::ArPropagation => "ar_propagation",
            BoundKind::AwPropagation => "aw_propagation",
            BoundKind::WPropagation => "w_propagation",
            BoundKind::RPropagation => "r_propagation",
            BoundKind::BPropagation => "b_propagation",
        }
    }
}

/// One recorded breach of a closed-form bound, with the transaction's
/// full hop history at detection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundViolation {
    /// Which bound was broken.
    pub kind: BoundKind,
    /// Slave port of the offending transaction.
    pub port: usize,
    /// Observability transaction ID (0 for W-data events).
    pub uid: u64,
    /// Observed latency, in cycles.
    pub observed: u64,
    /// The bound it was checked against. For service bounds `observed`
    /// exceeded it; for propagation bounds `observed` undercut it.
    pub bound: u64,
    /// Detection cycle.
    pub cycle: Cycle,
    /// Hop history of the transaction at detection time.
    pub hops: Vec<HopStamp>,
}

impl std::fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} port {} uid {}: observed {} vs bound {} ({} hops)",
            self.cycle,
            self.kind.name(),
            self.port,
            self.uid,
            self.observed,
            self.bound,
            self.hops.len()
        )
    }
}

/// Summary of a bound monitor's activity, for JSON snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundReport {
    /// Read sub-transactions checked against the service bound.
    pub checked_reads: u64,
    /// Write sub-transactions checked against the service bound.
    pub checked_writes: u64,
    /// Violations recorded (service and propagation combined).
    pub violations: u64,
    /// The read service bound being enforced, in cycles.
    pub read_bound: u64,
    /// The write service bound being enforced, in cycles.
    pub write_bound: u64,
    /// Worst observed staged-to-complete read latency.
    pub worst_read: u64,
    /// Worst observed staged-to-complete write latency.
    pub worst_write: u64,
}

impl BoundReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"enabled\":true,\"checked_reads\":{},\"checked_writes\":{},\
             \"violations\":{},\"read_bound\":{},\"write_bound\":{},\
             \"worst_read\":{},\"worst_write\":{}}}",
            self.checked_reads,
            self.checked_writes,
            self.violations,
            self.read_bound,
            self.write_bound,
            self.worst_read,
            self.worst_write,
        )
    }
}

mod persist_impls {
    use super::{
        BoundKind, BoundReport, BoundViolation, ChannelMetrics, Hop, HopStamp, MetricsRegistry,
        ObsChannel, PortMetrics, RegulatorMetrics, TxnRecord,
    };
    use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};
    use std::collections::{BTreeMap, VecDeque};

    /// Discriminant tables: index in the array is the wire encoding, so
    /// the byte stream stays stable as long as new variants are only
    /// appended.
    const CHANNELS: [ObsChannel; 5] = [
        ObsChannel::Ar,
        ObsChannel::Aw,
        ObsChannel::W,
        ObsChannel::R,
        ObsChannel::B,
    ];
    const HOPS: [Hop; 8] = [
        Hop::Issued,
        Hop::TsAccepted,
        Hop::TsStaged,
        Hop::ExbarGranted,
        Hop::MemVisible,
        Hop::MemResponded,
        Hop::Delivered,
        Hop::Dropped,
    ];
    const BOUND_KINDS: [BoundKind; 7] = [
        BoundKind::ReadService,
        BoundKind::WriteService,
        BoundKind::ArPropagation,
        BoundKind::AwPropagation,
        BoundKind::WPropagation,
        BoundKind::RPropagation,
        BoundKind::BPropagation,
    ];

    impl PersistValue for ObsChannel {
        fn save_value(&self, w: &mut SnapshotWriter) {
            let idx = CHANNELS.iter().position(|c| c == self).expect("in table");
            w.put_u8(idx as u8);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let idx = r.take_u8()? as usize;
            CHANNELS
                .get(idx)
                .copied()
                .ok_or(PersistError::Corrupt("obs channel discriminant"))
        }
    }

    impl PersistValue for Hop {
        fn save_value(&self, w: &mut SnapshotWriter) {
            let idx = HOPS.iter().position(|h| h == self).expect("in table");
            w.put_u8(idx as u8);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let idx = r.take_u8()? as usize;
            HOPS.get(idx)
                .copied()
                .ok_or(PersistError::Corrupt("hop discriminant"))
        }
    }

    impl PersistValue for BoundKind {
        fn save_value(&self, w: &mut SnapshotWriter) {
            let idx = BOUND_KINDS
                .iter()
                .position(|k| k == self)
                .expect("in table");
            w.put_u8(idx as u8);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let idx = r.take_u8()? as usize;
            BOUND_KINDS
                .get(idx)
                .copied()
                .ok_or(PersistError::Corrupt("bound kind discriminant"))
        }
    }

    impl PersistValue for HopStamp {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.hop.save_value(w);
            self.channel.save_value(w);
            w.put_u64(self.cycle);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                hop: Hop::load_value(r)?,
                channel: ObsChannel::load_value(r)?,
                cycle: r.take_u64()?,
            })
        }
    }

    impl PersistValue for super::ObsEvent {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.uid);
            self.port.save_value(w);
            self.channel.save_value(w);
            self.hop.save_value(w);
            w.put_u64(self.cycle);
            w.put_u64(self.ref_cycle);
            w.put_u64(self.bytes);
            w.put_bool(self.sub_end);
            w.put_bool(self.txn_end);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                uid: r.take_u64()?,
                port: Option::load_value(r)?,
                channel: ObsChannel::load_value(r)?,
                hop: Hop::load_value(r)?,
                cycle: r.take_u64()?,
                ref_cycle: r.take_u64()?,
                bytes: r.take_u64()?,
                sub_end: r.take_bool()?,
                txn_end: r.take_bool()?,
            })
        }
    }

    impl PersistValue for TxnRecord {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.uid);
            w.put_usize(self.port);
            w.put_bool(self.is_write);
            w.put_u64(self.issued_at);
            self.completed_at.save_value(w);
            w.put_u64(self.bytes);
            self.hops.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                uid: r.take_u64()?,
                port: r.take_usize()?,
                is_write: r.take_bool()?,
                issued_at: r.take_u64()?,
                completed_at: Option::load_value(r)?,
                bytes: r.take_u64()?,
                hops: Vec::load_value(r)?,
            })
        }
    }

    impl PersistValue for ChannelMetrics {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.latency.save_value(w);
            self.histogram.save_value(w);
            self.bandwidth.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                latency: PersistValue::load_value(r)?,
                histogram: PersistValue::load_value(r)?,
                bandwidth: PersistValue::load_value(r)?,
            })
        }
    }

    impl PersistValue for RegulatorMetrics {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.throttle_events);
            self.read_credits.save_value(w);
            self.write_credits.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                throttle_events: r.take_u64()?,
                read_credits: PersistValue::load_value(r)?,
                write_credits: PersistValue::load_value(r)?,
            })
        }
    }

    impl PersistValue for PortMetrics {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.ar.save_value(w);
            self.aw.save_value(w);
            self.w.save_value(w);
            self.r.save_value(w);
            self.b.save_value(w);
            self.read_txns.save_value(w);
            self.write_txns.save_value(w);
            self.efifo_occupancy.save_value(w);
            self.regulator.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                ar: PersistValue::load_value(r)?,
                aw: PersistValue::load_value(r)?,
                w: PersistValue::load_value(r)?,
                r: PersistValue::load_value(r)?,
                b: PersistValue::load_value(r)?,
                read_txns: PersistValue::load_value(r)?,
                write_txns: PersistValue::load_value(r)?,
                efifo_occupancy: PersistValue::load_value(r)?,
                regulator: Option::load_value(r)?,
            })
        }
    }

    impl PersistValue for BoundViolation {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.kind.save_value(w);
            w.put_usize(self.port);
            w.put_u64(self.uid);
            w.put_u64(self.observed);
            w.put_u64(self.bound);
            w.put_u64(self.cycle);
            self.hops.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                kind: BoundKind::load_value(r)?,
                port: r.take_usize()?,
                uid: r.take_u64()?,
                observed: r.take_u64()?,
                bound: r.take_u64()?,
                cycle: r.take_u64()?,
                hops: Vec::load_value(r)?,
            })
        }
    }

    impl PersistValue for BoundReport {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.checked_reads);
            w.put_u64(self.checked_writes);
            w.put_u64(self.violations);
            w.put_u64(self.read_bound);
            w.put_u64(self.write_bound);
            w.put_u64(self.worst_read);
            w.put_u64(self.worst_write);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                checked_reads: r.take_u64()?,
                checked_writes: r.take_u64()?,
                violations: r.take_u64()?,
                read_bound: r.take_u64()?,
                write_bound: r.take_u64()?,
                worst_read: r.take_u64()?,
                worst_write: r.take_u64()?,
            })
        }
    }

    impl PersistValue for MetricsRegistry {
        /// The in-flight table is a `BTreeMap`, so iteration (and hence
        /// the byte stream) is already sorted by uid — deterministic
        /// across schedulers by construction.
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.ports.save_value(w);
            self.master_efifo_occupancy.save_value(w);
            w.put_usize(self.inflight.len());
            for rec in self.inflight.values() {
                rec.save_value(w);
            }
            w.put_usize(self.completed.len());
            for rec in &self.completed {
                rec.save_value(w);
            }
            w.put_u64(self.dropped_subs);
            w.put_u64(self.dropped_txns);
            w.put_str(&self.instance);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let ports = Vec::load_value(r)?;
            let master_efifo_occupancy = PersistValue::load_value(r)?;
            let n_inflight = r.take_usize()?;
            let mut inflight = BTreeMap::new();
            for _ in 0..n_inflight {
                let rec = TxnRecord::load_value(r)?;
                inflight.insert(rec.uid, rec);
            }
            let n_completed = r.take_usize()?;
            if n_completed > super::COMPLETED_RING {
                return Err(PersistError::Corrupt("completed ring over capacity"));
            }
            let mut completed = VecDeque::with_capacity(super::COMPLETED_RING);
            for _ in 0..n_completed {
                completed.push_back(TxnRecord::load_value(r)?);
            }
            Ok(Self {
                ports,
                master_efifo_occupancy,
                inflight,
                completed,
                dropped_subs: r.take_u64()?,
                dropped_txns: r.take_u64()?,
                instance: r.take_str()?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::super::*;
        use sim::persist::{PersistValue, SnapshotReader, SnapshotWriter};

        #[test]
        fn registry_roundtrip_preserves_json_and_hop_histories() {
            let mut reg = MetricsRegistry::new(2);
            reg.set_instance("root");
            let accept = ObsEvent {
                uid: 7,
                port: Some(1),
                channel: ObsChannel::Ar,
                hop: Hop::TsAccepted,
                cycle: 1,
                ref_cycle: 0,
                bytes: 64,
                sub_end: false,
                txn_end: false,
            };
            reg.on_event(&accept);
            reg.set_efifo_occupancy(1, 3);
            reg.set_regulator(0, 2, 10, 20);
            let mut w = SnapshotWriter::new();
            reg.save_value(&mut w);
            let bytes = w.into_bytes();
            let restored =
                MetricsRegistry::load_value(&mut SnapshotReader::new(&bytes)).expect("roundtrip");
            assert_eq!(restored, reg);
            assert_eq!(restored.to_json(), reg.to_json());
            assert_eq!(restored.hops_of(7), reg.hops_of(7));
            assert_eq!(restored.instance(), "root");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(uid: u64, ch: ObsChannel, hop: Hop, cycle: Cycle, ref_cycle: Cycle) -> ObsEvent {
        ObsEvent {
            uid,
            port: None,
            channel: ch,
            hop,
            cycle,
            ref_cycle,
            bytes: 0,
            sub_end: false,
            txn_end: false,
        }
    }

    #[test]
    fn registry_tracks_a_read_end_to_end() {
        let mut reg = MetricsRegistry::new(2);
        let accept = ObsEvent {
            port: Some(1),
            bytes: 64,
            ..ev(7, ObsChannel::Ar, Hop::TsAccepted, 1, 0)
        };
        reg.on_event(&accept);
        assert_eq!(reg.inflight_len(), 1);
        reg.on_event(&ev(7, ObsChannel::Ar, Hop::TsStaged, 1, 0));
        reg.on_event(&ev(7, ObsChannel::Ar, Hop::ExbarGranted, 2, 0));
        let mem = ObsEvent {
            bytes: 64,
            ..ev(7, ObsChannel::Ar, Hop::MemVisible, 3, 0)
        };
        reg.on_event(&mem);
        // AR channel latency = (3 + 1) - 0 = 4, the Fig. 3(a) golden.
        assert_eq!(reg.port(1).ar.latency.min(), Some(4));
        assert_eq!(reg.port(1).ar.bandwidth.bytes(), 64);
        // Memory responds at 30, delivery at 31, visible at 32.
        let deliver = ObsEvent {
            port: Some(1),
            bytes: 64,
            sub_end: true,
            txn_end: true,
            ..ev(7, ObsChannel::R, Hop::Delivered, 31, 30)
        };
        reg.on_event(&deliver);
        assert_eq!(reg.port(1).r.latency.min(), Some(2));
        assert_eq!(reg.inflight_len(), 0);
        assert_eq!(reg.port(1).read_txns.count(), 1);
        // issued at 0, last data visible at 32.
        assert_eq!(reg.port(1).read_txns.max(), Some(32));
        let rec = reg.completed().next().unwrap();
        assert_eq!(rec.uid, 7);
        assert_eq!(rec.completed_at, Some(32));
        let hops: Vec<Hop> = rec.hops.iter().map(|h| h.hop).collect();
        assert_eq!(
            hops,
            vec![
                Hop::Issued,
                Hop::TsAccepted,
                Hop::TsStaged,
                Hop::ExbarGranted,
                Hop::MemVisible,
                Hop::MemResponded,
                Hop::Delivered,
            ]
        );
    }

    #[test]
    fn merged_write_responses_do_not_count_as_channel_traffic() {
        let mut reg = MetricsRegistry::new(1);
        let accept = ObsEvent {
            port: Some(0),
            bytes: 128,
            ..ev(3, ObsChannel::Aw, Hop::TsAccepted, 0, 0)
        };
        reg.on_event(&accept);
        // First sub's B is merged (not final): no B channel sample.
        let merged = ObsEvent {
            port: Some(0),
            sub_end: true,
            ..ev(3, ObsChannel::B, Hop::Delivered, 40, 38)
        };
        reg.on_event(&merged);
        assert_eq!(reg.port(0).b.latency.count(), 0);
        // Final sub's B is delivered: one sample, txn completes.
        let fin = ObsEvent {
            port: Some(0),
            sub_end: true,
            txn_end: true,
            ..ev(3, ObsChannel::B, Hop::Delivered, 60, 58)
        };
        reg.on_event(&fin);
        assert_eq!(reg.port(0).b.latency.count(), 1);
        assert_eq!(reg.port(0).b.latency.min(), Some(3));
        assert_eq!(reg.port(0).write_txns.count(), 1);
    }

    #[test]
    fn w_events_record_by_explicit_port() {
        let mut reg = MetricsRegistry::new(2);
        let w = ObsEvent {
            port: Some(0),
            bytes: 4,
            ..ev(0, ObsChannel::W, Hop::MemVisible, 5, 4)
        };
        reg.on_event(&w);
        assert_eq!(reg.port(0).w.latency.min(), Some(2));
        assert_eq!(reg.port(0).w.bandwidth.bytes(), 4);
        assert_eq!(reg.port(1).w.latency.count(), 0);
    }

    #[test]
    fn completed_ring_is_bounded() {
        let mut reg = MetricsRegistry::new(1);
        for uid in 1..=(COMPLETED_RING as u64 + 5) {
            let accept = ObsEvent {
                port: Some(0),
                ..ev(uid, ObsChannel::Ar, Hop::TsAccepted, uid, uid)
            };
            reg.on_event(&accept);
            let done = ObsEvent {
                port: Some(0),
                sub_end: true,
                txn_end: true,
                ..ev(uid, ObsChannel::R, Hop::Delivered, uid + 10, uid + 9)
            };
            reg.on_event(&done);
        }
        assert_eq!(reg.completed().count(), COMPLETED_RING);
        // Oldest entries were evicted; hop lookup still works for recent.
        assert!(reg.hops_of(1).is_empty());
        assert!(!reg.hops_of(COMPLETED_RING as u64 + 5).is_empty());
    }

    #[test]
    fn occupancy_gauges_are_idempotent() {
        let mut reg = MetricsRegistry::new(1);
        reg.set_efifo_occupancy(0, 4);
        let snap = reg.clone();
        reg.set_efifo_occupancy(0, 4); // re-set: no observable change
        assert_eq!(reg, snap);
        reg.set_master_occupancy(9);
        reg.set_master_occupancy(2);
        assert_eq!(reg.master_occupancy().current(), 2);
        assert_eq!(reg.master_occupancy().peak(), 9);
    }

    #[test]
    fn json_snapshot_shape() {
        let mut reg = MetricsRegistry::new(1);
        let accept = ObsEvent {
            port: Some(0),
            bytes: 64,
            ..ev(1, ObsChannel::Ar, Hop::TsAccepted, 0, 0)
        };
        reg.on_event(&accept);
        let js = reg.to_json();
        for key in [
            "\"ports\":[",
            "\"ar\":{",
            "\"read_txns\":{",
            "\"efifo_occupancy\":{",
            "\"master_efifo_occupancy\":{",
            "\"inflight\":1",
        ] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
        // Deterministic: rendering twice gives identical bytes.
        assert_eq!(js, reg.to_json());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = BoundViolation {
            kind: BoundKind::ReadService,
            port: 2,
            uid: 9,
            observed: 700,
            bound: 540,
            cycle: 1234,
            hops: vec![],
        };
        let s = v.to_string();
        assert!(s.contains("read_service"));
        assert!(s.contains("port 2"));
        assert!(s.contains("700"));
        assert_eq!(BoundKind::WPropagation.name(), "w_propagation");
    }

    #[test]
    fn bound_report_json() {
        let r = BoundReport {
            checked_reads: 10,
            checked_writes: 5,
            violations: 0,
            read_bound: 540,
            write_bound: 600,
            worst_read: 120,
            worst_write: 150,
        };
        let js = r.to_json();
        assert!(js.contains("\"enabled\":true"));
        assert!(js.contains("\"violations\":0"));
        assert!(js.contains("\"read_bound\":540"));
    }
}
