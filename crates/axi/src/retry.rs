//! Transaction retry policy with capped exponential backoff.
//!
//! Transient fabric/slave faults (spurious SLVERR on an otherwise-good
//! burst, uncorrectable-but-announced ECC events) are recoverable: the
//! transaction can simply be re-issued. This module defines the policy
//! masters and the hypervisor agree on — the same capped-exponential
//! backoff shape the recovery manager uses between reattach attempts —
//! plus the closed-form worst-case completion bound a runtime monitor
//! checks against.
//!
//! # The bound
//!
//! Under the bounded-fault-rate assumption — at most `max_faults`
//! transient errors hit any single logical transaction before it
//! succeeds — a transaction completes after at most `max_faults + 1`
//! attempts. Each attempt costs at most `per_attempt` cycles (the
//! service bound of the fault-free fabric, e.g.
//! `ServiceModel::drain_deadline`), and attempt `k` (zero-based) is
//! preceded by a backoff of `backoff(k - 1)` idle cycles. Summing:
//!
//! ```text
//! bound = (max_faults + 1) · per_attempt + Σ_{f=0}^{max_faults-1} backoff(f)
//! ```
//!
//! Every quantity is known at configuration time, so the bound is
//! closed-form and can be armed in a `BoundMonitor` before the campaign
//! starts. If the fault process violates the rate assumption the
//! transaction may exhaust `max_attempts` and surface a hard error —
//! which is the quarantine path's job, not the retry path's.

use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};

/// Capped-exponential retry policy for transient error responses.
///
/// Backoff after `f` observed failures is
/// `min(backoff_base << min(f, 16), backoff_cap)` idle cycles — the
/// exact shape of the recovery manager's reattach backoff, so one
/// mental model covers both layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before the master gives up and reports a hard error
    /// (total issues, i.e. `1` means no retry). Must be at least 1.
    pub max_attempts: u32,
    /// Backoff after the first failure, in cycles.
    pub backoff_base: u64,
    /// Upper bound on any single backoff, in cycles.
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            backoff_base: 4,
            backoff_cap: 256,
        }
    }
}

impl RetryPolicy {
    /// Idle cycles to wait after the `failed`-th failure (zero-based:
    /// `backoff(0)` follows the first failed attempt).
    pub fn backoff(&self, failed: u32) -> u64 {
        self.backoff_base
            .saturating_mul(1u64 << failed.min(16))
            .min(self.backoff_cap)
    }

    /// Total backoff cycles inserted across `faults` consecutive
    /// failures (saturating).
    pub fn total_backoff(&self, faults: u32) -> u64 {
        (0..faults).fold(0u64, |acc, f| acc.saturating_add(self.backoff(f)))
    }

    /// Closed-form worst-case completion bound (in cycles) for one
    /// logical transaction, given a fault-free per-attempt service
    /// bound and the bounded-fault-rate assumption that at most
    /// `max_faults` transient errors hit this transaction.
    ///
    /// Saturates rather than wrapping, so absurd configurations read
    /// as "unbounded", never as a small number.
    pub fn completion_bound(&self, per_attempt: u64, max_faults: u32) -> u64 {
        let attempts = u64::from(max_faults) + 1;
        attempts
            .saturating_mul(per_attempt)
            .saturating_add(self.total_backoff(max_faults))
    }

    /// Whether `max_faults` transient errors still complete within the
    /// policy (i.e. fit in `max_attempts` issues).
    pub fn tolerates(&self, max_faults: u32) -> bool {
        max_faults < self.max_attempts
    }
}

impl PersistValue for RetryPolicy {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.max_attempts);
        w.put_u64(self.backoff_base);
        w.put_u64(self.backoff_cap);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            max_attempts: r.take_u32()?,
            backoff_base: r.take_u64()?,
            backoff_cap: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: 4,
            backoff_cap: 20,
        };
        assert_eq!(p.backoff(0), 4);
        assert_eq!(p.backoff(1), 8);
        assert_eq!(p.backoff(2), 16);
        assert_eq!(p.backoff(3), 20, "capped");
        assert_eq!(p.backoff(63), 20, "shift clamped, no overflow");
    }

    #[test]
    fn completion_bound_is_the_sum_of_attempts_and_backoffs() {
        let p = RetryPolicy {
            max_attempts: 8,
            backoff_base: 4,
            backoff_cap: 20,
        };
        // 3 faults -> 4 attempts of 100 cycles + backoffs 4 + 8 + 16.
        assert_eq!(p.completion_bound(100, 3), 4 * 100 + 4 + 8 + 16);
        // Zero faults degenerates to the plain service bound.
        assert_eq!(p.completion_bound(100, 0), 100);
        assert!(p.tolerates(7));
        assert!(!p.tolerates(8));
    }

    #[test]
    fn bound_saturates() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            backoff_base: u64::MAX,
            backoff_cap: u64::MAX,
        };
        assert_eq!(p.completion_bound(u64::MAX, 5), u64::MAX);
    }

    #[test]
    fn policy_round_trips() {
        let p = RetryPolicy::default();
        let mut w = SnapshotWriter::new();
        p.save_value(&mut w);
        let bytes = w.into_bytes();
        let q = RetryPolicy::load_value(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(p, q);
    }
}
