//! Per-channel AXI payloads at beat granularity.
//!
//! Each of the five AXI channels carries its own payload type. Beats
//! additionally carry two pieces of simulation metadata that have no
//! hardware counterpart but do not influence model behaviour:
//!
//! * `tag` — a master-assigned transaction tag used by monitors and by
//!   the Transaction Supervisor to merge split responses, and
//! * `issued_at` — the cycle the originating master issued the beat,
//!   used to measure propagation latencies (the paper measures these with
//!   a custom FPGA timer; the simulator reads them off the beats).
//!
//! The observability layer adds two more pieces of sim-only metadata:
//!
//! * `uid` — a unique per-transaction ID assigned by the interconnect at
//!   ingest (0 = unobserved). Splitting propagates the parent's `uid` to
//!   every sub-transaction, and the memory controller copies it from the
//!   address beat into the matching R/B responses, so a transaction can
//!   be followed hop by hop through the whole fabric.
//! * `hopped_at` (R/B only) — the cycle the memory controller pushed the
//!   response toward the interconnect, the reference point for measuring
//!   the response channels' propagation latency.
//!
//! `uid` and `hopped_at` are deliberately *excluded* from R/B beat
//! equality: they are observer bookkeeping, not payload, and harnesses
//! comparing expected response beats must not have to predict them.

use sim::Cycle;

use crate::payload::Payload;
use crate::types::{AxiId, BurstKind, BurstSize, Resp};

/// A read-address (AR) channel beat: one read burst request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArBeat {
    /// Transaction ID (`ARID`).
    pub id: AxiId,
    /// Start address (`ARADDR`).
    pub addr: u64,
    /// Burst length in beats (the *actual* count, i.e. `ARLEN + 1`).
    pub len: u32,
    /// Beat size (`ARSIZE`).
    pub size: BurstSize,
    /// Burst type (`ARBURST`).
    pub burst: BurstKind,
    /// Quality-of-service hint (`ARQOS`); transported but ignored by the
    /// SmartConnect model, as documented for the real IP (paper §II).
    pub qos: u8,
    /// Simulation-only transaction tag.
    pub tag: u64,
    /// Simulation-only issue timestamp.
    pub issued_at: Cycle,
    /// Simulation-only observability transaction ID (0 = unobserved).
    pub uid: u64,
}

impl ArBeat {
    /// Creates an INCR read request with default ID/QoS/tag.
    pub fn new(addr: u64, len: u32, size: BurstSize) -> Self {
        Self {
            id: AxiId::default(),
            addr,
            len,
            size,
            burst: BurstKind::Incr,
            qos: 0,
            tag: 0,
            issued_at: 0,
            uid: 0,
        }
    }

    /// Sets the transaction ID.
    pub fn with_id(mut self, id: AxiId) -> Self {
        self.id = id;
        self
    }

    /// Sets the simulation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the issue timestamp.
    pub fn with_issued_at(mut self, cycle: Cycle) -> Self {
        self.issued_at = cycle;
        self
    }

    /// Sets the observability transaction ID.
    pub fn with_uid(mut self, uid: u64) -> Self {
        self.uid = uid;
        self
    }

    /// Total bytes requested by this burst.
    pub fn total_bytes(&self) -> u64 {
        crate::burst::total_bytes(self.len, self.size)
    }
}

/// A write-address (AW) channel beat: one write burst request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwBeat {
    /// Transaction ID (`AWID`).
    pub id: AxiId,
    /// Start address (`AWADDR`).
    pub addr: u64,
    /// Burst length in beats (`AWLEN + 1`).
    pub len: u32,
    /// Beat size (`AWSIZE`).
    pub size: BurstSize,
    /// Burst type (`AWBURST`).
    pub burst: BurstKind,
    /// Quality-of-service hint (`AWQOS`).
    pub qos: u8,
    /// Simulation-only transaction tag.
    pub tag: u64,
    /// Simulation-only issue timestamp.
    pub issued_at: Cycle,
    /// Simulation-only observability transaction ID (0 = unobserved).
    pub uid: u64,
}

impl AwBeat {
    /// Creates an INCR write request with default ID/QoS/tag.
    pub fn new(addr: u64, len: u32, size: BurstSize) -> Self {
        Self {
            id: AxiId::default(),
            addr,
            len,
            size,
            burst: BurstKind::Incr,
            qos: 0,
            tag: 0,
            issued_at: 0,
            uid: 0,
        }
    }

    /// Sets the transaction ID.
    pub fn with_id(mut self, id: AxiId) -> Self {
        self.id = id;
        self
    }

    /// Sets the simulation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the issue timestamp.
    pub fn with_issued_at(mut self, cycle: Cycle) -> Self {
        self.issued_at = cycle;
        self
    }

    /// Sets the observability transaction ID.
    pub fn with_uid(mut self, uid: u64) -> Self {
        self.uid = uid;
        self
    }

    /// Total bytes written by this burst.
    pub fn total_bytes(&self) -> u64 {
        crate::burst::total_bytes(self.len, self.size)
    }
}

/// A write-data (W) channel beat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WBeat {
    /// Payload bytes (exactly the beat size of the owning burst).
    /// Stored inline in the beat for ≤64-byte beats (see [`Payload`]).
    pub data: Payload,
    /// Write strobes (`WSTRB`): bit *i* set means byte *i* of the beat
    /// is written. Beats default to all-bytes-valid; only the low
    /// `data.len()` bits are meaningful (AXI beats are at most 128
    /// bytes, so a `u128` covers every legal size).
    pub strb: u128,
    /// `WLAST`: final beat of the burst.
    pub last: bool,
    /// Simulation-only transaction tag (copied from the AW beat).
    pub tag: u64,
    /// Simulation-only issue timestamp.
    pub issued_at: Cycle,
}

/// All-bytes-valid write strobe.
pub const STRB_ALL: u128 = u128::MAX;

impl WBeat {
    /// Creates a data beat with every byte strobed.
    pub fn new(data: impl Into<Payload>, last: bool) -> Self {
        Self {
            data: data.into(),
            strb: STRB_ALL,
            last,
            tag: 0,
            issued_at: 0,
        }
    }

    /// Sets the write strobes.
    pub fn with_strobe(mut self, strb: u128) -> Self {
        self.strb = strb;
        self
    }

    /// Whether byte `i` of the beat is strobed (written).
    pub fn byte_enabled(&self, i: usize) -> bool {
        i < 128 && (self.strb >> i) & 1 == 1
    }

    /// Sets the simulation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the issue timestamp.
    pub fn with_issued_at(mut self, cycle: Cycle) -> Self {
        self.issued_at = cycle;
        self
    }

    /// Generates the full W-beat stream for a burst, filling each beat's
    /// bytes via `fill(beat_index, byte_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn stream(
        len: u32,
        size: BurstSize,
        tag: u64,
        mut fill: impl FnMut(u32, u64) -> u8,
    ) -> Vec<WBeat> {
        assert!(len > 0, "burst length must be non-zero");
        (0..len)
            .map(|beat| {
                let data = Payload::from_fn(size.bytes() as usize, |b| fill(beat, b as u64));
                WBeat::new(data, beat == len - 1).with_tag(tag)
            })
            .collect()
    }
}

/// A read-data (R) channel beat.
///
/// Equality compares protocol payload and the `tag`/`issued_at`
/// measurement metadata, but *not* the observability fields `uid` and
/// `hopped_at` (see the module docs).
#[derive(Debug, Clone, Eq)]
pub struct RBeat {
    /// Transaction ID (`RID`).
    pub id: AxiId,
    /// Payload bytes (inline for ≤64-byte beats, see [`Payload`]).
    pub data: Payload,
    /// Response code (`RRESP`).
    pub resp: Resp,
    /// `RLAST`: final beat of the burst.
    pub last: bool,
    /// Simulation-only transaction tag (copied from the AR beat).
    pub tag: u64,
    /// Simulation-only timestamp of the originating AR issue (for
    /// end-to-end latency measurement).
    pub issued_at: Cycle,
    /// Simulation-only observability transaction ID (copied from the AR
    /// beat; 0 = unobserved). Excluded from equality.
    pub uid: u64,
    /// Simulation-only cycle the memory controller emitted this beat
    /// (response-channel latency reference). Excluded from equality.
    pub hopped_at: Cycle,
}

impl PartialEq for RBeat {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.data == other.data
            && self.resp == other.resp
            && self.last == other.last
            && self.tag == other.tag
            && self.issued_at == other.issued_at
    }
}

impl RBeat {
    /// Creates a successful read-data beat.
    pub fn new(id: AxiId, data: impl Into<Payload>, last: bool) -> Self {
        Self {
            id,
            data: data.into(),
            resp: Resp::Okay,
            last,
            tag: 0,
            issued_at: 0,
            uid: 0,
            hopped_at: 0,
        }
    }

    /// Sets the simulation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the response code.
    pub fn with_resp(mut self, resp: Resp) -> Self {
        self.resp = resp;
        self
    }

    /// Sets the originating issue timestamp.
    pub fn with_issued_at(mut self, cycle: Cycle) -> Self {
        self.issued_at = cycle;
        self
    }

    /// Sets the observability transaction ID.
    pub fn with_uid(mut self, uid: u64) -> Self {
        self.uid = uid;
        self
    }

    /// Sets the response-channel latency reference (the cycle the beat
    /// last crossed an emission point: memory controller or bridge).
    pub fn with_hopped_at(mut self, cycle: Cycle) -> Self {
        self.hopped_at = cycle;
        self
    }
}

/// A write-response (B) channel beat.
///
/// Equality excludes the observability fields `uid` and `hopped_at`,
/// like [`RBeat`].
#[derive(Debug, Clone, Copy, Eq)]
pub struct BBeat {
    /// Transaction ID (`BID`).
    pub id: AxiId,
    /// Response code (`BRESP`).
    pub resp: Resp,
    /// Simulation-only transaction tag (copied from the AW beat).
    pub tag: u64,
    /// Simulation-only timestamp of the originating AW issue.
    pub issued_at: Cycle,
    /// Simulation-only observability transaction ID (copied from the AW
    /// beat; 0 = unobserved). Excluded from equality.
    pub uid: u64,
    /// Simulation-only cycle the memory controller emitted this
    /// response. Excluded from equality.
    pub hopped_at: Cycle,
}

impl PartialEq for BBeat {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.resp == other.resp
            && self.tag == other.tag
            && self.issued_at == other.issued_at
    }
}

impl BBeat {
    /// Creates a successful write response.
    pub fn new(id: AxiId) -> Self {
        Self {
            id,
            resp: Resp::Okay,
            tag: 0,
            issued_at: 0,
            uid: 0,
            hopped_at: 0,
        }
    }

    /// Sets the simulation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the response code.
    pub fn with_resp(mut self, resp: Resp) -> Self {
        self.resp = resp;
        self
    }

    /// Sets the originating issue timestamp.
    pub fn with_issued_at(mut self, cycle: Cycle) -> Self {
        self.issued_at = cycle;
        self
    }

    /// Sets the observability transaction ID.
    pub fn with_uid(mut self, uid: u64) -> Self {
        self.uid = uid;
        self
    }

    /// Sets the response-channel latency reference (the cycle the beat
    /// last crossed an emission point: memory controller or bridge).
    pub fn with_hopped_at(mut self, cycle: Cycle) -> Self {
        self.hopped_at = cycle;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ar_builder_chain() {
        let ar = ArBeat::new(0x1000, 16, BurstSize::B4)
            .with_id(AxiId(3))
            .with_tag(99)
            .with_issued_at(42);
        assert_eq!(ar.id, AxiId(3));
        assert_eq!(ar.tag, 99);
        assert_eq!(ar.issued_at, 42);
        assert_eq!(ar.burst, BurstKind::Incr);
        assert_eq!(ar.total_bytes(), 64);
    }

    #[test]
    fn aw_total_bytes() {
        let aw = AwBeat::new(0, 8, BurstSize::B16);
        assert_eq!(aw.total_bytes(), 128);
    }

    #[test]
    fn w_stream_shape() {
        let beats = WBeat::stream(4, BurstSize::B4, 7, |beat, byte| {
            (beat * 10 + byte as u32) as u8
        });
        assert_eq!(beats.len(), 4);
        assert!(beats[..3].iter().all(|b| !b.last));
        assert!(beats[3].last);
        assert!(beats.iter().all(|b| b.tag == 7 && b.data.len() == 4));
        assert_eq!(beats[2].data, vec![20, 21, 22, 23]);
    }

    #[test]
    fn w_stream_single_beat_is_last() {
        let beats = WBeat::stream(1, BurstSize::B8, 0, |_, _| 0xAA);
        assert_eq!(beats.len(), 1);
        assert!(beats[0].last);
        assert_eq!(beats[0].data, vec![0xAA; 8]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn w_stream_zero_len_panics() {
        let _ = WBeat::stream(0, BurstSize::B4, 0, |_, _| 0);
    }

    #[test]
    fn r_beat_defaults_ok() {
        let r = RBeat::new(AxiId(1), vec![1, 2], true);
        assert_eq!(r.resp, Resp::Okay);
        assert!(r.last);
        let r = r.with_resp(Resp::SlvErr).with_tag(5).with_issued_at(9);
        assert_eq!(r.resp, Resp::SlvErr);
        assert_eq!((r.tag, r.issued_at), (5, 9));
    }

    #[test]
    fn strobe_defaults_to_all_bytes() {
        let w = WBeat::new(vec![0; 16], false);
        assert_eq!(w.strb, STRB_ALL);
        for i in 0..16 {
            assert!(w.byte_enabled(i));
        }
    }

    #[test]
    fn partial_strobe_selects_bytes() {
        let w = WBeat::new(vec![0; 4], true).with_strobe(0b0101);
        assert!(w.byte_enabled(0));
        assert!(!w.byte_enabled(1));
        assert!(w.byte_enabled(2));
        assert!(!w.byte_enabled(3));
        // Out-of-range byte indices are never enabled.
        assert!(!w.byte_enabled(200));
    }

    #[test]
    fn response_equality_ignores_observability_metadata() {
        let mut a = RBeat::new(AxiId(1), vec![1, 2], true).with_tag(3);
        let b = a.clone().with_uid(77);
        a.hopped_at = 123;
        assert_eq!(a, b, "uid/hopped_at must not affect R equality");
        let mut x = BBeat::new(AxiId(2)).with_tag(9);
        let y = x.with_uid(55);
        x.hopped_at = 42;
        assert_eq!(x, y, "uid/hopped_at must not affect B equality");
        // Protocol payload still participates.
        assert_ne!(a, b.with_tag(4));
    }

    #[test]
    fn address_beats_carry_uid() {
        let ar = ArBeat::new(0, 1, BurstSize::B4).with_uid(10);
        let aw = AwBeat::new(0, 1, BurstSize::B4).with_uid(11);
        assert_eq!(ar.uid, 10);
        assert_eq!(aw.uid, 11);
        // Unobserved beats default to uid 0.
        assert_eq!(ArBeat::new(0, 1, BurstSize::B4).uid, 0);
    }

    #[test]
    fn b_beat_builder() {
        let b = BBeat::new(AxiId(2)).with_resp(Resp::DecErr).with_tag(11);
        assert_eq!(b.id, AxiId(2));
        assert_eq!(b.resp, Resp::DecErr);
        assert_eq!(b.tag, 11);
    }
}
