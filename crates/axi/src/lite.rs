//! AXI4-Lite control plane.
//!
//! The HyperConnect exports a control AXI slave interface so the
//! hypervisor can reconfigure it at run time as a standard memory-mapped
//! device (paper §V-A, *Runtime reconfiguration*). This module models
//! that path: register-file devices implement [`LiteDevice`], a
//! [`LiteBus`] routes 32-bit accesses by address, and [`LiteHandle`]
//! gives the (software-model) hypervisor shared access to a device that
//! is simultaneously owned by a simulated component.
//!
//! Control-plane accesses are modeled as immediate (same-cycle) function
//! calls: the paper's evaluation never measures control-path timing, and
//! configuration happens at integration time or between workload phases.

use std::sync::{Arc, Mutex};

/// A memory-mapped 32-bit register device (AXI4-Lite slave).
pub trait LiteDevice {
    /// Reads the 32-bit register at byte `offset` within the device.
    ///
    /// Unmapped offsets return `0` (reads of reserved addresses return
    /// zero on the modeled hardware rather than erroring).
    fn read32(&mut self, offset: u64) -> u32;

    /// Writes the 32-bit register at byte `offset` within the device.
    ///
    /// Writes to unmapped or read-only offsets are ignored.
    fn write32(&mut self, offset: u64, value: u32);
}

/// Error returned by [`LiteBus`] accesses that decode to no device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The address that failed to decode.
    pub addr: u64,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no device mapped at address {:#x}", self.addr)
    }
}

impl std::error::Error for DecodeError {}

/// A shared, clonable handle to a [`LiteDevice`].
///
/// The simulated component (e.g. the HyperConnect) holds one clone and
/// consults the registers every cycle; the hypervisor driver holds
/// another and performs reads/writes. The mutex is uncontended in the
/// single-threaded simulator and exists to keep the handle `Send + Sync`.
#[derive(Debug, Default)]
pub struct LiteHandle<T>(Arc<Mutex<T>>);

impl<T> Clone for LiteHandle<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T: LiteDevice> LiteHandle<T> {
    /// Wraps a device in a shared handle.
    pub fn new(device: T) -> Self {
        Self(Arc::new(Mutex::new(device)))
    }

    /// Performs a 32-bit register read.
    pub fn read32(&self, offset: u64) -> u32 {
        self.0
            .lock()
            .expect("poisoned register lock")
            .read32(offset)
    }

    /// Performs a 32-bit register write.
    pub fn write32(&self, offset: u64, value: u32) {
        self.0
            .lock()
            .expect("poisoned register lock")
            .write32(offset, value)
    }

    /// Runs `f` with exclusive access to the underlying device — used by
    /// the owning simulated component to consult configuration state.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.lock().expect("poisoned register lock"))
    }
}

/// An address-decoding bus routing 32-bit accesses to [`LiteDevice`]s.
///
/// # Example
///
/// ```
/// use axi::lite::{LiteBus, LiteDevice, LiteHandle};
///
/// #[derive(Default)]
/// struct Scratch(u32);
/// impl LiteDevice for Scratch {
///     fn read32(&mut self, _o: u64) -> u32 { self.0 }
///     fn write32(&mut self, _o: u64, v: u32) { self.0 = v }
/// }
///
/// let dev = LiteHandle::new(Scratch::default());
/// let mut bus = LiteBus::new();
/// bus.map(0x4000_0000, 0x1000, dev.clone());
/// bus.write32(0x4000_0004, 7)?;
/// assert_eq!(bus.read32(0x4000_0004)?, 7);
/// # Ok::<(), axi::lite::DecodeError>(())
/// ```
#[derive(Default)]
pub struct LiteBus {
    regions: Vec<Region>,
}

struct Region {
    base: u64,
    size: u64,
    read: Box<dyn Fn(u64) -> u32 + Send>,
    write: Box<dyn Fn(u64, u32) + Send>,
}

impl std::fmt::Debug for LiteBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiteBus")
            .field(
                "regions",
                &self
                    .regions
                    .iter()
                    .map(|r| (r.base, r.size))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl LiteBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `device` at `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing mapping or `size` is 0.
    pub fn map<T: LiteDevice + Send + 'static>(
        &mut self,
        base: u64,
        size: u64,
        device: LiteHandle<T>,
    ) {
        assert!(size > 0, "region size must be non-zero");
        for r in &self.regions {
            let overlaps = base < r.base + r.size && r.base < base + size;
            assert!(
                !overlaps,
                "region {:#x}+{:#x} overlaps existing {:#x}+{:#x}",
                base, size, r.base, r.size
            );
        }
        let read_dev = device.clone();
        let write_dev = device;
        self.regions.push(Region {
            base,
            size,
            read: Box::new(move |off| read_dev.read32(off)),
            write: Box::new(move |off, v| write_dev.write32(off, v)),
        });
    }

    /// Number of mapped regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    fn decode(&self, addr: u64) -> Result<(&Region, u64), DecodeError> {
        self.regions
            .iter()
            .find(|r| addr >= r.base && addr < r.base + r.size)
            .map(|r| (r, addr - r.base))
            .ok_or(DecodeError { addr })
    }

    /// Reads the 32-bit register at absolute address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if no device is mapped at `addr`.
    pub fn read32(&self, addr: u64) -> Result<u32, DecodeError> {
        let (region, off) = self.decode(addr)?;
        Ok((region.read)(off))
    }

    /// Writes the 32-bit register at absolute address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if no device is mapped at `addr`.
    pub fn write32(&self, addr: u64, value: u32) -> Result<(), DecodeError> {
        let (region, off) = self.decode(addr)?;
        (region.write)(off, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct RegArray {
        regs: [u32; 4],
    }

    impl LiteDevice for RegArray {
        fn read32(&mut self, offset: u64) -> u32 {
            let idx = (offset / 4) as usize;
            self.regs.get(idx).copied().unwrap_or(0)
        }
        fn write32(&mut self, offset: u64, value: u32) {
            let idx = (offset / 4) as usize;
            if let Some(slot) = self.regs.get_mut(idx) {
                *slot = value;
            }
        }
    }

    #[test]
    fn handle_shares_state() {
        let a = LiteHandle::new(RegArray::default());
        let b = a.clone();
        a.write32(4, 0xDEAD);
        assert_eq!(b.read32(4), 0xDEAD);
        b.with(|d| d.regs[0] = 3);
        assert_eq!(a.read32(0), 3);
    }

    #[test]
    fn bus_routes_by_address() {
        let d0 = LiteHandle::new(RegArray::default());
        let d1 = LiteHandle::new(RegArray::default());
        let mut bus = LiteBus::new();
        bus.map(0x1000, 0x100, d0.clone());
        bus.map(0x2000, 0x100, d1.clone());
        assert_eq!(bus.num_regions(), 2);
        bus.write32(0x1004, 11).unwrap();
        bus.write32(0x2004, 22).unwrap();
        assert_eq!(d0.read32(4), 11);
        assert_eq!(d1.read32(4), 22);
        assert_eq!(bus.read32(0x2004).unwrap(), 22);
    }

    #[test]
    fn bus_decode_error() {
        let bus = LiteBus::new();
        let err = bus.read32(0x5000).unwrap_err();
        assert_eq!(err, DecodeError { addr: 0x5000 });
        assert!(err.to_string().contains("0x5000"));
    }

    #[test]
    fn region_boundaries_are_half_open() {
        let d = LiteHandle::new(RegArray::default());
        let mut bus = LiteBus::new();
        bus.map(0x1000, 0x10, d);
        assert!(bus.read32(0x100F).is_ok());
        assert!(bus.read32(0x1010).is_err());
        assert!(bus.read32(0xFFF).is_err());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_panic() {
        let d0 = LiteHandle::new(RegArray::default());
        let d1 = LiteHandle::new(RegArray::default());
        let mut bus = LiteBus::new();
        bus.map(0x1000, 0x100, d0);
        bus.map(0x10F0, 0x100, d1);
    }

    #[test]
    fn unmapped_offsets_read_zero_write_ignored() {
        let d = LiteHandle::new(RegArray::default());
        assert_eq!(d.read32(0x100), 0);
        d.write32(0x100, 5); // ignored, no panic
        assert_eq!(d.read32(0x100), 0);
    }
}
