//! The AXI-to-AXI bridge: the wire/register adapter a system integrator
//! infers when an interconnect's master port feeds another
//! interconnect's slave port (cascaded HyperConnects, a HyperConnect
//! under a SmartConnect, ...).
//!
//! A bridge moves every ready beat between two [`AxiPort`] boundaries:
//! requests (`ar`/`aw`/`w`) flow *downstream* from the upstream master
//! port into the downstream slave port; responses (`r`/`b`) flow
//! *upstream*. Two timing flavours exist:
//!
//! * **latency 0** — a plain wire: beats cross within the cycle they
//!   become ready, exactly like a direct connection (the behavior the
//!   hierarchy conformance test pins);
//! * **latency N > 0** — a registered hop: beats are staged in an
//!   internal [`sim::TimedFifo`] pipe and emerge exactly `N` cycles later
//!   (given the downstream side has space), modeling register slices or
//!   clock-domain crossings on the FPGA fabric.
//!
//! # Observability contract
//!
//! Crossing a bridge starts a new *observability epoch*: the bridge
//! restamps `issued_at` on downstream-bound request beats and
//! `hopped_at` on upstream-bound response beats with the crossing
//! cycle. Combined with each interconnect assigning its own
//! transaction `uid`s at ingest, this makes every interconnect
//! instance's [`crate::MetricsRegistry`] measure *its local hop* of a
//! multi-level tree — end-to-end latency is the sum of the per-hop
//! figures plus the configured bridge latencies. Timestamps are
//! metrics-only metadata: restamping never changes cycle-level timing.

use sim::Cycle;

use crate::port::{AxiPort, PortConfig};

/// Sizing and timing of an [`AxiBridge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeConfig {
    /// Cycles a beat spends inside the bridge (0 = combinational wire).
    pub latency: Cycle,
    /// Staging capacity of the AR/AW pipes, in requests (latency > 0).
    pub addr_capacity: usize,
    /// Staging capacity of the W/R pipes, in beats (latency > 0).
    pub data_capacity: usize,
    /// Staging capacity of the B pipe, in responses (latency > 0).
    pub resp_capacity: usize,
}

impl BridgeConfig {
    /// A zero-latency wire bridge — behaves exactly like a direct
    /// connection between the two ports.
    pub fn wire() -> Self {
        let p = PortConfig::wire();
        Self {
            latency: 0,
            addr_capacity: p.addr_capacity,
            data_capacity: p.data_capacity,
            resp_capacity: p.resp_capacity,
        }
    }

    /// A single-cycle registered bridge (one register slice each way).
    pub fn registered() -> Self {
        Self {
            latency: 1,
            ..Self::wire()
        }
    }

    /// Overrides the bridge latency.
    pub fn latency(mut self, cycles: Cycle) -> Self {
        self.latency = cycles;
        self
    }
}

impl Default for BridgeConfig {
    fn default() -> Self {
        Self::wire()
    }
}

/// Beat counters of one bridge, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Request beats (AR + AW + W) moved downstream.
    pub beats_down: u64,
    /// Response beats (R + B) moved upstream.
    pub beats_up: u64,
}

/// A latency-configurable adapter between an upstream master port and a
/// downstream slave port (see the module docs for the timing and
/// observability contract).
///
/// A bridge is driven by calling [`AxiBridge::transfer`] once per cycle
/// with both boundary ports; it is not a standalone
/// [`sim::Component`] because it owns neither boundary.
#[derive(Debug, Clone)]
pub struct AxiBridge {
    config: BridgeConfig,
    /// Internal staging pipes; `None` in wire (latency 0) mode.
    stage: Option<AxiPort>,
    stats: BridgeStats,
}

impl AxiBridge {
    /// Creates a bridge with the given configuration.
    pub fn new(config: BridgeConfig) -> Self {
        let stage = (config.latency > 0).then(|| {
            AxiPort::new(PortConfig {
                addr_capacity: config.addr_capacity,
                data_capacity: config.data_capacity,
                resp_capacity: config.resp_capacity,
                latency: config.latency,
            })
        });
        Self {
            config,
            stage,
            stats: BridgeStats::default(),
        }
    }

    /// A zero-latency wire bridge.
    pub fn wire() -> Self {
        Self::new(BridgeConfig::wire())
    }

    /// The bridge's configuration.
    pub fn config(&self) -> &BridgeConfig {
        &self.config
    }

    /// Directional beat counters.
    pub fn stats(&self) -> BridgeStats {
        self.stats
    }

    /// Whether no beats are staged inside the bridge.
    pub fn is_idle(&self) -> bool {
        self.stage.as_ref().is_none_or(AxiPort::is_idle)
    }

    /// Earliest cycle a staged beat becomes visible at the bridge
    /// output, or `None` when nothing is staged (event-horizon hint for
    /// the fast-forward scheduler; wire bridges hold no state and are
    /// purely reactive).
    pub fn next_event(&self) -> Option<Cycle> {
        self.stage.as_ref().and_then(AxiPort::next_ready_at)
    }

    /// Moves every beat that can legally cross this cycle: requests
    /// from `upstream` (a master port) down into `downstream` (a slave
    /// port), responses the other way. Returns `true` if anything
    /// moved. Call exactly once per cycle, after the upstream component
    /// ticked and before the downstream one does (the topology engine's
    /// schedule).
    pub fn transfer(
        &mut self,
        now: Cycle,
        upstream: &mut AxiPort,
        downstream: &mut AxiPort,
    ) -> bool {
        match self.stage.take() {
            None => self.transfer_wire(now, upstream, downstream),
            Some(mut stage) => {
                let progress = self.transfer_staged(now, &mut stage, upstream, downstream);
                self.stage = Some(stage);
                progress
            }
        }
    }

    /// Wire mode: beats cross directly, exactly like the hand-rolled
    /// adapter the hierarchy test used to carry.
    fn transfer_wire(&mut self, now: Cycle, up: &mut AxiPort, down: &mut AxiPort) -> bool {
        let mut progress = false;
        // Requests flow down.
        while up.ar.has_ready(now) && !down.ar.is_full() {
            let mut b = up.ar.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.ar.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while up.aw.has_ready(now) && !down.aw.is_full() {
            let mut b = up.aw.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.aw.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while up.w.has_ready(now) && !down.w.is_full() {
            let mut b = up.w.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.w.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        // Responses flow up.
        while down.r.has_ready(now) && !up.r.is_full() {
            let mut b = down.r.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.r.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        while down.b.has_ready(now) && !up.b.is_full() {
            let mut b = down.b.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.b.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        progress
    }

    /// Registered mode: drain the stage toward its destination first,
    /// then accept newly ready beats into the stage — so a beat spends
    /// exactly `latency` cycles inside the bridge when the far side has
    /// space.
    fn transfer_staged(
        &mut self,
        now: Cycle,
        stage: &mut AxiPort,
        up: &mut AxiPort,
        down: &mut AxiPort,
    ) -> bool {
        let mut progress = false;
        // Stage → downstream (requests leave the bridge).
        while stage.ar.has_ready(now) && !down.ar.is_full() {
            let mut b = stage.ar.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.ar.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while stage.aw.has_ready(now) && !down.aw.is_full() {
            let mut b = stage.aw.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.aw.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while stage.w.has_ready(now) && !down.w.is_full() {
            let mut b = stage.w.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.w.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        // Stage → upstream (responses leave the bridge).
        while stage.r.has_ready(now) && !up.r.is_full() {
            let mut b = stage.r.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.r.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        while stage.b.has_ready(now) && !up.b.is_full() {
            let mut b = stage.b.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.b.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        // Boundary → stage (beats enter the bridge pipes).
        while up.ar.has_ready(now) && !stage.ar.is_full() {
            let b = up.ar.pop_ready(now).expect("ready");
            stage.ar.push(now, b).expect("space");
            progress = true;
        }
        while up.aw.has_ready(now) && !stage.aw.is_full() {
            let b = up.aw.pop_ready(now).expect("ready");
            stage.aw.push(now, b).expect("space");
            progress = true;
        }
        while up.w.has_ready(now) && !stage.w.is_full() {
            let b = up.w.pop_ready(now).expect("ready");
            stage.w.push(now, b).expect("space");
            progress = true;
        }
        while down.r.has_ready(now) && !stage.r.is_full() {
            let b = down.r.pop_ready(now).expect("ready");
            stage.r.push(now, b).expect("space");
            progress = true;
        }
        while down.b.has_ready(now) && !stage.b.is_full() {
            let b = down.b.pop_ready(now).expect("ready");
            stage.b.push(now, b).expect("space");
            progress = true;
        }
        progress
    }
}

impl Default for AxiBridge {
    fn default() -> Self {
        Self::wire()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beat::{ArBeat, RBeat};
    use crate::types::{AxiId, BurstSize};

    fn ports() -> (AxiPort, AxiPort) {
        (AxiPort::default(), AxiPort::default())
    }

    #[test]
    fn wire_bridge_crosses_within_the_cycle() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::wire();
        up.ar.push(0, ArBeat::new(0x40, 1, BurstSize::B4)).unwrap();
        // Zero-latency boundary queues: ready in the push cycle.
        assert!(bridge.transfer(0, &mut up, &mut down));
        assert!(down.ar.has_ready(0));
        assert!(up.ar.is_empty());
        assert_eq!(bridge.stats().beats_down, 1);
        assert!(bridge.is_idle());
        assert_eq!(bridge.next_event(), None);
    }

    #[test]
    fn registered_bridge_adds_exactly_its_latency() {
        for latency in [1u64, 3] {
            let (mut up, mut down) = ports();
            let mut bridge = AxiBridge::new(BridgeConfig::wire().latency(latency));
            up.ar.push(0, ArBeat::new(0x80, 1, BurstSize::B4)).unwrap();
            let mut arrival = None;
            for now in 0..20 {
                bridge.transfer(now, &mut up, &mut down);
                if arrival.is_none() && down.ar.has_ready(now) {
                    arrival = Some(now);
                }
            }
            // Ingested at cycle 0, visible at the stage output at
            // `latency`, pushed downstream the same cycle.
            assert_eq!(arrival, Some(latency), "latency {latency}");
        }
    }

    #[test]
    fn staged_beats_report_a_next_event() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::new(BridgeConfig::wire().latency(4));
        up.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        bridge.transfer(0, &mut up, &mut down);
        assert!(!bridge.is_idle());
        assert_eq!(bridge.next_event(), Some(4));
    }

    #[test]
    fn responses_flow_up_and_are_restamped() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::wire();
        let r = RBeat::new(AxiId(3), vec![0; 4], true)
            .with_uid(7)
            .with_hopped_at(2);
        down.r.push(5, r).unwrap();
        assert!(bridge.transfer(5, &mut up, &mut down));
        let crossed = up.r.pop_ready(5).expect("crossed");
        // New observability epoch: the hop cycle replaces the
        // downstream stamp; the uid is untouched (each interconnect
        // re-assigns its own at ingest).
        assert_eq!(crossed.hopped_at, 5);
        assert_eq!(crossed.uid, 7);
        assert_eq!(bridge.stats().beats_up, 1);
    }

    #[test]
    fn requests_are_restamped_with_the_crossing_cycle() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::wire();
        up.ar
            .push(9, ArBeat::new(0x100, 4, BurstSize::B16).with_issued_at(1))
            .unwrap();
        bridge.transfer(9, &mut up, &mut down);
        assert_eq!(down.ar.pop_ready(9).expect("crossed").issued_at, 9);
    }

    #[test]
    fn backpressure_holds_beats_without_loss() {
        let (mut up, mut down) = ports();
        // Downstream AR queue of capacity 1, already full.
        down.ar = sim::TimedFifo::new(1, 0);
        down.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        let mut bridge = AxiBridge::wire();
        up.ar.push(0, ArBeat::new(0x40, 1, BurstSize::B4)).unwrap();
        assert!(!bridge.transfer(0, &mut up, &mut down));
        assert_eq!(up.ar.len(), 1, "beat must stay upstream");
        // Space opens up: the beat crosses.
        down.ar.pop_ready(0);
        assert!(bridge.transfer(0, &mut up, &mut down));
    }
}
