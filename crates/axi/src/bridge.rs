//! The AXI-to-AXI bridge: the wire/register adapter a system integrator
//! infers when an interconnect's master port feeds another
//! interconnect's slave port (cascaded HyperConnects, a HyperConnect
//! under a SmartConnect, ...).
//!
//! A bridge moves every ready beat between two [`AxiPort`] boundaries:
//! requests (`ar`/`aw`/`w`) flow *downstream* from the upstream master
//! port into the downstream slave port; responses (`r`/`b`) flow
//! *upstream*. Two timing flavours exist:
//!
//! * **latency 0** — a plain wire: beats cross within the cycle they
//!   become ready, exactly like a direct connection (the behavior the
//!   hierarchy conformance test pins);
//! * **latency N > 0** — a registered hop: beats are staged in an
//!   internal [`sim::TimedFifo`] pipe and emerge exactly `N` cycles later
//!   (given the downstream side has space), modeling register slices or
//!   clock-domain crossings on the FPGA fabric.
//!
//! # Observability contract
//!
//! Crossing a bridge starts a new *observability epoch*: the bridge
//! restamps `issued_at` on downstream-bound request beats and
//! `hopped_at` on upstream-bound response beats with the crossing
//! cycle. Combined with each interconnect assigning its own
//! transaction `uid`s at ingest, this makes every interconnect
//! instance's [`crate::MetricsRegistry`] measure *its local hop* of a
//! multi-level tree — end-to-end latency is the sum of the per-hop
//! figures plus the configured bridge latencies. Timestamps are
//! metrics-only metadata: restamping never changes cycle-level timing.

use sim::{Cycle, TimedFifo};

use crate::port::{AxiPort, PortConfig};

/// Sizing and timing of an [`AxiBridge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeConfig {
    /// Cycles a beat spends inside the bridge (0 = combinational wire).
    pub latency: Cycle,
    /// Staging capacity of the AR/AW pipes, in requests (latency > 0).
    pub addr_capacity: usize,
    /// Staging capacity of the W/R pipes, in beats (latency > 0).
    pub data_capacity: usize,
    /// Staging capacity of the B pipe, in responses (latency > 0).
    pub resp_capacity: usize,
}

impl BridgeConfig {
    /// A zero-latency wire bridge — behaves exactly like a direct
    /// connection between the two ports.
    pub fn wire() -> Self {
        let p = PortConfig::wire();
        Self {
            latency: 0,
            addr_capacity: p.addr_capacity,
            data_capacity: p.data_capacity,
            resp_capacity: p.resp_capacity,
        }
    }

    /// A single-cycle registered bridge (one register slice each way).
    pub fn registered() -> Self {
        Self {
            latency: 1,
            ..Self::wire()
        }
    }

    /// Overrides the bridge latency.
    pub fn latency(mut self, cycles: Cycle) -> Self {
        self.latency = cycles;
        self
    }
}

impl Default for BridgeConfig {
    fn default() -> Self {
        Self::wire()
    }
}

/// Beat counters of one bridge, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Request beats (AR + AW + W) moved downstream.
    pub beats_down: u64,
    /// Response beats (R + B) moved upstream.
    pub beats_up: u64,
}

/// A latency-configurable adapter between an upstream master port and a
/// downstream slave port (see the module docs for the timing and
/// observability contract).
///
/// A bridge is driven by calling [`AxiBridge::transfer`] once per cycle
/// with both boundary ports; it is not a standalone
/// [`sim::Component`] because it owns neither boundary.
#[derive(Debug, Clone)]
pub struct AxiBridge {
    config: BridgeConfig,
    /// Internal staging pipes; `None` in wire (latency 0) mode.
    stage: Option<AxiPort>,
    stats: BridgeStats,
}

impl AxiBridge {
    /// Creates a bridge with the given configuration.
    pub fn new(config: BridgeConfig) -> Self {
        let stage = (config.latency > 0).then(|| {
            AxiPort::new(PortConfig {
                addr_capacity: config.addr_capacity,
                data_capacity: config.data_capacity,
                resp_capacity: config.resp_capacity,
                latency: config.latency,
            })
        });
        Self {
            config,
            stage,
            stats: BridgeStats::default(),
        }
    }

    /// A zero-latency wire bridge.
    pub fn wire() -> Self {
        Self::new(BridgeConfig::wire())
    }

    /// The bridge's configuration.
    pub fn config(&self) -> &BridgeConfig {
        &self.config
    }

    /// Directional beat counters.
    pub fn stats(&self) -> BridgeStats {
        self.stats
    }

    /// Whether no beats are staged inside the bridge.
    pub fn is_idle(&self) -> bool {
        self.stage.as_ref().is_none_or(AxiPort::is_idle)
    }

    /// Earliest cycle a staged beat becomes visible at the bridge
    /// output, or `None` when nothing is staged (event-horizon hint for
    /// the fast-forward scheduler; wire bridges hold no state and are
    /// purely reactive).
    pub fn next_event(&self) -> Option<Cycle> {
        self.stage.as_ref().and_then(AxiPort::next_ready_at)
    }

    /// Moves every beat that can legally cross this cycle: requests
    /// from `upstream` (a master port) down into `downstream` (a slave
    /// port), responses the other way. Returns `true` if anything
    /// moved. Call exactly once per cycle, after the upstream component
    /// ticked and before the downstream one does (the topology engine's
    /// schedule).
    pub fn transfer(
        &mut self,
        now: Cycle,
        upstream: &mut AxiPort,
        downstream: &mut AxiPort,
    ) -> bool {
        match self.stage.take() {
            None => self.transfer_wire(now, upstream, downstream),
            Some(mut stage) => {
                let progress = self.transfer_staged(now, &mut stage, upstream, downstream);
                self.stage = Some(stage);
                progress
            }
        }
    }

    /// Wire mode: beats cross directly, exactly like the hand-rolled
    /// adapter the hierarchy test used to carry.
    fn transfer_wire(&mut self, now: Cycle, up: &mut AxiPort, down: &mut AxiPort) -> bool {
        let mut progress = false;
        // Requests flow down.
        while up.ar.has_ready(now) && !down.ar.is_full() {
            let mut b = up.ar.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.ar.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while up.aw.has_ready(now) && !down.aw.is_full() {
            let mut b = up.aw.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.aw.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while up.w.has_ready(now) && !down.w.is_full() {
            let mut b = up.w.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.w.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        // Responses flow up.
        while down.r.has_ready(now) && !up.r.is_full() {
            let mut b = down.r.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.r.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        while down.b.has_ready(now) && !up.b.is_full() {
            let mut b = down.b.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.b.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        progress
    }

    /// Registered mode: drain the stage toward its destination first,
    /// then accept newly ready beats into the stage — so a beat spends
    /// exactly `latency` cycles inside the bridge when the far side has
    /// space.
    fn transfer_staged(
        &mut self,
        now: Cycle,
        stage: &mut AxiPort,
        up: &mut AxiPort,
        down: &mut AxiPort,
    ) -> bool {
        let mut progress = false;
        // Stage → downstream (requests leave the bridge).
        while stage.ar.has_ready(now) && !down.ar.is_full() {
            let mut b = stage.ar.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.ar.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while stage.aw.has_ready(now) && !down.aw.is_full() {
            let mut b = stage.aw.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.aw.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while stage.w.has_ready(now) && !down.w.is_full() {
            let mut b = stage.w.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.w.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        // Stage → upstream (responses leave the bridge).
        while stage.r.has_ready(now) && !up.r.is_full() {
            let mut b = stage.r.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.r.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        while stage.b.has_ready(now) && !up.b.is_full() {
            let mut b = stage.b.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.b.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        // Boundary → stage (beats enter the bridge pipes).
        while up.ar.has_ready(now) && !stage.ar.is_full() {
            let b = up.ar.pop_ready(now).expect("ready");
            stage.ar.push(now, b).expect("space");
            progress = true;
        }
        while up.aw.has_ready(now) && !stage.aw.is_full() {
            let b = up.aw.pop_ready(now).expect("ready");
            stage.aw.push(now, b).expect("space");
            progress = true;
        }
        while up.w.has_ready(now) && !stage.w.is_full() {
            let b = up.w.pop_ready(now).expect("ready");
            stage.w.push(now, b).expect("space");
            progress = true;
        }
        while down.r.has_ready(now) && !stage.r.is_full() {
            let b = down.r.pop_ready(now).expect("ready");
            stage.r.push(now, b).expect("space");
            progress = true;
        }
        while down.b.has_ready(now) && !stage.b.is_full() {
            let b = down.b.pop_ready(now).expect("ready");
            stage.b.push(now, b).expect("space");
            progress = true;
        }
        progress
    }
}

impl Default for AxiBridge {
    fn default() -> Self {
        Self::wire()
    }
}

mod persist_impls {
    use super::{AxiBridge, BridgeConfig, BridgeStats};
    use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};

    impl PersistValue for BridgeConfig {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.latency);
            w.put_usize(self.addr_capacity);
            w.put_usize(self.data_capacity);
            w.put_usize(self.resp_capacity);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                latency: r.take_u64()?,
                addr_capacity: r.take_usize()?,
                data_capacity: r.take_usize()?,
                resp_capacity: r.take_usize()?,
            })
        }
    }

    impl PersistValue for BridgeStats {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.beats_down);
            w.put_u64(self.beats_up);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                beats_down: r.take_u64()?,
                beats_up: r.take_u64()?,
            })
        }
    }

    impl PersistValue for AxiBridge {
        /// A bridge serializes whole (config, staged beats, counters).
        /// Sharded runs reunite their split halves before any snapshot
        /// is taken, so the in-flight shard-mirror state never needs to
        /// cross a snapshot boundary.
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.config.save_value(w);
            self.stage.save_value(w);
            self.stats.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let config = BridgeConfig::load_value(r)?;
            let stage = Option::load_value(r)?;
            let stats = BridgeStats::load_value(r)?;
            if (config.latency > 0) != stage.is_some() {
                return Err(PersistError::Corrupt("bridge stage/latency mismatch"));
            }
            Ok(Self {
                config,
                stage,
                stats,
            })
        }
    }
}

impl AxiBridge {
    /// Splits a registered bridge into its two shard-resident halves
    /// (see the [`ParentHalf`]/[`ChildHalf`] docs for the protocol).
    ///
    /// Beats currently staged in the bridge are migrated into the
    /// consumer-side mirror pipes with their original readiness cycles
    /// intact, and the producer-side entry gates start out charged with
    /// that occupancy — a bridge split mid-stream resumes on exactly
    /// the sequential schedule.
    ///
    /// # Panics
    ///
    /// Panics on a wire (latency 0) bridge — a zero-latency edge has no
    /// lookahead and is never a legal shard boundary.
    pub fn split(self) -> (ParentHalf, ChildHalf) {
        let mut stage = self
            .stage
            .expect("only a registered bridge can be split at a shard boundary");
        let cfg = self.config;
        // Consumer-side mirror + producer-side gate for one channel,
        // seeded with the channel's in-flight contents.
        fn migrate<T: std::fmt::Debug>(
            src: &mut TimedFifo<T>,
            capacity: usize,
            latency: Cycle,
        ) -> (TimedFifo<T>, EntryGate) {
            let mut mirror = TimedFifo::new(capacity, latency);
            let mut gate = EntryGate::new(capacity, latency);
            for (ready_at, beat) in src.drain_scheduled() {
                gate.pushed += 1;
                gate.recent.push_back(ready_at.saturating_sub(latency));
                mirror
                    .push_scheduled(ready_at, beat)
                    .expect("mirror has the staging pipe's capacity");
            }
            // The mirror *is* the staging pipe after a reunite: it must
            // keep the pipe's lifetime counters, not restart them from
            // the migrated occupancy (a mid-run split would otherwise
            // zero them and diverge from an unsplit run's state).
            mirror.inherit_lifetime_stats(src);
            (mirror, gate)
        }
        let (ar, gate_ar) = migrate(&mut stage.ar, cfg.addr_capacity, cfg.latency);
        let (aw, gate_aw) = migrate(&mut stage.aw, cfg.addr_capacity, cfg.latency);
        let (w, gate_w) = migrate(&mut stage.w, cfg.data_capacity, cfg.latency);
        let (r, gate_r) = migrate(&mut stage.r, cfg.data_capacity, cfg.latency);
        let (b, gate_b) = migrate(&mut stage.b, cfg.resp_capacity, cfg.latency);
        let parent = ParentHalf {
            config: cfg,
            baseline: self.stats,
            ar,
            aw,
            w,
            gate_r,
            gate_b,
            out: BridgeBatch::default(),
            popped_ar: 0,
            popped_aw: 0,
            popped_w: 0,
            beats_down: 0,
        };
        let child = ChildHalf {
            latency: cfg.latency,
            r,
            b,
            gate_ar,
            gate_aw,
            gate_w,
            out: BridgeBatch::default(),
            popped_r: 0,
            popped_b: 0,
            beats_up: 0,
        };
        (parent, child)
    }

    /// Reassembles a bridge from its two halves after a sharded run:
    /// the consumer-side mirror pipes *are* the staging pipes (their
    /// entries carry the original push cycles, so residual beats keep
    /// their exact readiness schedule) and the per-half exit counters
    /// fold back into the bridge's beat statistics.
    pub fn reunite(parent: ParentHalf, child: ChildHalf) -> Self {
        debug_assert!(
            parent.out.is_empty() && child.out.is_empty(),
            "exchange any pending batches before reuniting"
        );
        let stage = AxiPort {
            ar: parent.ar,
            aw: parent.aw,
            w: parent.w,
            r: child.r,
            b: child.b,
        };
        Self {
            config: parent.config,
            stage: Some(stage),
            stats: BridgeStats {
                beats_down: parent.baseline.beats_down + parent.beats_down,
                beats_up: parent.baseline.beats_up + child.beats_up,
            },
        }
    }
}

/// In-flight traffic crossing a split bridge during one exchange
/// window: beats that entered the (conceptual) staging pipes, tagged
/// with their original entry cycles, plus the sender's cumulative exit
/// counts from the channels it consumes (which feed the receiver's
/// occupancy gates).
#[derive(Debug, Default)]
pub struct BridgeBatch {
    /// Read-address beats entering the bridge, child → parent.
    pub ar: Vec<(Cycle, crate::beat::ArBeat)>,
    /// Write-address beats entering the bridge, child → parent.
    pub aw: Vec<(Cycle, crate::beat::AwBeat)>,
    /// Write-data beats entering the bridge, child → parent.
    pub w: Vec<(Cycle, crate::beat::WBeat)>,
    /// Read-data beats entering the bridge, parent → child.
    pub r: Vec<(Cycle, crate::beat::RBeat)>,
    /// Write-response beats entering the bridge, parent → child.
    pub b: Vec<(Cycle, crate::beat::BBeat)>,
    /// Cumulative beats the sender has popped out of each stage pipe,
    /// lifetime (confirms space to the opposite half's entry gates).
    pub popped: [u64; 5],
}

impl BridgeBatch {
    /// Whether the batch carries neither beats nor new exit
    /// confirmations (an all-zero `popped` array is only meaningful
    /// relative to the receiver's state, so only beat payloads count).
    pub fn is_empty(&self) -> bool {
        self.ar.is_empty()
            && self.aw.is_empty()
            && self.w.is_empty()
            && self.r.is_empty()
            && self.b.is_empty()
    }

    /// Total beats carried.
    pub fn beats(&self) -> usize {
        self.ar.len() + self.aw.len() + self.w.len() + self.r.len() + self.b.len()
    }
}

/// Conservative admission control for pushing into a stage pipe whose
/// consumer lives on another shard.
///
/// The producer knows its own lifetime pushes exactly; the consumer's
/// pops are only confirmed up to the last exchange. Between exchanges
/// the true occupancy is bracketed:
///
/// * **upper bound** — own pushes minus *confirmed* pops (the consumer
///   can only have popped more, never less);
/// * **lower bound** — pushes newer than `now − latency`: their
///   `ready_at` lies in the future, so the consumer cannot have popped
///   them yet no matter what.
///
/// `upper < capacity` proves the sequential bridge would accept the
/// beat; `lower ≥ capacity` proves it would stall. The remaining
/// ambiguous band (pipe full per confirmed counts, but old-enough beats
/// might have drained) is resolved by stalling conservatively and
/// counting the event — a run that finishes with zero
/// [ambiguous stalls](ParentHalf::ambiguous_stalls) is provably
/// byte-identical to the sequential schedule.
#[derive(Debug)]
struct EntryGate {
    capacity: usize,
    latency: Cycle,
    pushed: u64,
    confirmed_popped: u64,
    /// Entry cycles of recent pushes, pruned to `(now − latency, now]`.
    recent: std::collections::VecDeque<Cycle>,
    ambiguous_stalls: u64,
}

impl EntryGate {
    fn new(capacity: usize, latency: Cycle) -> Self {
        Self {
            capacity,
            latency,
            pushed: 0,
            confirmed_popped: 0,
            recent: std::collections::VecDeque::new(),
            ambiguous_stalls: 0,
        }
    }

    /// Attempts to admit one beat at cycle `now`; returns whether the
    /// push is proven legal.
    fn try_push(&mut self, now: Cycle) -> bool {
        while self
            .recent
            .front()
            .is_some_and(|&c| c + self.latency <= now)
        {
            self.recent.pop_front();
        }
        let upper = (self.pushed - self.confirmed_popped) as usize;
        if upper < self.capacity {
            self.pushed += 1;
            self.recent.push_back(now);
            true
        } else {
            if self.recent.len() < self.capacity {
                self.ambiguous_stalls += 1;
            }
            false
        }
    }

    fn confirm(&mut self, popped: u64) {
        self.confirmed_popped = self.confirmed_popped.max(popped);
    }
}

/// Drains ready beats from a consumer-side mirror pipe into its
/// destination queue, restamping each beat with the crossing cycle.
fn drain_exits<T: std::fmt::Debug>(
    now: Cycle,
    mirror: &mut TimedFifo<T>,
    dest: &mut TimedFifo<T>,
    mut stamp: impl FnMut(&mut T, Cycle),
    popped: &mut u64,
    beats: &mut u64,
) -> bool {
    let mut moved = false;
    while mirror.has_ready(now) && !dest.is_full() {
        let mut beat = mirror.pop_ready(now).expect("ready");
        stamp(&mut beat, now);
        dest.push(now, beat).expect("space");
        *popped += 1;
        *beats += 1;
        moved = true;
    }
    moved
}

/// Moves ready boundary beats into the outgoing batch, subject to the
/// entry gate.
fn drain_entries<T>(
    now: Cycle,
    src: &mut TimedFifo<T>,
    gate: &mut EntryGate,
    out: &mut Vec<(Cycle, T)>,
) -> bool {
    let mut moved = false;
    while src.has_ready(now) {
        if !gate.try_push(now) {
            break;
        }
        out.push((now, src.pop_ready(now).expect("ready")));
        moved = true;
    }
    moved
}

/// The half of a split [`AxiBridge`] that lives in the *parent* shard
/// (the side owning the downstream slave port).
///
/// It owns consumer-side mirrors of the request pipes — real
/// [`TimedFifo`]s holding the beats the child shard sent, pushed at
/// their original entry cycles so readiness and ordering are exactly
/// the sequential stage's — and entry gates for the response pipes it
/// produces into. Drive it with [`ParentHalf::run_cycle`] at the same
/// point of the cycle where the sequential engine would call
/// [`AxiBridge::transfer`].
#[derive(Debug)]
pub struct ParentHalf {
    config: BridgeConfig,
    baseline: BridgeStats,
    ar: TimedFifo<crate::beat::ArBeat>,
    aw: TimedFifo<crate::beat::AwBeat>,
    w: TimedFifo<crate::beat::WBeat>,
    gate_r: EntryGate,
    gate_b: EntryGate,
    out: BridgeBatch,
    popped_ar: u64,
    popped_aw: u64,
    popped_w: u64,
    beats_down: u64,
}

impl ParentHalf {
    /// Runs the parent-side bridge work for one cycle against the
    /// parent interconnect's slave port: stage → downstream request
    /// exits, then downstream → stage response entries (the sequential
    /// `transfer` order restricted to this side). Returns `true` when
    /// any beat moved.
    pub fn run_cycle(&mut self, now: Cycle, parent_port: &mut AxiPort) -> bool {
        let mut moved = false;
        moved |= drain_exits(
            now,
            &mut self.ar,
            &mut parent_port.ar,
            |b, c| b.issued_at = c,
            &mut self.popped_ar,
            &mut self.beats_down,
        );
        moved |= drain_exits(
            now,
            &mut self.aw,
            &mut parent_port.aw,
            |b, c| b.issued_at = c,
            &mut self.popped_aw,
            &mut self.beats_down,
        );
        moved |= drain_exits(
            now,
            &mut self.w,
            &mut parent_port.w,
            |b, c| b.issued_at = c,
            &mut self.popped_w,
            &mut self.beats_down,
        );
        moved |= drain_entries(now, &mut parent_port.r, &mut self.gate_r, &mut self.out.r);
        moved |= drain_entries(now, &mut parent_port.b, &mut self.gate_b, &mut self.out.b);
        moved
    }

    /// Takes the accumulated outgoing batch (response beats plus
    /// request-pipe exit confirmations) for delivery to the child half.
    pub fn take_batch(&mut self) -> BridgeBatch {
        let mut batch = std::mem::take(&mut self.out);
        batch.popped = [self.popped_ar, self.popped_aw, self.popped_w, 0, 0];
        batch
    }

    /// Accepts a batch from the child half: request beats enter the
    /// mirror pipes at their original cycles; response-pipe exit
    /// confirmations widen the entry gates.
    pub fn deliver(&mut self, batch: BridgeBatch) {
        for (cycle, beat) in batch.ar {
            self.ar.push(cycle, beat).expect("gated by child half");
        }
        for (cycle, beat) in batch.aw {
            self.aw.push(cycle, beat).expect("gated by child half");
        }
        for (cycle, beat) in batch.w {
            self.w.push(cycle, beat).expect("gated by child half");
        }
        debug_assert!(batch.r.is_empty() && batch.b.is_empty());
        self.gate_r.confirm(batch.popped[3]);
        self.gate_b.confirm(batch.popped[4]);
    }

    /// Earliest cycle a mirrored request beat becomes ready to exit
    /// downstream, or `None` when the mirrors are empty.
    pub fn next_event(&self) -> Option<Cycle> {
        [
            self.ar.next_ready_at(),
            self.aw.next_ready_at(),
            self.w.next_ready_at(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Response-pipe admissions that had to assume "full" because the
    /// child's exits were not yet confirmed. Zero means this half's
    /// schedule is proven identical to the sequential bridge's.
    pub fn ambiguous_stalls(&self) -> u64 {
        self.gate_r.ambiguous_stalls + self.gate_b.ambiguous_stalls
    }
}

/// The half of a split [`AxiBridge`] that lives in the *child* shard
/// (the side owning the upstream master port). Mirror pipes for the
/// response channels, entry gates for the request channels; see
/// [`ParentHalf`].
#[derive(Debug)]
pub struct ChildHalf {
    latency: Cycle,
    r: TimedFifo<crate::beat::RBeat>,
    b: TimedFifo<crate::beat::BBeat>,
    gate_ar: EntryGate,
    gate_aw: EntryGate,
    gate_w: EntryGate,
    out: BridgeBatch,
    popped_r: u64,
    popped_b: u64,
    beats_up: u64,
}

impl ChildHalf {
    /// Runs the child-side bridge work for one cycle against the child
    /// interconnect's master port: stage → upstream response exits,
    /// then upstream → stage request entries. Returns `true` when any
    /// beat moved.
    pub fn run_cycle(&mut self, now: Cycle, child_mem_port: &mut AxiPort) -> bool {
        let mut moved = false;
        moved |= drain_exits(
            now,
            &mut self.r,
            &mut child_mem_port.r,
            |b, c| b.hopped_at = c,
            &mut self.popped_r,
            &mut self.beats_up,
        );
        moved |= drain_exits(
            now,
            &mut self.b,
            &mut child_mem_port.b,
            |b, c| b.hopped_at = c,
            &mut self.popped_b,
            &mut self.beats_up,
        );
        moved |= drain_entries(
            now,
            &mut child_mem_port.ar,
            &mut self.gate_ar,
            &mut self.out.ar,
        );
        moved |= drain_entries(
            now,
            &mut child_mem_port.aw,
            &mut self.gate_aw,
            &mut self.out.aw,
        );
        moved |= drain_entries(
            now,
            &mut child_mem_port.w,
            &mut self.gate_w,
            &mut self.out.w,
        );
        moved
    }

    /// Takes the accumulated outgoing batch (request beats plus
    /// response-pipe exit confirmations) for delivery to the parent
    /// half.
    pub fn take_batch(&mut self) -> BridgeBatch {
        let mut batch = std::mem::take(&mut self.out);
        batch.popped = [0, 0, 0, self.popped_r, self.popped_b];
        batch
    }

    /// Accepts a batch from the parent half.
    pub fn deliver(&mut self, batch: BridgeBatch) {
        for (cycle, beat) in batch.r {
            self.r.push(cycle, beat).expect("gated by parent half");
        }
        for (cycle, beat) in batch.b {
            self.b.push(cycle, beat).expect("gated by parent half");
        }
        debug_assert!(batch.ar.is_empty() && batch.aw.is_empty() && batch.w.is_empty());
        self.gate_ar.confirm(batch.popped[0]);
        self.gate_aw.confirm(batch.popped[1]);
        self.gate_w.confirm(batch.popped[2]);
    }

    /// Earliest cycle a mirrored response beat becomes ready to exit
    /// upstream, or `None` when the mirrors are empty.
    pub fn next_event(&self) -> Option<Cycle> {
        [self.r.next_ready_at(), self.b.next_ready_at()]
            .into_iter()
            .flatten()
            .min()
    }

    /// The bridge latency, which is also this edge's lookahead: a beat
    /// admitted at cycle `c` cannot exit before `c + latency`.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Request-pipe admissions that had to assume "full" (see
    /// [`ParentHalf::ambiguous_stalls`]).
    pub fn ambiguous_stalls(&self) -> u64 {
        self.gate_ar.ambiguous_stalls + self.gate_aw.ambiguous_stalls + self.gate_w.ambiguous_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beat::{ArBeat, BBeat, RBeat};
    use crate::types::{AxiId, BurstSize};

    fn ports() -> (AxiPort, AxiPort) {
        (AxiPort::default(), AxiPort::default())
    }

    #[test]
    fn wire_bridge_crosses_within_the_cycle() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::wire();
        up.ar.push(0, ArBeat::new(0x40, 1, BurstSize::B4)).unwrap();
        // Zero-latency boundary queues: ready in the push cycle.
        assert!(bridge.transfer(0, &mut up, &mut down));
        assert!(down.ar.has_ready(0));
        assert!(up.ar.is_empty());
        assert_eq!(bridge.stats().beats_down, 1);
        assert!(bridge.is_idle());
        assert_eq!(bridge.next_event(), None);
    }

    #[test]
    fn registered_bridge_adds_exactly_its_latency() {
        for latency in [1u64, 3] {
            let (mut up, mut down) = ports();
            let mut bridge = AxiBridge::new(BridgeConfig::wire().latency(latency));
            up.ar.push(0, ArBeat::new(0x80, 1, BurstSize::B4)).unwrap();
            let mut arrival = None;
            for now in 0..20 {
                bridge.transfer(now, &mut up, &mut down);
                if arrival.is_none() && down.ar.has_ready(now) {
                    arrival = Some(now);
                }
            }
            // Ingested at cycle 0, visible at the stage output at
            // `latency`, pushed downstream the same cycle.
            assert_eq!(arrival, Some(latency), "latency {latency}");
        }
    }

    #[test]
    fn staged_beats_report_a_next_event() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::new(BridgeConfig::wire().latency(4));
        up.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        bridge.transfer(0, &mut up, &mut down);
        assert!(!bridge.is_idle());
        assert_eq!(bridge.next_event(), Some(4));
    }

    #[test]
    fn responses_flow_up_and_are_restamped() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::wire();
        let r = RBeat::new(AxiId(3), vec![0; 4], true)
            .with_uid(7)
            .with_hopped_at(2);
        down.r.push(5, r).unwrap();
        assert!(bridge.transfer(5, &mut up, &mut down));
        let crossed = up.r.pop_ready(5).expect("crossed");
        // New observability epoch: the hop cycle replaces the
        // downstream stamp; the uid is untouched (each interconnect
        // re-assigns its own at ingest).
        assert_eq!(crossed.hopped_at, 5);
        assert_eq!(crossed.uid, 7);
        assert_eq!(bridge.stats().beats_up, 1);
    }

    #[test]
    fn requests_are_restamped_with_the_crossing_cycle() {
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::wire();
        up.ar
            .push(9, ArBeat::new(0x100, 4, BurstSize::B16).with_issued_at(1))
            .unwrap();
        bridge.transfer(9, &mut up, &mut down);
        assert_eq!(down.ar.pop_ready(9).expect("crossed").issued_at, 9);
    }

    /// `(cycle, channel)` arrival log used by the split-vs-sequential
    /// comparisons.
    type ArrivalLog = Vec<(u64, &'static str)>;

    /// Drives a split bridge the way the sharded scheduler does —
    /// window-synchronous, exchanging batches every `window` cycles —
    /// while the sequential bridge runs the same boundary traffic, and
    /// returns the per-cycle arrival log of both.
    fn run_split_vs_sequential(
        latency: u64,
        window: u64,
        cycles: u64,
        mut feed: impl FnMut(u64, &mut AxiPort, &mut AxiPort),
    ) -> (ArrivalLog, ArrivalLog) {
        let drain = |now: u64, up: &mut AxiPort, down: &mut AxiPort, log: &mut ArrivalLog| {
            while down.ar.pop_ready(now).is_some() {
                log.push((now, "ar"));
            }
            while down.aw.pop_ready(now).is_some() {
                log.push((now, "aw"));
            }
            while down.w.pop_ready(now).is_some() {
                log.push((now, "w"));
            }
            while up.r.pop_ready(now).is_some() {
                log.push((now, "r"));
            }
            while up.b.pop_ready(now).is_some() {
                log.push((now, "b"));
            }
        };

        // Sequential reference.
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::new(BridgeConfig::wire().latency(latency));
        let mut seq_log = Vec::new();
        for now in 0..cycles {
            feed(now, &mut up, &mut down);
            bridge.transfer(now, &mut up, &mut down);
            drain(now, &mut up, &mut down, &mut seq_log);
        }

        // Split halves, exchanged every `window` cycles.
        let (mut up, mut down) = ports();
        let (mut parent, mut child) = AxiBridge::new(BridgeConfig::wire().latency(latency)).split();
        let mut split_log = Vec::new();
        let mut now = 0;
        while now < cycles {
            let to = (now + window).min(cycles);
            for t in now..to {
                feed(t, &mut up, &mut down);
                // Parent and child shards each run their half; the
                // within-cycle order across halves is immaterial (they
                // share no state between exchanges).
                parent.run_cycle(t, &mut down);
                child.run_cycle(t, &mut up);
                drain(t, &mut up, &mut down, &mut split_log);
            }
            let to_parent = child.take_batch();
            let to_child = parent.take_batch();
            parent.deliver(to_parent);
            child.deliver(to_child);
            now = to;
        }
        assert_eq!(parent.ambiguous_stalls(), 0);
        assert_eq!(child.ambiguous_stalls(), 0);
        (seq_log, split_log)
    }

    #[test]
    fn split_halves_match_the_sequential_bridge_byte_for_byte() {
        for (latency, window) in [(1, 1), (2, 2), (4, 2), (4, 4), (3, 1)] {
            let (seq, split) = run_split_vs_sequential(latency, window, 60, |now, up, down| {
                if now % 5 == 0 {
                    up.ar
                        .push(now, ArBeat::new(0x100 + now, 1, BurstSize::B4))
                        .ok();
                }
                if now % 7 == 0 {
                    down.r
                        .push(now, RBeat::new(AxiId(1), vec![0; 4], true))
                        .ok();
                }
            });
            assert_eq!(seq, split, "latency {latency} window {window}");
        }
    }

    #[test]
    fn no_beat_crosses_a_split_bridge_faster_than_its_latency() {
        // The safety property the sharded scheduler's lookahead relies
        // on: a beat admitted at cycle c is not observable downstream
        // before c + N, for every window ≤ N.
        for latency in [1u64, 2, 4] {
            for window in 1..=latency {
                let (_, split) = run_split_vs_sequential(latency, window, 40, |now, up, _| {
                    if now == 3 {
                        up.ar.push(now, ArBeat::new(0x40, 1, BurstSize::B4)).ok();
                    }
                });
                let (arrived, _) = split[0];
                assert_eq!(
                    arrived,
                    3 + latency,
                    "latency {latency} window {window}: beat must spend exactly its latency in flight"
                );
            }
        }
    }

    #[test]
    fn entry_gate_stalls_exactly_like_a_full_stage() {
        // Saturate the B pipe (capacity 8): the sequential stage stalls
        // entries while full, and the split half must stall the same
        // beats on confirmed occupancy alone when the consumer never
        // drains (downstream full ⇒ pops impossible ⇒ no ambiguity).
        let (seq, split) = run_split_vs_sequential(2, 2, 30, |now, _, down| {
            if now < 12 {
                down.b.push(now, BBeat::new(AxiId(0)).with_uid(now)).ok();
            }
        });
        assert_eq!(seq, split);
    }

    #[test]
    fn reunite_restores_residual_beats_and_stats() {
        let (mut up, mut down) = ports();
        let (mut parent, mut child) = AxiBridge::new(BridgeConfig::wire().latency(4)).split();
        up.ar.push(0, ArBeat::new(0x80, 1, BurstSize::B4)).unwrap();
        up.ar.push(1, ArBeat::new(0xC0, 1, BurstSize::B4)).unwrap();
        for t in 0..3 {
            parent.run_cycle(t, &mut down);
            child.run_cycle(t, &mut up);
        }
        let batch = child.take_batch();
        assert_eq!(batch.beats(), 2);
        parent.deliver(batch);
        child.deliver(parent.take_batch());
        // Mid-flight: both beats are inside the (split) stage.
        let mut bridge = AxiBridge::reunite(parent, child);
        assert!(!bridge.is_idle());
        // Entered at cycles 0 and 1 with latency 4: visible at 4 and 5.
        assert_eq!(bridge.next_event(), Some(4));
        bridge.transfer(4, &mut up, &mut down);
        assert_eq!(down.ar.pop_ready(4).expect("first beat").addr, 0x80);
        bridge.transfer(5, &mut up, &mut down);
        assert_eq!(down.ar.pop_ready(5).expect("second beat").addr, 0xC0);
        assert_eq!(bridge.stats().beats_down, 2);
    }

    #[test]
    #[should_panic(expected = "registered bridge")]
    fn wire_bridge_cannot_be_split() {
        let _ = AxiBridge::wire().split();
    }

    #[test]
    fn split_mid_stream_preserves_the_staged_schedule() {
        // A bridge split while beats are in flight (a sharded run
        // following a sequential one) must keep producing the exact
        // sequential schedule: the staged beats migrate into the
        // mirrors with their readiness cycles intact and the entry
        // gates start charged with their occupancy.
        let latency = 4u64;
        let cycles = 40u64;
        let split_at = 10u64;
        let feed = |now: u64, up: &mut AxiPort, down: &mut AxiPort| {
            if now.is_multiple_of(3) && now < 30 {
                up.ar
                    .push(now, ArBeat::new(0x200 + now, 1, BurstSize::B4))
                    .ok();
            }
            if now % 4 == 1 {
                down.r
                    .push(now, RBeat::new(AxiId(2), vec![0; 4], true))
                    .ok();
            }
        };
        let drain =
            |now: u64, up: &mut AxiPort, down: &mut AxiPort, log: &mut Vec<(u64, &'static str)>| {
                while down.ar.pop_ready(now).is_some() {
                    log.push((now, "ar"));
                }
                while up.r.pop_ready(now).is_some() {
                    log.push((now, "r"));
                }
            };

        // Sequential reference over the full horizon.
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::new(BridgeConfig::wire().latency(latency));
        let mut seq_log = Vec::new();
        for now in 0..cycles {
            feed(now, &mut up, &mut down);
            bridge.transfer(now, &mut up, &mut down);
            drain(now, &mut up, &mut down, &mut seq_log);
        }

        // Sequential until `split_at`, then split mid-flight and run
        // window-synchronous to the end.
        let (mut up, mut down) = ports();
        let mut bridge = AxiBridge::new(BridgeConfig::wire().latency(latency));
        let mut log = Vec::new();
        for now in 0..split_at {
            feed(now, &mut up, &mut down);
            bridge.transfer(now, &mut up, &mut down);
            drain(now, &mut up, &mut down, &mut log);
        }
        assert!(!bridge.is_idle(), "test must split a non-quiescent bridge");
        let (mut parent, mut child) = bridge.split();
        let mut now = split_at;
        while now < cycles {
            let to = (now + latency).min(cycles);
            for t in now..to {
                feed(t, &mut up, &mut down);
                parent.run_cycle(t, &mut down);
                child.run_cycle(t, &mut up);
                drain(t, &mut up, &mut down, &mut log);
            }
            parent.deliver(child.take_batch());
            child.deliver(parent.take_batch());
            now = to;
        }
        assert_eq!(parent.ambiguous_stalls(), 0);
        assert_eq!(child.ambiguous_stalls(), 0);
        assert_eq!(seq_log, log);
    }

    #[test]
    fn backpressure_holds_beats_without_loss() {
        let (mut up, mut down) = ports();
        // Downstream AR queue of capacity 1, already full.
        down.ar = sim::TimedFifo::new(1, 0);
        down.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        let mut bridge = AxiBridge::wire();
        up.ar.push(0, ArBeat::new(0x40, 1, BurstSize::B4)).unwrap();
        assert!(!bridge.transfer(0, &mut up, &mut down));
        assert_eq!(up.ar.len(), 1, "beat must stay upstream");
        // Space opens up: the beat crosses.
        down.ar.pop_ready(0);
        assert!(bridge.transfer(0, &mut up, &mut down));
    }
}
