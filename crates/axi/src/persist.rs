//! [`PersistValue`] implementations for the AXI vocabulary: vocabulary
//! types, channel beats (with their sim-only `tag`/`uid`/timestamp
//! metadata) and whole port boundaries.
//!
//! In-flight transactions are exactly what makes snapshot/restore hard —
//! a beat frozen mid-fabric must resume with its original uid, hop
//! timestamps and payload bytes so post-restore latency measurements and
//! fingerprints are bit-identical to an uninterrupted run. Everything
//! here is plain data, so it all takes the value shape (reconstructable
//! from bytes alone).

use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};

use crate::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};
use crate::payload::Payload;
use crate::port::AxiPort;
use crate::types::{AxiId, AxiVersion, BurstKind, BurstSize, PortId, Resp};

impl PersistValue for PortId {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.0);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self(r.take_usize()?))
    }
}

impl PersistValue for AxiId {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u16(self.0);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self(r.take_u16()?))
    }
}

impl PersistValue for AxiVersion {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            AxiVersion::Axi3 => 0,
            AxiVersion::Axi4 => 1,
        });
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(AxiVersion::Axi3),
            1 => Ok(AxiVersion::Axi4),
            _ => Err(PersistError::Corrupt("AxiVersion discriminant")),
        }
    }
}

impl PersistValue for BurstKind {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            BurstKind::Fixed => 0,
            BurstKind::Incr => 1,
            BurstKind::Wrap => 2,
        });
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(BurstKind::Fixed),
            1 => Ok(BurstKind::Incr),
            2 => Ok(BurstKind::Wrap),
            _ => Err(PersistError::Corrupt("BurstKind discriminant")),
        }
    }
}

impl PersistValue for BurstSize {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u8(self.encoding());
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let enc = r.take_u8()?;
        if enc > 7 {
            return Err(PersistError::Corrupt("BurstSize encoding"));
        }
        BurstSize::from_bytes(1u64 << enc).map_err(|_| PersistError::Corrupt("BurstSize encoding"))
    }
}

impl PersistValue for Resp {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            Resp::Okay => 0,
            Resp::ExOkay => 1,
            Resp::SlvErr => 2,
            Resp::DecErr => 3,
        });
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(Resp::Okay),
            1 => Ok(Resp::ExOkay),
            2 => Ok(Resp::SlvErr),
            3 => Ok(Resp::DecErr),
            _ => Err(PersistError::Corrupt("Resp discriminant")),
        }
    }
}

impl PersistValue for Payload {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_bytes(self.as_slice());
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Payload::from(r.take_bytes()?))
    }
}

impl PersistValue for ArBeat {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.id.save_value(w);
        w.put_u64(self.addr);
        w.put_u32(self.len);
        self.size.save_value(w);
        self.burst.save_value(w);
        w.put_u8(self.qos);
        w.put_u64(self.tag);
        w.put_u64(self.issued_at);
        w.put_u64(self.uid);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            id: AxiId::load_value(r)?,
            addr: r.take_u64()?,
            len: r.take_u32()?,
            size: BurstSize::load_value(r)?,
            burst: BurstKind::load_value(r)?,
            qos: r.take_u8()?,
            tag: r.take_u64()?,
            issued_at: r.take_u64()?,
            uid: r.take_u64()?,
        })
    }
}

impl PersistValue for AwBeat {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.id.save_value(w);
        w.put_u64(self.addr);
        w.put_u32(self.len);
        self.size.save_value(w);
        self.burst.save_value(w);
        w.put_u8(self.qos);
        w.put_u64(self.tag);
        w.put_u64(self.issued_at);
        w.put_u64(self.uid);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            id: AxiId::load_value(r)?,
            addr: r.take_u64()?,
            len: r.take_u32()?,
            size: BurstSize::load_value(r)?,
            burst: BurstKind::load_value(r)?,
            qos: r.take_u8()?,
            tag: r.take_u64()?,
            issued_at: r.take_u64()?,
            uid: r.take_u64()?,
        })
    }
}

impl PersistValue for WBeat {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.data.save_value(w);
        w.put_u128(self.strb);
        w.put_bool(self.last);
        w.put_u64(self.tag);
        w.put_u64(self.issued_at);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            data: Payload::load_value(r)?,
            strb: r.take_u128()?,
            last: r.take_bool()?,
            tag: r.take_u64()?,
            issued_at: r.take_u64()?,
        })
    }
}

impl PersistValue for RBeat {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.id.save_value(w);
        self.data.save_value(w);
        self.resp.save_value(w);
        w.put_bool(self.last);
        w.put_u64(self.tag);
        w.put_u64(self.issued_at);
        w.put_u64(self.uid);
        w.put_u64(self.hopped_at);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            id: AxiId::load_value(r)?,
            data: Payload::load_value(r)?,
            resp: Resp::load_value(r)?,
            last: r.take_bool()?,
            tag: r.take_u64()?,
            issued_at: r.take_u64()?,
            uid: r.take_u64()?,
            hopped_at: r.take_u64()?,
        })
    }
}

impl PersistValue for BBeat {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.id.save_value(w);
        self.resp.save_value(w);
        w.put_u64(self.tag);
        w.put_u64(self.issued_at);
        w.put_u64(self.uid);
        w.put_u64(self.hopped_at);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            id: AxiId::load_value(r)?,
            resp: Resp::load_value(r)?,
            tag: r.take_u64()?,
            issued_at: r.take_u64()?,
            uid: r.take_u64()?,
            hopped_at: r.take_u64()?,
        })
    }
}

impl PersistValue for AxiPort {
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.ar.save_value(w);
        self.aw.save_value(w);
        self.w.save_value(w);
        self.r.save_value(w);
        self.b.save_value(w);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            ar: PersistValue::load_value(r)?,
            aw: PersistValue::load_value(r)?,
            w: PersistValue::load_value(r)?,
            r: PersistValue::load_value(r)?,
            b: PersistValue::load_value(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: PersistValue>(v: &T) -> T {
        let mut w = SnapshotWriter::new();
        v.save_value(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let out = T::load_value(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "trailing bytes after load");
        out
    }

    #[test]
    fn vocabulary_roundtrips() {
        for v in [AxiVersion::Axi3, AxiVersion::Axi4] {
            assert_eq!(roundtrip(&v), v);
        }
        for k in [BurstKind::Fixed, BurstKind::Incr, BurstKind::Wrap] {
            assert_eq!(roundtrip(&k), k);
        }
        for s in BurstSize::ALL {
            assert_eq!(roundtrip(&s), s);
        }
        for resp in [Resp::Okay, Resp::ExOkay, Resp::SlvErr, Resp::DecErr] {
            assert_eq!(roundtrip(&resp), resp);
        }
        assert_eq!(roundtrip(&PortId(9)), PortId(9));
        assert_eq!(roundtrip(&AxiId(1234)), AxiId(1234));
    }

    #[test]
    fn beats_keep_observability_metadata() {
        let ar = ArBeat::new(0x4000, 16, BurstSize::B16)
            .with_id(AxiId(5))
            .with_tag(77)
            .with_issued_at(1000)
            .with_uid(42);
        assert_eq!(roundtrip(&ar), ar);
        assert_eq!(roundtrip(&ar).uid, 42);

        let rb = RBeat::new(AxiId(5), vec![1, 2, 3, 4], true)
            .with_tag(77)
            .with_uid(42)
            .with_hopped_at(1234);
        let back = roundtrip(&rb);
        // Equality excludes uid/hopped_at, so check them explicitly.
        assert_eq!(back, rb);
        assert_eq!(back.uid, 42);
        assert_eq!(back.hopped_at, 1234);

        let bb = BBeat::new(AxiId(2)).with_uid(9).with_hopped_at(55);
        let back = roundtrip(&bb);
        assert_eq!(back.uid, 9);
        assert_eq!(back.hopped_at, 55);
    }

    #[test]
    fn payload_spill_and_inline_roundtrip() {
        let small = Payload::from_fn(8, |i| i as u8);
        assert_eq!(roundtrip(&small), small);
        let big = Payload::from_fn(100, |i| (i * 3) as u8);
        assert_eq!(roundtrip(&big), big);
    }

    #[test]
    fn port_with_in_flight_beats_roundtrips() {
        let mut port = AxiPort::default();
        port.ar
            .push(10, ArBeat::new(0, 4, BurstSize::B4).with_uid(1))
            .unwrap();
        port.w
            .push(11, WBeat::new(vec![9u8; 4], true).with_tag(3))
            .unwrap();
        port.r
            .push(
                12,
                RBeat::new(AxiId(0), vec![7u8; 4], true).with_hopped_at(12),
            )
            .unwrap();
        let back = roundtrip(&port);
        assert_eq!(back.occupancy(), 3);
        assert_eq!(back.lifetime_activity(), port.lifetime_activity());
        assert_eq!(back.next_ready_at(), port.next_ready_at());
    }
}
