//! Behavioral model of the AMBA AXI protocol (AXI3/AXI4 + AXI4-Lite).
//!
//! This crate is the protocol substrate of the AXI HyperConnect
//! reproduction. It models the five independent AXI channels (AR, AW, W,
//! R, B) at *beat* granularity:
//!
//! * [`beat`] — the per-channel payloads ([`ArBeat`], [`AwBeat`],
//!   [`WBeat`], [`RBeat`], [`BBeat`]);
//! * [`bridge`] — the latency-configurable AXI-to-AXI adapter
//!   ([`AxiBridge`]) the topology layer infers for cascaded
//!   interconnects;
//! * [`burst`] — burst arithmetic: lengths, 4 KiB boundary rule,
//!   splitting a burst into *nominal-size* sub-bursts (the equalization
//!   of Restuccia et al., TECS 2019, used by the HyperConnect's
//!   Transaction Supervisor);
//! * [`txn`] — validated read/write transaction descriptors;
//! * [`port`] — the queue bundle representing one AXI master/slave port
//!   boundary, and the [`AxiInterconnect`] trait implemented by both the
//!   HyperConnect and the SmartConnect baseline;
//! * [`lite`] — the AXI4-Lite control plane used by the hypervisor to
//!   program memory-mapped register files;
//! * [`fault`] — a seeded faulty bridge edge ([`FaultyBridge`]) for
//!   degrading cascaded topologies, and [`retry`] — the capped-backoff
//!   transaction [`RetryPolicy`] with its closed-form completion bound;
//! * [`checker`] — a protocol monitor that asserts channel-ordering
//!   invariants during simulation;
//! * [`observe`] — transaction-level observability: per-hop stamp
//!   events, the [`MetricsRegistry`] aggregating them, and the
//!   bound-violation records a runtime monitor files against the
//!   closed-form worst-case bounds;
//! * [`payload`] — inline small-buffer beat payload storage
//!   ([`Payload`]), the zero-alloc replacement for per-beat `Vec<u8>`.
//!
//! # Example
//!
//! ```
//! use axi::txn::ReadRequest;
//! use axi::types::{AxiVersion, BurstSize};
//!
//! // A 16-beat by 4-byte read: the paper's "16-word burst".
//! let req = ReadRequest::new(0x1000, 16, BurstSize::B4)?;
//! assert_eq!(req.total_bytes(), 64);
//! assert!(req.validate(AxiVersion::Axi4).is_ok());
//! # Ok::<(), axi::types::TxnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beat;
pub mod bridge;
pub mod burst;
pub mod checker;
pub mod fault;
pub mod lite;
pub mod observe;
pub mod payload;
pub mod persist;
pub mod port;
pub mod retry;
pub mod routing;
pub mod txn;
pub mod types;

pub use beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};
pub use bridge::{AxiBridge, BridgeBatch, BridgeConfig, BridgeStats, ChildHalf, ParentHalf};
pub use checker::{Violation, ViolationKind};
pub use fault::{FaultyBridge, FaultyBridgeConfig, FaultyBridgeStats};
pub use observe::{BoundReport, BoundViolation, MetricsRegistry, ObsEvent};
pub use payload::{Payload, PAYLOAD_INLINE};
pub use port::{AxiInterconnect, AxiPort, PortConfig};
pub use retry::RetryPolicy;
pub use types::{AxiId, AxiVersion, BurstKind, BurstSize, PortId, Resp, TxnError};
