//! Response-routing bookkeeping shared by interconnect models.
//!
//! Both the HyperConnect's EXBAR and the SmartConnect baseline route
//! read-data, write-data and write-response traffic *proactively*: the
//! order in which address requests were granted fully determines where
//! the corresponding data/response beats must go, because the memory
//! subsystem serves transactions in order (paper §II and §V-B). The
//! grant order is recorded in a [`RouteQueue`] — the paper's *routing
//! information* stored in "a temporary internal memory of the EXBAR
//! implemented as a circular buffer". Since the flat-arena refactor the
//! backing store literally *is* a circular buffer ([`sim::ring::Ring`]).

use sim::ring::Ring;

/// One grant record: which slave port the transaction came from, plus
/// merge metadata for split (equalized) transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Slave-port index the transaction was granted from.
    pub port: usize,
    /// Whether this sub-transaction is the final fragment of the
    /// original burst (always `true` when no splitting is performed).
    pub final_sub: bool,
    /// The originating transaction's simulation tag.
    pub tag: u64,
    /// The observability `uid` the request carried *at this
    /// interconnect's grant point* (0 = unobserved). Response beats are
    /// restamped with it on the way back up, so in a cascaded topology
    /// every interconnect instance attributes deliveries to its own uid
    /// namespace rather than the one assigned furthest downstream.
    pub uid: u64,
}

/// A FIFO of [`RouteEntry`]s recording transaction grant order.
///
/// # Example
///
/// ```
/// use axi::routing::{RouteEntry, RouteQueue};
///
/// let mut q = RouteQueue::new(4);
/// q.push(RouteEntry { port: 1, final_sub: true, tag: 9, uid: 0 }).unwrap();
/// assert_eq!(q.head().unwrap().port, 1);
/// assert_eq!(q.pop().unwrap().tag, 9);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RouteQueue {
    entries: Ring<RouteEntry>,
    capacity: usize,
}

/// Error returned when a [`RouteQueue`] is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteQueueFull;

impl std::fmt::Display for RouteQueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "route queue is full")
    }
}

impl std::error::Error for RouteQueueFull {}

impl RouteQueue {
    /// Creates a queue bounded at `capacity` in-flight transactions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "route queue capacity must be non-zero");
        Self {
            entries: Ring::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Records a grant.
    ///
    /// # Errors
    ///
    /// Returns [`RouteQueueFull`] when the bound is reached (the arbiter
    /// must stall grants rather than lose routing information).
    pub fn push(&mut self, entry: RouteEntry) -> Result<(), RouteQueueFull> {
        if self.entries.len() >= self.capacity {
            return Err(RouteQueueFull);
        }
        self.entries.push_back(entry);
        Ok(())
    }

    /// The oldest outstanding grant, if any.
    pub fn head(&self) -> Option<&RouteEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest outstanding grant.
    pub fn pop(&mut self) -> Option<RouteEntry> {
        self.entries.pop_front()
    }

    /// Outstanding grants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no grants are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the bound is reached.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Removes all entries (synchronous reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl sim::persist::PersistValue for RouteEntry {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_usize(self.port);
        w.put_bool(self.final_sub);
        w.put_u64(self.tag);
        w.put_u64(self.uid);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            port: r.take_usize()?,
            final_sub: r.take_bool()?,
            tag: r.take_u64()?,
            uid: r.take_u64()?,
        })
    }
}

impl sim::persist::PersistValue for RouteQueue {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_usize(self.capacity);
        self.entries.save_value(w);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        let capacity = r.take_usize()?;
        if capacity == 0 {
            return Err(sim::persist::PersistError::Corrupt(
                "route queue capacity zero",
            ));
        }
        let entries = Ring::load_value(r)?;
        if entries.len() > capacity {
            return Err(sim::persist::PersistError::Corrupt(
                "route queue over capacity",
            ));
        }
        Ok(Self { entries, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(port: usize) -> RouteEntry {
        RouteEntry {
            port,
            final_sub: true,
            tag: 0,
            uid: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = RouteQueue::new(3);
        for p in 0..3 {
            q.push(entry(p)).unwrap();
        }
        assert!(q.is_full());
        for p in 0..3 {
            assert_eq!(q.pop().unwrap().port, p);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_when_full() {
        let mut q = RouteQueue::new(1);
        q.push(entry(0)).unwrap();
        assert_eq!(q.push(entry(1)), Err(RouteQueueFull));
        assert_eq!(RouteQueueFull.to_string(), "route queue is full");
    }

    #[test]
    fn head_does_not_consume() {
        let mut q = RouteQueue::new(2);
        q.push(entry(7)).unwrap();
        assert_eq!(q.head().unwrap().port, 7);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = RouteQueue::new(2);
        q.push(entry(0)).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert!(q.head().is_none());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = RouteQueue::new(0);
    }
}
