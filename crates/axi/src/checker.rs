//! A passive AXI protocol monitor.
//!
//! The monitor observes the beats crossing one AXI boundary (in the
//! reproduction it is wired at the interconnect's master port, i.e. the
//! FPGA-PS interface) and records violations of the channel-ordering
//! rules the models rely on:
//!
//! * every burst transfers exactly `len` data beats, with `LAST` set on
//!   the final beat only;
//! * write data follows its address request (the paper notes data
//!   channels depend on address channels on today's platforms, §II);
//! * responses arrive in request order (in-order memory subsystem);
//! * every R/W data beat carries exactly `AxSIZE` bytes.
//!
//! Violations are collected rather than panicking so integration tests
//! can assert `is_clean()` and print all diagnostics on failure.

use std::collections::VecDeque;

use sim::stats::CounterBank;
use sim::Cycle;

use crate::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};

/// One recorded protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Cycle at which the violation was observed.
    pub cycle: Cycle,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}

/// Category of a structured [`Violation`].
///
/// The discriminants double as indices into a
/// [`sim::stats::CounterBank`] of [`COUNT`](Self::COUNT)
/// slots, which is how the HyperConnect exposes per-port violation
/// counters through its register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Request addressed a region no slave decodes (surfaces as DECERR).
    AddressDecode,
    /// An INCR burst crossed a 4 KiB address boundary.
    Boundary4K,
    /// WLAST asserted on the wrong beat of a write burst.
    WlastMismatch,
    /// Data or response beat inconsistent with the request stream
    /// (orphan beat, ID mismatch, early/late LAST on R).
    StreamIntegrity,
    /// A channel handshake stalled beyond the hang threshold.
    HandshakeHang,
    /// A port demanded more transactions than its reserved budget.
    BudgetOverrun,
    /// An error response (SLVERR/DECERR) crossed the boundary.
    ErrorResponse,
    /// A malformed beat (zero-length burst, wrong beat width).
    Malformed,
}

impl ViolationKind {
    /// Number of violation categories.
    pub const COUNT: usize = 8;

    /// Every category, in index order.
    pub const ALL: [ViolationKind; Self::COUNT] = [
        ViolationKind::AddressDecode,
        ViolationKind::Boundary4K,
        ViolationKind::WlastMismatch,
        ViolationKind::StreamIntegrity,
        ViolationKind::HandshakeHang,
        ViolationKind::BudgetOverrun,
        ViolationKind::ErrorResponse,
        ViolationKind::Malformed,
    ];

    /// Stable index of this category (counter-bank slot).
    pub fn index(self) -> usize {
        match self {
            ViolationKind::AddressDecode => 0,
            ViolationKind::Boundary4K => 1,
            ViolationKind::WlastMismatch => 2,
            ViolationKind::StreamIntegrity => 3,
            ViolationKind::HandshakeHang => 4,
            ViolationKind::BudgetOverrun => 5,
            ViolationKind::ErrorResponse => 6,
            ViolationKind::Malformed => 7,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::AddressDecode => "address-decode",
            ViolationKind::Boundary4K => "4k-boundary",
            ViolationKind::WlastMismatch => "wlast-mismatch",
            ViolationKind::StreamIntegrity => "stream-integrity",
            ViolationKind::HandshakeHang => "handshake-hang",
            ViolationKind::BudgetOverrun => "budget-overrun",
            ViolationKind::ErrorResponse => "error-response",
            ViolationKind::Malformed => "malformed",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured misbehavior report: what happened, when, and on which
/// slave port (when the observer knows it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle at which the violation was observed.
    pub cycle: Cycle,
    /// Slave-port index the offending traffic entered through, when the
    /// observing component is port-attributed.
    pub port: Option<usize>,
    /// Category of the violation.
    pub kind: ViolationKind,
    /// Free-form diagnostic detail.
    pub detail: String,
}

impl Violation {
    /// Creates a violation report with no port attribution.
    pub fn new(cycle: Cycle, kind: ViolationKind, detail: impl Into<String>) -> Self {
        Self {
            cycle,
            port: None,
            kind,
            detail: detail.into(),
        }
    }

    /// Attributes the violation to a slave port.
    pub fn at_port(mut self, port: usize) -> Self {
        self.port = Some(port);
        self
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.port {
            Some(p) => write!(
                f,
                "cycle {} port {}: [{}] {}",
                self.cycle, p, self.kind, self.detail
            ),
            None => write!(f, "cycle {}: [{}] {}", self.cycle, self.kind, self.detail),
        }
    }
}

#[derive(Debug, Clone)]
struct PendingRead {
    ar: ArBeat,
    beats_seen: u32,
}

#[derive(Debug, Clone)]
struct PendingWrite {
    aw: AwBeat,
    beats_seen: u32,
}

/// Passive monitor for one AXI boundary. Feed it every beat crossing the
/// boundary via the `observe_*` methods.
///
/// # Example
///
/// ```
/// use axi::checker::ProtocolMonitor;
/// use axi::beat::{ArBeat, RBeat};
/// use axi::types::{AxiId, BurstSize};
///
/// let mut mon = ProtocolMonitor::new();
/// mon.observe_ar(0, &ArBeat::new(0x100, 2, BurstSize::B4));
/// mon.observe_r(5, &RBeat::new(AxiId(0), vec![0; 4], false));
/// mon.observe_r(6, &RBeat::new(AxiId(0), vec![0; 4], true));
/// assert!(mon.is_clean());
/// assert_eq!(mon.reads_completed(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolMonitor {
    reads: VecDeque<PendingRead>,
    writes: VecDeque<PendingWrite>,
    /// Writes whose data completed, awaiting a B response.
    awaiting_b: VecDeque<AwBeat>,
    errors: Vec<ProtocolError>,
    violations: Vec<Violation>,
    counters: CounterBank,
    port: Option<usize>,
    reads_completed: u64,
    writes_completed: u64,
}

impl Default for ProtocolMonitor {
    fn default() -> Self {
        Self {
            reads: VecDeque::new(),
            writes: VecDeque::new(),
            awaiting_b: VecDeque::new(),
            errors: Vec::new(),
            violations: Vec::new(),
            counters: CounterBank::new(ViolationKind::COUNT),
            port: None,
            reads_completed: 0,
            writes_completed: 0,
        }
    }
}

impl ProtocolMonitor {
    /// Creates a monitor with no observed traffic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a monitor whose reports are attributed to slave port
    /// `port`.
    pub fn with_port(port: usize) -> Self {
        Self {
            port: Some(port),
            ..Self::default()
        }
    }

    /// Records a structured violation observed by an external detector
    /// (e.g. the interconnect's transaction supervisor), counting it in
    /// the per-kind bank. Protocol-rule categories also surface through
    /// [`errors`](Self::errors)/[`is_clean`](Self::is_clean);
    /// [`ViolationKind::ErrorResponse`] does not, because error
    /// responses are protocol-legal.
    pub fn record_violation(
        &mut self,
        cycle: Cycle,
        kind: ViolationKind,
        detail: impl Into<String>,
    ) {
        let detail = detail.into();
        self.counters.incr(kind.index());
        if kind != ViolationKind::ErrorResponse {
            self.errors.push(ProtocolError {
                cycle,
                message: detail.clone(),
            });
        }
        let mut v = Violation::new(cycle, kind, detail);
        v.port = self.port;
        self.violations.push(v);
    }

    fn error(&mut self, cycle: Cycle, kind: ViolationKind, message: impl Into<String>) {
        self.record_violation(cycle, kind, message);
    }

    /// Observes a read request crossing the boundary.
    pub fn observe_ar(&mut self, cycle: Cycle, ar: &ArBeat) {
        if ar.len == 0 {
            self.error(
                cycle,
                ViolationKind::Malformed,
                format!("AR with zero length at {:#x}", ar.addr),
            );
        }
        self.reads.push_back(PendingRead {
            ar: ar.clone(),
            beats_seen: 0,
        });
    }

    /// Observes a write request crossing the boundary.
    pub fn observe_aw(&mut self, cycle: Cycle, aw: &AwBeat) {
        if aw.len == 0 {
            self.error(
                cycle,
                ViolationKind::Malformed,
                format!("AW with zero length at {:#x}", aw.addr),
            );
        }
        self.writes.push_back(PendingWrite {
            aw: aw.clone(),
            beats_seen: 0,
        });
    }

    /// Observes a write-data beat crossing the boundary.
    pub fn observe_w(&mut self, cycle: Cycle, w: &WBeat) {
        let mut problems: Vec<(ViolationKind, String)> = Vec::new();
        let mut finished = false;
        match self.writes.front_mut() {
            None => problems.push((
                ViolationKind::StreamIntegrity,
                "W beat with no outstanding AW".into(),
            )),
            Some(head) => {
                if w.data.len() as u64 != head.aw.size.bytes() {
                    problems.push((
                        ViolationKind::Malformed,
                        format!(
                            "W beat carries {} bytes, burst size is {}",
                            w.data.len(),
                            head.aw.size.bytes()
                        ),
                    ));
                }
                head.beats_seen += 1;
                let is_final = head.beats_seen == head.aw.len;
                if w.last != is_final {
                    problems.push((
                        ViolationKind::WlastMismatch,
                        format!(
                            "WLAST={} on beat {}/{} of write at {:#x}",
                            w.last, head.beats_seen, head.aw.len, head.aw.addr
                        ),
                    ));
                }
                finished = is_final || w.last;
            }
        }
        for (kind, msg) in problems {
            self.error(cycle, kind, msg);
        }
        if finished {
            // Close out the burst on `last` even if the count mismatched,
            // so one error doesn't cascade into spurious ones.
            let done = self.writes.pop_front().expect("head exists");
            self.awaiting_b.push_back(done.aw);
        }
    }

    /// Observes a read-data beat crossing the boundary.
    pub fn observe_r(&mut self, cycle: Cycle, r: &RBeat) {
        let mut problems: Vec<(ViolationKind, String)> = Vec::new();
        let mut finished = false;
        if !r.resp.is_ok() {
            problems.push((
                ViolationKind::ErrorResponse,
                format!("R beat carries {:?} response", r.resp),
            ));
        }
        match self.reads.front_mut() {
            None => problems.push((
                ViolationKind::StreamIntegrity,
                "R beat with no outstanding AR".into(),
            )),
            Some(head) => {
                if r.data.len() as u64 != head.ar.size.bytes() {
                    problems.push((
                        ViolationKind::Malformed,
                        format!(
                            "R beat carries {} bytes, burst size is {}",
                            r.data.len(),
                            head.ar.size.bytes()
                        ),
                    ));
                }
                if r.id != head.ar.id {
                    problems.push((
                        ViolationKind::StreamIntegrity,
                        format!(
                            "R beat id {} does not match in-order AR id {}",
                            r.id, head.ar.id
                        ),
                    ));
                }
                head.beats_seen += 1;
                let is_final = head.beats_seen == head.ar.len;
                if r.last != is_final {
                    problems.push((
                        ViolationKind::StreamIntegrity,
                        format!(
                            "RLAST={} on beat {}/{} of read at {:#x}",
                            r.last, head.beats_seen, head.ar.len, head.ar.addr
                        ),
                    ));
                }
                finished = is_final || r.last;
            }
        }
        for (kind, msg) in problems {
            self.error(cycle, kind, msg);
        }
        if finished {
            self.reads.pop_front();
            self.reads_completed += 1;
        }
    }

    /// Observes a write response crossing the boundary.
    pub fn observe_b(&mut self, cycle: Cycle, b: &BBeat) {
        if !b.resp.is_ok() {
            self.error(
                cycle,
                ViolationKind::ErrorResponse,
                format!("B response carries {:?}", b.resp),
            );
        }
        match self.awaiting_b.pop_front() {
            Some(aw) => {
                if b.id != aw.id {
                    let msg = format!("B id {} does not match in-order AW id {}", b.id, aw.id);
                    self.error(cycle, ViolationKind::StreamIntegrity, msg);
                }
                self.writes_completed += 1;
            }
            None => self.error(
                cycle,
                ViolationKind::StreamIntegrity,
                "B response with no completed write burst",
            ),
        }
    }

    /// Whether no violations have been recorded.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// All recorded violations, in observation order.
    pub fn errors(&self) -> &[ProtocolError] {
        &self.errors
    }

    /// All structured violation reports, in observation order
    /// (includes [`ViolationKind::ErrorResponse`] observations that do
    /// not appear in [`errors`](Self::errors)).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations recorded in category `kind`.
    pub fn violation_count(&self, kind: ViolationKind) -> u64 {
        self.counters.get(kind.index())
    }

    /// Total structured violations across all categories.
    pub fn total_violations(&self) -> u64 {
        self.counters.total()
    }

    /// The per-kind violation counter bank (indexed by
    /// [`ViolationKind::index`]).
    pub fn violation_counters(&self) -> &CounterBank {
        &self.counters
    }

    /// Read bursts fully completed (all beats observed).
    pub fn reads_completed(&self) -> u64 {
        self.reads_completed
    }

    /// Write bursts fully completed (data and response observed).
    pub fn writes_completed(&self) -> u64 {
        self.writes_completed
    }

    /// Read bursts issued but not yet complete.
    pub fn reads_outstanding(&self) -> usize {
        self.reads.len()
    }

    /// Write bursts with data or response still pending.
    pub fn writes_outstanding(&self) -> usize {
        self.writes.len() + self.awaiting_b.len()
    }
}

mod persist_impls {
    //! Snapshot support: violation records are a fingerprint surface
    //! (tests compare violation logs byte for byte across a
    //! snapshot/restore split), and the monitor's pending-burst queues
    //! must survive so post-restore beats match against the right
    //! outstanding requests.

    use super::*;
    use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};

    impl PersistValue for ViolationKind {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u8(self.index() as u8);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let idx = r.take_u8()? as usize;
            ViolationKind::ALL
                .get(idx)
                .copied()
                .ok_or(PersistError::Corrupt("ViolationKind discriminant"))
        }
    }

    impl PersistValue for Violation {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.cycle);
            self.port.save_value(w);
            self.kind.save_value(w);
            w.put_str(&self.detail);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                cycle: r.take_u64()?,
                port: Option::load_value(r)?,
                kind: ViolationKind::load_value(r)?,
                detail: r.take_str()?,
            })
        }
    }

    impl PersistValue for ProtocolError {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.cycle);
            w.put_str(&self.message);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                cycle: r.take_u64()?,
                message: r.take_str()?,
            })
        }
    }

    impl PersistValue for PendingRead {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.ar.save_value(w);
            w.put_u32(self.beats_seen);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                ar: ArBeat::load_value(r)?,
                beats_seen: r.take_u32()?,
            })
        }
    }

    impl PersistValue for PendingWrite {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.aw.save_value(w);
            w.put_u32(self.beats_seen);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                aw: AwBeat::load_value(r)?,
                beats_seen: r.take_u32()?,
            })
        }
    }

    fn save_deque<T: PersistValue>(q: &VecDeque<T>, w: &mut SnapshotWriter) {
        w.put_usize(q.len());
        for item in q {
            item.save_value(w);
        }
    }

    fn load_deque<T: PersistValue>(
        r: &mut SnapshotReader<'_>,
    ) -> Result<VecDeque<T>, PersistError> {
        let len = r.take_usize()?;
        let mut q = VecDeque::with_capacity(len.min(4096));
        for _ in 0..len {
            q.push_back(T::load_value(r)?);
        }
        Ok(q)
    }

    impl PersistValue for ProtocolMonitor {
        fn save_value(&self, w: &mut SnapshotWriter) {
            save_deque(&self.reads, w);
            save_deque(&self.writes, w);
            save_deque(&self.awaiting_b, w);
            self.errors.save_value(w);
            self.violations.save_value(w);
            self.counters.save_value(w);
            self.port.save_value(w);
            w.put_u64(self.reads_completed);
            w.put_u64(self.writes_completed);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                reads: load_deque(r)?,
                writes: load_deque(r)?,
                awaiting_b: load_deque(r)?,
                errors: Vec::load_value(r)?,
                violations: Vec::load_value(r)?,
                counters: CounterBank::load_value(r)?,
                port: Option::load_value(r)?,
                reads_completed: r.take_u64()?,
                writes_completed: r.take_u64()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AxiId, BurstSize};

    fn wbeat(bytes: usize, last: bool) -> WBeat {
        WBeat::new(vec![0; bytes], last)
    }

    #[test]
    fn clean_read_burst() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 3, BurstSize::B8));
        for i in 0..3 {
            mon.observe_r(i, &RBeat::new(AxiId(0), vec![0; 8], i == 2));
        }
        assert!(mon.is_clean(), "{:?}", mon.errors());
        assert_eq!(mon.reads_completed(), 1);
        assert_eq!(mon.reads_outstanding(), 0);
    }

    #[test]
    fn clean_write_burst() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_aw(0, &AwBeat::new(0, 2, BurstSize::B4));
        mon.observe_w(1, &wbeat(4, false));
        mon.observe_w(2, &wbeat(4, true));
        assert_eq!(mon.writes_outstanding(), 1); // awaiting B
        mon.observe_b(5, &BBeat::new(AxiId(0)));
        assert!(mon.is_clean(), "{:?}", mon.errors());
        assert_eq!(mon.writes_completed(), 1);
        assert_eq!(mon.writes_outstanding(), 0);
    }

    #[test]
    fn detects_missing_last_on_read() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B4));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], false));
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("RLAST"));
    }

    #[test]
    fn detects_early_last_on_write() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_aw(0, &AwBeat::new(0, 4, BurstSize::B4));
        mon.observe_w(1, &wbeat(4, true)); // last on beat 1 of 4
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("WLAST"));
        // Burst was closed out on last; no cascade on the next burst.
        mon.observe_aw(2, &AwBeat::new(64, 1, BurstSize::B4));
        mon.observe_w(3, &wbeat(4, true));
        assert_eq!(mon.errors().len(), 1);
    }

    #[test]
    fn detects_orphan_data_and_response() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_w(0, &wbeat(4, true));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], true));
        mon.observe_b(2, &BBeat::new(AxiId(0)));
        assert_eq!(mon.errors().len(), 3);
        assert!(mon.errors()[0].message.contains("no outstanding AW"));
        assert!(mon.errors()[1].message.contains("no outstanding AR"));
        assert!(mon.errors()[2].message.contains("no completed write"));
    }

    #[test]
    fn detects_wrong_beat_width() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B16));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], true));
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("16"));
    }

    #[test]
    fn detects_id_mismatch_in_order() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B4).with_id(AxiId(1)));
        mon.observe_r(1, &RBeat::new(AxiId(2), vec![0; 4], true));
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("id"));
    }

    #[test]
    fn interleaved_reads_and_writes_stay_independent() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B4));
        mon.observe_aw(0, &AwBeat::new(64, 1, BurstSize::B4));
        mon.observe_w(1, &wbeat(4, true));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], true));
        mon.observe_b(2, &BBeat::new(AxiId(0)));
        assert!(mon.is_clean(), "{:?}", mon.errors());
        assert_eq!(mon.reads_completed(), 1);
        assert_eq!(mon.writes_completed(), 1);
    }

    #[test]
    fn zero_length_requests_flagged() {
        let mut mon = ProtocolMonitor::new();
        let mut ar = ArBeat::new(0, 1, BurstSize::B4);
        ar.len = 0;
        mon.observe_ar(0, &ar);
        assert!(!mon.is_clean());
    }

    #[test]
    fn error_display_contains_cycle() {
        let e = ProtocolError {
            cycle: 12,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "cycle 12: boom");
    }

    #[test]
    fn violation_kind_indices_are_stable() {
        for (i, kind) in ViolationKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(ViolationKind::ALL.len(), ViolationKind::COUNT);
    }

    #[test]
    fn violations_are_classified_and_counted() {
        let mut mon = ProtocolMonitor::with_port(3);
        mon.observe_aw(0, &AwBeat::new(0, 4, BurstSize::B4));
        mon.observe_w(1, &wbeat(4, true)); // WLAST on beat 1 of 4
        mon.observe_r(2, &RBeat::new(AxiId(0), vec![0; 4], true)); // orphan
        assert_eq!(mon.violation_count(ViolationKind::WlastMismatch), 1);
        assert_eq!(mon.violation_count(ViolationKind::StreamIntegrity), 1);
        assert_eq!(mon.total_violations(), 2);
        assert_eq!(mon.violations().len(), 2);
        assert_eq!(mon.violations()[0].port, Some(3));
        assert_eq!(mon.violations()[0].kind, ViolationKind::WlastMismatch);
        // Structured reports and legacy errors stay in lockstep for
        // protocol-rule categories.
        assert_eq!(mon.errors().len(), 2);
    }

    #[test]
    fn error_responses_counted_but_boundary_stays_clean() {
        use crate::types::Resp;
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B4));
        mon.observe_r(
            4,
            &RBeat::new(AxiId(0), vec![0; 4], true).with_resp(Resp::DecErr),
        );
        mon.observe_aw(5, &AwBeat::new(64, 1, BurstSize::B4));
        mon.observe_w(6, &wbeat(4, true));
        mon.observe_b(8, &BBeat::new(AxiId(0)).with_resp(Resp::SlvErr));
        // Error responses are protocol-legal: the boundary is clean but
        // the structured reports record them.
        assert!(mon.is_clean(), "{:?}", mon.errors());
        assert_eq!(mon.violation_count(ViolationKind::ErrorResponse), 2);
        assert_eq!(mon.violations().len(), 2);
    }

    #[test]
    fn external_detectors_record_through_the_monitor() {
        let mut mon = ProtocolMonitor::with_port(1);
        mon.record_violation(9, ViolationKind::Boundary4K, "burst crosses 4 KiB");
        assert!(!mon.is_clean());
        assert_eq!(mon.violation_count(ViolationKind::Boundary4K), 1);
        let v = &mon.violations()[0];
        assert_eq!(v.cycle, 9);
        assert_eq!(v.port, Some(1));
        assert!(v.to_string().contains("port 1"));
        assert!(v.to_string().contains("4k-boundary"));
    }
}
