//! A passive AXI protocol monitor.
//!
//! The monitor observes the beats crossing one AXI boundary (in the
//! reproduction it is wired at the interconnect's master port, i.e. the
//! FPGA-PS interface) and records violations of the channel-ordering
//! rules the models rely on:
//!
//! * every burst transfers exactly `len` data beats, with `LAST` set on
//!   the final beat only;
//! * write data follows its address request (the paper notes data
//!   channels depend on address channels on today's platforms, §II);
//! * responses arrive in request order (in-order memory subsystem);
//! * every R/W data beat carries exactly `AxSIZE` bytes.
//!
//! Violations are collected rather than panicking so integration tests
//! can assert `is_clean()` and print all diagnostics on failure.

use std::collections::VecDeque;

use sim::Cycle;

use crate::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};

/// One recorded protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Cycle at which the violation was observed.
    pub cycle: Cycle,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}

#[derive(Debug, Clone)]
struct PendingRead {
    ar: ArBeat,
    beats_seen: u32,
}

#[derive(Debug, Clone)]
struct PendingWrite {
    aw: AwBeat,
    beats_seen: u32,
}

/// Passive monitor for one AXI boundary. Feed it every beat crossing the
/// boundary via the `observe_*` methods.
///
/// # Example
///
/// ```
/// use axi::checker::ProtocolMonitor;
/// use axi::beat::{ArBeat, RBeat};
/// use axi::types::{AxiId, BurstSize};
///
/// let mut mon = ProtocolMonitor::new();
/// mon.observe_ar(0, &ArBeat::new(0x100, 2, BurstSize::B4));
/// mon.observe_r(5, &RBeat::new(AxiId(0), vec![0; 4], false));
/// mon.observe_r(6, &RBeat::new(AxiId(0), vec![0; 4], true));
/// assert!(mon.is_clean());
/// assert_eq!(mon.reads_completed(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProtocolMonitor {
    reads: VecDeque<PendingRead>,
    writes: VecDeque<PendingWrite>,
    /// Writes whose data completed, awaiting a B response.
    awaiting_b: VecDeque<AwBeat>,
    errors: Vec<ProtocolError>,
    reads_completed: u64,
    writes_completed: u64,
}

impl ProtocolMonitor {
    /// Creates a monitor with no observed traffic.
    pub fn new() -> Self {
        Self::default()
    }

    fn error(&mut self, cycle: Cycle, message: impl Into<String>) {
        self.errors.push(ProtocolError {
            cycle,
            message: message.into(),
        });
    }

    /// Observes a read request crossing the boundary.
    pub fn observe_ar(&mut self, cycle: Cycle, ar: &ArBeat) {
        if ar.len == 0 {
            self.error(cycle, format!("AR with zero length at {:#x}", ar.addr));
        }
        self.reads.push_back(PendingRead {
            ar: ar.clone(),
            beats_seen: 0,
        });
    }

    /// Observes a write request crossing the boundary.
    pub fn observe_aw(&mut self, cycle: Cycle, aw: &AwBeat) {
        if aw.len == 0 {
            self.error(cycle, format!("AW with zero length at {:#x}", aw.addr));
        }
        self.writes.push_back(PendingWrite {
            aw: aw.clone(),
            beats_seen: 0,
        });
    }

    /// Observes a write-data beat crossing the boundary.
    pub fn observe_w(&mut self, cycle: Cycle, w: &WBeat) {
        let mut problems: Vec<String> = Vec::new();
        let mut finished = false;
        match self.writes.front_mut() {
            None => problems.push("W beat with no outstanding AW".into()),
            Some(head) => {
                if w.data.len() as u64 != head.aw.size.bytes() {
                    problems.push(format!(
                        "W beat carries {} bytes, burst size is {}",
                        w.data.len(),
                        head.aw.size.bytes()
                    ));
                }
                head.beats_seen += 1;
                let is_final = head.beats_seen == head.aw.len;
                if w.last != is_final {
                    problems.push(format!(
                        "WLAST={} on beat {}/{} of write at {:#x}",
                        w.last, head.beats_seen, head.aw.len, head.aw.addr
                    ));
                }
                finished = is_final || w.last;
            }
        }
        for msg in problems {
            self.error(cycle, msg);
        }
        if finished {
            // Close out the burst on `last` even if the count mismatched,
            // so one error doesn't cascade into spurious ones.
            let done = self.writes.pop_front().expect("head exists");
            self.awaiting_b.push_back(done.aw);
        }
    }

    /// Observes a read-data beat crossing the boundary.
    pub fn observe_r(&mut self, cycle: Cycle, r: &RBeat) {
        let mut problems: Vec<String> = Vec::new();
        let mut finished = false;
        match self.reads.front_mut() {
            None => problems.push("R beat with no outstanding AR".into()),
            Some(head) => {
                if r.data.len() as u64 != head.ar.size.bytes() {
                    problems.push(format!(
                        "R beat carries {} bytes, burst size is {}",
                        r.data.len(),
                        head.ar.size.bytes()
                    ));
                }
                if r.id != head.ar.id {
                    problems.push(format!(
                        "R beat id {} does not match in-order AR id {}",
                        r.id, head.ar.id
                    ));
                }
                head.beats_seen += 1;
                let is_final = head.beats_seen == head.ar.len;
                if r.last != is_final {
                    problems.push(format!(
                        "RLAST={} on beat {}/{} of read at {:#x}",
                        r.last, head.beats_seen, head.ar.len, head.ar.addr
                    ));
                }
                finished = is_final || r.last;
            }
        }
        for msg in problems {
            self.error(cycle, msg);
        }
        if finished {
            self.reads.pop_front();
            self.reads_completed += 1;
        }
    }

    /// Observes a write response crossing the boundary.
    pub fn observe_b(&mut self, cycle: Cycle, b: &BBeat) {
        match self.awaiting_b.pop_front() {
            Some(aw) => {
                if b.id != aw.id {
                    let msg = format!(
                        "B id {} does not match in-order AW id {}",
                        b.id, aw.id
                    );
                    self.error(cycle, msg);
                }
                self.writes_completed += 1;
            }
            None => self.error(cycle, "B response with no completed write burst"),
        }
    }

    /// Whether no violations have been recorded.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// All recorded violations, in observation order.
    pub fn errors(&self) -> &[ProtocolError] {
        &self.errors
    }

    /// Read bursts fully completed (all beats observed).
    pub fn reads_completed(&self) -> u64 {
        self.reads_completed
    }

    /// Write bursts fully completed (data and response observed).
    pub fn writes_completed(&self) -> u64 {
        self.writes_completed
    }

    /// Read bursts issued but not yet complete.
    pub fn reads_outstanding(&self) -> usize {
        self.reads.len()
    }

    /// Write bursts with data or response still pending.
    pub fn writes_outstanding(&self) -> usize {
        self.writes.len() + self.awaiting_b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AxiId, BurstSize};

    fn wbeat(bytes: usize, last: bool) -> WBeat {
        WBeat::new(vec![0; bytes], last)
    }

    #[test]
    fn clean_read_burst() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 3, BurstSize::B8));
        for i in 0..3 {
            mon.observe_r(i, &RBeat::new(AxiId(0), vec![0; 8], i == 2));
        }
        assert!(mon.is_clean(), "{:?}", mon.errors());
        assert_eq!(mon.reads_completed(), 1);
        assert_eq!(mon.reads_outstanding(), 0);
    }

    #[test]
    fn clean_write_burst() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_aw(0, &AwBeat::new(0, 2, BurstSize::B4));
        mon.observe_w(1, &wbeat(4, false));
        mon.observe_w(2, &wbeat(4, true));
        assert_eq!(mon.writes_outstanding(), 1); // awaiting B
        mon.observe_b(5, &BBeat::new(AxiId(0)));
        assert!(mon.is_clean(), "{:?}", mon.errors());
        assert_eq!(mon.writes_completed(), 1);
        assert_eq!(mon.writes_outstanding(), 0);
    }

    #[test]
    fn detects_missing_last_on_read() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B4));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], false));
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("RLAST"));
    }

    #[test]
    fn detects_early_last_on_write() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_aw(0, &AwBeat::new(0, 4, BurstSize::B4));
        mon.observe_w(1, &wbeat(4, true)); // last on beat 1 of 4
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("WLAST"));
        // Burst was closed out on last; no cascade on the next burst.
        mon.observe_aw(2, &AwBeat::new(64, 1, BurstSize::B4));
        mon.observe_w(3, &wbeat(4, true));
        assert_eq!(mon.errors().len(), 1);
    }

    #[test]
    fn detects_orphan_data_and_response() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_w(0, &wbeat(4, true));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], true));
        mon.observe_b(2, &BBeat::new(AxiId(0)));
        assert_eq!(mon.errors().len(), 3);
        assert!(mon.errors()[0].message.contains("no outstanding AW"));
        assert!(mon.errors()[1].message.contains("no outstanding AR"));
        assert!(mon.errors()[2].message.contains("no completed write"));
    }

    #[test]
    fn detects_wrong_beat_width() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B16));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], true));
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("16"));
    }

    #[test]
    fn detects_id_mismatch_in_order() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B4).with_id(AxiId(1)));
        mon.observe_r(1, &RBeat::new(AxiId(2), vec![0; 4], true));
        assert!(!mon.is_clean());
        assert!(mon.errors()[0].message.contains("id"));
    }

    #[test]
    fn interleaved_reads_and_writes_stay_independent() {
        let mut mon = ProtocolMonitor::new();
        mon.observe_ar(0, &ArBeat::new(0, 1, BurstSize::B4));
        mon.observe_aw(0, &AwBeat::new(64, 1, BurstSize::B4));
        mon.observe_w(1, &wbeat(4, true));
        mon.observe_r(1, &RBeat::new(AxiId(0), vec![0; 4], true));
        mon.observe_b(2, &BBeat::new(AxiId(0)));
        assert!(mon.is_clean(), "{:?}", mon.errors());
        assert_eq!(mon.reads_completed(), 1);
        assert_eq!(mon.writes_completed(), 1);
    }

    #[test]
    fn zero_length_requests_flagged() {
        let mut mon = ProtocolMonitor::new();
        let mut ar = ArBeat::new(0, 1, BurstSize::B4);
        ar.len = 0;
        mon.observe_ar(0, &ar);
        assert!(!mon.is_clean());
    }

    #[test]
    fn error_display_contains_cycle() {
        let e = ProtocolError {
            cycle: 12,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "cycle 12: boom");
    }
}
