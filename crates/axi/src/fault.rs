//! Seeded fault injection on a bridge edge: a drop-in replacement for a
//! wire [`crate::AxiBridge`] that can corrupt, lose or stall traffic, so
//! cascaded topologies can degrade at *any* edge — not just at the
//! memory controller.
//!
//! # Fault surface
//!
//! * **Bit flips** — a crossing R beat has one random payload bit
//!   flipped, silently (the fabric has no ECC; only an end-to-end
//!   integrity oracle like `ha`'s `ScoreboardMaster` can catch it).
//! * **Beat drops** — a crossing R beat is consumed and never delivered
//!   upstream. The upstream supervisor's sub-burst never completes, so
//!   this models a wedged edge; use it to exercise hang detection, not
//!   in campaigns that must run to completion.
//! * **Stalls** — the whole edge freezes for a fixed window, modeling a
//!   transient loss of forward progress (clock-domain glitch, PR region
//!   mid-reconfiguration).
//!
//! # Determinism
//!
//! All fault draws are tied to *beat crossings*, never to bare cycles:
//! a beat that is about to cross draws its fate, and a stall window is
//! opened by such a draw. Beats cross at identical cycles under every
//! scheduler (that is the fast-forward contract), so the draw sequence
//! — and therefore the injected fault pattern — is scheduler-invariant.

use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};
use sim::{Cycle, SimRng};

use crate::port::AxiPort;

/// Probabilities and seed for one [`FaultyBridge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyBridgeConfig {
    /// Seed for the edge's private fault RNG.
    pub seed: u64,
    /// Per-R-beat probability of a silent single-bit payload flip.
    pub flip_r: f64,
    /// Per-R-beat probability the beat is consumed and never delivered.
    pub drop_r: f64,
    /// Per-R-beat probability the edge stalls for [`Self::stall_len`]
    /// cycles before the beat crosses.
    pub stall: f64,
    /// Length of one stall window, in cycles.
    pub stall_len: Cycle,
}

impl FaultyBridgeConfig {
    /// A config with the given seed and every fault disabled.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            flip_r: 0.0,
            drop_r: 0.0,
            stall: 0.0,
            stall_len: 0,
        }
    }

    /// Sets the silent bit-flip probability.
    pub fn flip_r(mut self, p: f64) -> Self {
        self.flip_r = p;
        self
    }

    /// Sets the beat-drop probability.
    pub fn drop_r(mut self, p: f64) -> Self {
        self.drop_r = p;
        self
    }

    /// Sets the stall probability and window length.
    pub fn stall(mut self, p: f64, len: Cycle) -> Self {
        self.stall = p;
        self.stall_len = len;
        self
    }
}

/// Saturating counters of injected edge faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultyBridgeStats {
    /// R beats delivered with a silently flipped payload bit.
    pub flipped_beats: u64,
    /// R beats consumed and never delivered upstream.
    pub dropped_beats: u64,
    /// Stall windows opened.
    pub stalls: u64,
    /// Request beats (AR + AW + W) moved downstream.
    pub beats_down: u64,
    /// Response beats (R + B) moved upstream.
    pub beats_up: u64,
}

/// A zero-latency bridge edge with seeded fault injection on the
/// upstream (response) path. Drive it with
/// [`FaultyBridge::transfer`] exactly like a wire [`crate::AxiBridge`].
#[derive(Debug, Clone)]
pub struct FaultyBridge {
    config: FaultyBridgeConfig,
    rng: SimRng,
    stats: FaultyBridgeStats,
    /// The edge is frozen until this cycle (exclusive).
    stalled_until: Cycle,
}

impl FaultyBridge {
    /// Creates a faulty edge, seeding its private RNG from the config.
    pub fn new(config: FaultyBridgeConfig) -> Self {
        Self {
            config,
            rng: SimRng::seed(config.seed),
            stats: FaultyBridgeStats::default(),
            stalled_until: 0,
        }
    }

    /// The config this edge was armed with.
    pub fn config(&self) -> &FaultyBridgeConfig {
        &self.config
    }

    /// Injection and traffic counters.
    pub fn stats(&self) -> FaultyBridgeStats {
        self.stats
    }

    /// Whether the edge is inside a stall window at `now`.
    pub fn is_stalled(&self, now: Cycle) -> bool {
        now < self.stalled_until
    }

    /// Earliest cycle the edge unfreezes, when currently stalled
    /// (event hint for fast-forward drivers).
    pub fn next_event(&self) -> Option<Cycle> {
        (self.stalled_until > 0).then_some(self.stalled_until)
    }

    /// Moves every beat that can cross this cycle, applying the fault
    /// model to upstream-bound R beats. Returns `true` if anything
    /// moved. Mirrors [`crate::AxiBridge::transfer`]'s wire mode.
    pub fn transfer(&mut self, now: Cycle, up: &mut AxiPort, down: &mut AxiPort) -> bool {
        if self.is_stalled(now) {
            return false;
        }
        let mut progress = false;
        // Requests flow down, unfaulted.
        while up.ar.has_ready(now) && !down.ar.is_full() {
            let mut b = up.ar.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.ar.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while up.aw.has_ready(now) && !down.aw.is_full() {
            let mut b = up.aw.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.aw.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        while up.w.has_ready(now) && !down.w.is_full() {
            let mut b = up.w.pop_ready(now).expect("ready");
            b.issued_at = now;
            down.w.push(now, b).expect("space");
            self.stats.beats_down += 1;
            progress = true;
        }
        // Responses flow up; R beats face the fault model.
        while down.r.has_ready(now) && !up.r.is_full() {
            // Stall draw first: a triggered stall leaves the beat in
            // place, to cross (and re-draw nothing — the stall draw is
            // per crossing attempt after the window) once the edge
            // unfreezes.
            if self.config.stall > 0.0 && self.rng.chance(self.config.stall) {
                self.stats.stalls = self.stats.stalls.saturating_add(1);
                self.stalled_until = now + self.config.stall_len.max(1);
                return progress;
            }
            let mut b = down.r.pop_ready(now).expect("ready");
            if self.config.drop_r > 0.0 && self.rng.chance(self.config.drop_r) {
                self.stats.dropped_beats = self.stats.dropped_beats.saturating_add(1);
                progress = true;
                continue;
            }
            if self.config.flip_r > 0.0 && !b.data.is_empty() && self.rng.chance(self.config.flip_r)
            {
                let data = b.data.as_mut_slice();
                let bit = self.rng.range_usize(0, data.len() * 8 - 1);
                data[bit / 8] ^= 1 << (bit % 8);
                self.stats.flipped_beats = self.stats.flipped_beats.saturating_add(1);
            }
            b.hopped_at = now;
            up.r.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        while down.b.has_ready(now) && !up.b.is_full() {
            let mut b = down.b.pop_ready(now).expect("ready");
            b.hopped_at = now;
            up.b.push(now, b).expect("space");
            self.stats.beats_up += 1;
            progress = true;
        }
        progress
    }
}

impl PersistValue for FaultyBridgeConfig {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.seed);
        w.put_u64(self.flip_r.to_bits());
        w.put_u64(self.drop_r.to_bits());
        w.put_u64(self.stall.to_bits());
        w.put_u64(self.stall_len);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            seed: r.take_u64()?,
            flip_r: f64::from_bits(r.take_u64()?),
            drop_r: f64::from_bits(r.take_u64()?),
            stall: f64::from_bits(r.take_u64()?),
            stall_len: r.take_u64()?,
        })
    }
}

impl PersistValue for FaultyBridgeStats {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.flipped_beats);
        w.put_u64(self.dropped_beats);
        w.put_u64(self.stalls);
        w.put_u64(self.beats_down);
        w.put_u64(self.beats_up);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            flipped_beats: r.take_u64()?,
            dropped_beats: r.take_u64()?,
            stalls: r.take_u64()?,
            beats_down: r.take_u64()?,
            beats_up: r.take_u64()?,
        })
    }
}

impl PersistValue for FaultyBridge {
    /// The RNG state crosses the snapshot, so a forked chaos campaign
    /// replays the exact same fault pattern on the edge.
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.config.save_value(w);
        self.rng.save_value(w);
        self.stats.save_value(w);
        w.put_u64(self.stalled_until);
    }
    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            config: FaultyBridgeConfig::load_value(r)?,
            rng: SimRng::load_value(r)?,
            stats: FaultyBridgeStats::load_value(r)?,
            stalled_until: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beat::{ArBeat, BBeat, RBeat};
    use crate::types::{AxiId, BurstSize};

    fn ports() -> (AxiPort, AxiPort) {
        (AxiPort::default(), AxiPort::default())
    }

    #[test]
    fn clean_edge_behaves_like_a_wire() {
        let (mut up, mut down) = ports();
        let mut edge = FaultyBridge::new(FaultyBridgeConfig::new(1));
        up.ar.push(0, ArBeat::new(0x40, 1, BurstSize::B4)).unwrap();
        down.r
            .push(0, RBeat::new(AxiId(1), vec![0xAB; 4], true))
            .unwrap();
        down.b.push(0, BBeat::new(AxiId(1))).unwrap();
        assert!(edge.transfer(0, &mut up, &mut down));
        assert!(down.ar.has_ready(0));
        assert_eq!(up.r.pop_ready(0).unwrap().data, vec![0xAB; 4]);
        assert!(up.b.pop_ready(0).is_some());
        let s = edge.stats();
        assert_eq!((s.beats_down, s.beats_up), (1, 2));
        assert_eq!(s.flipped_beats + s.dropped_beats + s.stalls, 0);
    }

    #[test]
    fn flips_corrupt_exactly_one_bit_silently() {
        let (mut up, mut down) = ports();
        let mut edge = FaultyBridge::new(FaultyBridgeConfig::new(7).flip_r(1.0));
        down.r
            .push(0, RBeat::new(AxiId(1), vec![0u8; 8], true))
            .unwrap();
        edge.transfer(0, &mut up, &mut down);
        let b = up.r.pop_ready(0).unwrap();
        assert_eq!(b.resp, crate::types::Resp::Okay, "flip is unannounced");
        let ones: u32 = b.data.iter().map(|x| x.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(edge.stats().flipped_beats, 1);
    }

    #[test]
    fn drops_consume_beats_without_delivery() {
        let (mut up, mut down) = ports();
        let mut edge = FaultyBridge::new(FaultyBridgeConfig::new(7).drop_r(1.0));
        for _ in 0..3 {
            down.r
                .push(0, RBeat::new(AxiId(1), vec![0; 4], false))
                .unwrap();
        }
        edge.transfer(0, &mut up, &mut down);
        assert!(up.r.pop_ready(0).is_none());
        assert!(down.r.is_empty());
        assert_eq!(edge.stats().dropped_beats, 3);
    }

    #[test]
    fn stalls_freeze_the_whole_edge_for_the_window() {
        let (mut up, mut down) = ports();
        let mut edge = FaultyBridge::new(FaultyBridgeConfig::new(3).stall(1.0, 5));
        down.r
            .push(0, RBeat::new(AxiId(1), vec![0; 4], true))
            .unwrap();
        up.ar.push(0, ArBeat::new(0x40, 1, BurstSize::B4)).unwrap();
        // First crossing attempt opens the stall window; the AR beat
        // already crossed this cycle (requests precede responses).
        edge.transfer(0, &mut up, &mut down);
        assert!(edge.is_stalled(1));
        assert!(down.r.has_ready(1), "beat held in place");
        for now in 1..5 {
            assert!(!edge.transfer(now, &mut up, &mut down), "frozen at {now}");
        }
        // Window over: stall probability fires again in this toy config,
        // so drain with the stall disarmed to observe delivery.
        edge.config.stall = 0.0;
        assert!(edge.transfer(5, &mut up, &mut down));
        assert!(up.r.pop_ready(5).is_some());
        assert_eq!(edge.stats().stalls, 1);
    }

    #[test]
    fn edge_state_round_trips_through_a_snapshot() {
        let (mut up, mut down) = ports();
        let mut edge = FaultyBridge::new(FaultyBridgeConfig::new(11).flip_r(0.5).stall(0.2, 3));
        for i in 0..10u64 {
            down.r
                .push(i, RBeat::new(AxiId(1), vec![i as u8; 4], true))
                .unwrap();
            edge.transfer(i, &mut up, &mut down);
            while up.r.pop_ready(i).is_some() {}
        }
        let mut w = SnapshotWriter::new();
        edge.save_value(&mut w);
        let bytes = w.into_bytes();
        let restored = FaultyBridge::load_value(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(restored.stats(), edge.stats());
        assert_eq!(restored.config(), edge.config());
        let mut w2 = SnapshotWriter::new();
        restored.save_value(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-encode is byte-identical");
    }
}
