//! Validated transaction descriptors — what a master *intends* to do
//! before it is expressed as channel beats.

use crate::beat::{ArBeat, AwBeat, WBeat};
use crate::burst::{check_alignment, check_wrap_len, crosses_4k};
use crate::types::{AxiId, AxiVersion, BurstKind, BurstSize, TxnError};

/// A read transaction descriptor.
///
/// # Example
///
/// ```
/// use axi::txn::ReadRequest;
/// use axi::types::{AxiVersion, BurstSize};
///
/// let req = ReadRequest::new(0x2000, 8, BurstSize::B16)?;
/// assert_eq!(req.total_bytes(), 128);
/// let ar = req.to_ar(5, 100);
/// assert_eq!(ar.tag, 5);
/// assert_eq!(ar.issued_at, 100);
/// # Ok::<(), axi::types::TxnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRequest {
    addr: u64,
    len: u32,
    size: BurstSize,
    kind: BurstKind,
    id: AxiId,
}

impl ReadRequest {
    /// Creates an INCR read request after checking basic legality
    /// (non-zero aligned burst that does not cross 4 KiB).
    ///
    /// # Errors
    ///
    /// Returns a [`TxnError`] describing the first violated rule.
    pub fn new(addr: u64, len: u32, size: BurstSize) -> Result<Self, TxnError> {
        let req = Self {
            addr,
            len,
            size,
            kind: BurstKind::Incr,
            id: AxiId::default(),
        };
        req.check_basic()?;
        Ok(req)
    }

    /// Creates a WRAP read request (cache-line style).
    ///
    /// # Errors
    ///
    /// Returns a [`TxnError`] for illegal wrap lengths or misalignment.
    pub fn new_wrap(addr: u64, len: u32, size: BurstSize) -> Result<Self, TxnError> {
        check_wrap_len(len)?;
        check_alignment(addr, size)?;
        Ok(Self {
            addr,
            len,
            size,
            kind: BurstKind::Wrap,
            id: AxiId::default(),
        })
    }

    /// Sets the AXI ID.
    pub fn with_id(mut self, id: AxiId) -> Self {
        self.id = id;
        self
    }

    fn check_basic(&self) -> Result<(), TxnError> {
        if self.len == 0 {
            return Err(TxnError::LenZero);
        }
        check_alignment(self.addr, self.size)?;
        if self.kind == BurstKind::Incr && crosses_4k(self.addr, self.len, self.size) {
            return Err(TxnError::Crosses4K {
                addr: self.addr,
                bytes: self.total_bytes(),
            });
        }
        Ok(())
    }

    /// Validates the request against a protocol revision's burst limit.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::LenTooLong`] if the revision cannot express
    /// the burst.
    pub fn validate(&self, version: AxiVersion) -> Result<(), TxnError> {
        if self.len > version.max_burst_len() {
            return Err(TxnError::LenTooLong {
                len: self.len,
                max: version.max_burst_len(),
            });
        }
        self.check_basic()
    }

    /// Start address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Burst length in beats.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the burst is empty (never true for a validated request).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Beat size.
    pub fn size(&self) -> BurstSize {
        self.size
    }

    /// Burst kind.
    pub fn kind(&self) -> BurstKind {
        self.kind
    }

    /// AXI ID.
    pub fn id(&self) -> AxiId {
        self.id
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        crate::burst::total_bytes(self.len, self.size)
    }

    /// Lowers the descriptor to an AR beat with tag and timestamp.
    pub fn to_ar(&self, tag: u64, now: sim::Cycle) -> ArBeat {
        ArBeat {
            id: self.id,
            addr: self.addr,
            len: self.len,
            size: self.size,
            burst: self.kind,
            qos: 0,
            tag,
            issued_at: now,
            uid: 0,
        }
    }
}

/// A write transaction descriptor.
///
/// # Example
///
/// ```
/// use axi::txn::WriteRequest;
/// use axi::types::BurstSize;
///
/// let req = WriteRequest::new(0x3000, 4, BurstSize::B4)?;
/// let (aw, wbeats) = req.to_beats(9, 50, |_, _| 0xEE);
/// assert_eq!(aw.len, 4);
/// assert_eq!(wbeats.len(), 4);
/// assert!(wbeats[3].last);
/// # Ok::<(), axi::types::TxnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRequest {
    addr: u64,
    len: u32,
    size: BurstSize,
    kind: BurstKind,
    id: AxiId,
}

impl WriteRequest {
    /// Creates an INCR write request after checking basic legality.
    ///
    /// # Errors
    ///
    /// Returns a [`TxnError`] describing the first violated rule.
    pub fn new(addr: u64, len: u32, size: BurstSize) -> Result<Self, TxnError> {
        if len == 0 {
            return Err(TxnError::LenZero);
        }
        check_alignment(addr, size)?;
        if crosses_4k(addr, len, size) {
            return Err(TxnError::Crosses4K {
                addr,
                bytes: crate::burst::total_bytes(len, size),
            });
        }
        Ok(Self {
            addr,
            len,
            size,
            kind: BurstKind::Incr,
            id: AxiId::default(),
        })
    }

    /// Sets the AXI ID.
    pub fn with_id(mut self, id: AxiId) -> Self {
        self.id = id;
        self
    }

    /// Validates the request against a protocol revision's burst limit.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::LenTooLong`] if the revision cannot express
    /// the burst.
    pub fn validate(&self, version: AxiVersion) -> Result<(), TxnError> {
        if self.len > version.max_burst_len() {
            return Err(TxnError::LenTooLong {
                len: self.len,
                max: version.max_burst_len(),
            });
        }
        Ok(())
    }

    /// Start address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Burst length in beats.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the burst is empty (never true for a validated request).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Beat size.
    pub fn size(&self) -> BurstSize {
        self.size
    }

    /// AXI ID.
    pub fn id(&self) -> AxiId {
        self.id
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        crate::burst::total_bytes(self.len, self.size)
    }

    /// Lowers the descriptor to an AW beat plus its W-beat stream, with
    /// data produced by `fill(beat_index, byte_index)`.
    pub fn to_beats(
        &self,
        tag: u64,
        now: sim::Cycle,
        fill: impl FnMut(u32, u64) -> u8,
    ) -> (AwBeat, Vec<WBeat>) {
        let aw = AwBeat {
            id: self.id,
            addr: self.addr,
            len: self.len,
            size: self.size,
            burst: self.kind,
            qos: 0,
            tag,
            issued_at: now,
            uid: 0,
        };
        let mut wbeats = WBeat::stream(self.len, self.size, tag, fill);
        for w in &mut wbeats {
            w.issued_at = now;
        }
        (aw, wbeats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read_request_rejects_zero_len() {
        assert_eq!(
            ReadRequest::new(0, 0, BurstSize::B4).unwrap_err(),
            TxnError::LenZero
        );
    }

    #[test]
    fn read_request_rejects_misaligned() {
        assert!(matches!(
            ReadRequest::new(0x1002, 4, BurstSize::B4),
            Err(TxnError::Unaligned { .. })
        ));
    }

    #[test]
    fn read_request_rejects_4k_crossing() {
        assert!(matches!(
            ReadRequest::new(0x0FF0, 4, BurstSize::B16),
            Err(TxnError::Crosses4K { .. })
        ));
    }

    #[test]
    fn read_request_axi3_length_limit() {
        let req = ReadRequest::new(0, 32, BurstSize::B4).unwrap();
        assert!(matches!(
            req.validate(AxiVersion::Axi3),
            Err(TxnError::LenTooLong { len: 32, max: 16 })
        ));
        assert!(req.validate(AxiVersion::Axi4).is_ok());
    }

    #[test]
    fn wrap_request_valid_and_invalid() {
        assert!(ReadRequest::new_wrap(0x100, 8, BurstSize::B8).is_ok());
        assert!(matches!(
            ReadRequest::new_wrap(0x100, 3, BurstSize::B8),
            Err(TxnError::BadWrapLen { len: 3 })
        ));
    }

    #[test]
    fn read_lowering_carries_metadata() {
        let req = ReadRequest::new(0x800, 2, BurstSize::B8)
            .unwrap()
            .with_id(AxiId(4));
        let ar = req.to_ar(77, 123);
        assert_eq!(ar.id, AxiId(4));
        assert_eq!(ar.addr, 0x800);
        assert_eq!(ar.len, 2);
        assert_eq!(ar.tag, 77);
        assert_eq!(ar.issued_at, 123);
    }

    #[test]
    fn write_request_rejections() {
        assert_eq!(
            WriteRequest::new(0, 0, BurstSize::B4).unwrap_err(),
            TxnError::LenZero
        );
        assert!(matches!(
            WriteRequest::new(1, 1, BurstSize::B4),
            Err(TxnError::Unaligned { .. })
        ));
        assert!(matches!(
            WriteRequest::new(0x0FFC, 2, BurstSize::B4),
            Err(TxnError::Crosses4K { .. })
        ));
    }

    #[test]
    fn write_lowering_produces_full_stream() {
        let req = WriteRequest::new(0x100, 3, BurstSize::B4).unwrap();
        let (aw, ws) = req.to_beats(5, 10, |beat, _| beat as u8);
        assert_eq!(aw.tag, 5);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[1].data, vec![1; 4]);
        assert!(ws.iter().all(|w| w.issued_at == 10 && w.tag == 5));
        assert!(ws[2].last && !ws[0].last && !ws[1].last);
    }

    proptest! {
        /// Any constructed (valid) read request round-trips through its
        /// AR beat unchanged.
        #[test]
        fn valid_reads_roundtrip(
            page in 0u64..1000,
            len in 1u32..256,
            size_idx in 0usize..5,
        ) {
            let size = BurstSize::ALL[size_idx];
            // Anchor at a 4 KiB page so only the length can overflow it.
            let addr = page * 4096;
            if crate::burst::total_bytes(len, size) > 4096 {
                prop_assert!(ReadRequest::new(addr, len, size).is_err());
            } else {
                let req = ReadRequest::new(addr, len, size).unwrap();
                let ar = req.to_ar(0, 0);
                prop_assert_eq!(ar.addr, addr);
                prop_assert_eq!(ar.len, len);
                prop_assert_eq!(ar.size, size);
            }
        }
    }
}
