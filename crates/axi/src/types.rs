//! Core AXI vocabulary types shared by every model in the workspace.

/// Index of an interconnect slave port (one per hardware accelerator).
///
/// A newtype rather than a bare `usize` so a port index can never be
/// confused with a transaction count or a queue index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// An AXI transaction ID (`ARID`/`AWID`/`RID`/`BID`).
///
/// IDs identify transaction streams; in this reproduction transactions
/// are served in-order per port (as today's FPGA SoC memory controllers
/// do, per the paper), so IDs are transported but not used for reordering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AxiId(pub u16);

impl std::fmt::Display for AxiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "id{}", self.0)
    }
}

/// AXI protocol revision. The HyperConnect supports both (paper §V-A,
/// *Compatibility*); the revision bounds the maximum burst length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AxiVersion {
    /// AXI3: bursts of 1–16 beats.
    Axi3,
    /// AXI4: INCR bursts of 1–256 beats.
    #[default]
    Axi4,
}

impl AxiVersion {
    /// The maximum INCR burst length in beats for this revision.
    pub fn max_burst_len(self) -> u32 {
        match self {
            AxiVersion::Axi3 => 16,
            AxiVersion::Axi4 => 256,
        }
    }
}

impl std::fmt::Display for AxiVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiVersion::Axi3 => write!(f, "AXI3"),
            AxiVersion::Axi4 => write!(f, "AXI4"),
        }
    }
}

/// The burst type carried on `AxBURST`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BurstKind {
    /// Fixed address (FIFO-style peripherals).
    Fixed,
    /// Incrementing address — the common case for memory access.
    #[default]
    Incr,
    /// Wrapping burst (cache-line fills).
    Wrap,
}

impl std::fmt::Display for BurstKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BurstKind::Fixed => write!(f, "FIXED"),
            BurstKind::Incr => write!(f, "INCR"),
            BurstKind::Wrap => write!(f, "WRAP"),
        }
    }
}

/// Bytes transferred per beat (`AxSIZE`), restricted to powers of two
/// between 1 and 128 as in the AXI specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BurstSize {
    /// 1 byte per beat.
    B1,
    /// 2 bytes per beat.
    B2,
    /// 4 bytes per beat — a "word" in the paper's Fig. 3(b).
    B4,
    /// 8 bytes per beat.
    B8,
    /// 16 bytes per beat — a 128-bit HP port beat on Zynq UltraScale+.
    B16,
    /// 32 bytes per beat.
    B32,
    /// 64 bytes per beat.
    B64,
    /// 128 bytes per beat.
    B128,
}

impl BurstSize {
    /// All sizes in increasing order.
    pub const ALL: [BurstSize; 8] = [
        BurstSize::B1,
        BurstSize::B2,
        BurstSize::B4,
        BurstSize::B8,
        BurstSize::B16,
        BurstSize::B32,
        BurstSize::B64,
        BurstSize::B128,
    ];

    /// Bytes per beat.
    pub fn bytes(self) -> u64 {
        match self {
            BurstSize::B1 => 1,
            BurstSize::B2 => 2,
            BurstSize::B4 => 4,
            BurstSize::B8 => 8,
            BurstSize::B16 => 16,
            BurstSize::B32 => 32,
            BurstSize::B64 => 64,
            BurstSize::B128 => 128,
        }
    }

    /// The `AxSIZE` encoding (log2 of the byte count).
    pub fn encoding(self) -> u8 {
        self.bytes().trailing_zeros() as u8
    }

    /// Constructs a size from a byte count.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::BadSize`] if `bytes` is not a power of two in
    /// `1..=128`.
    pub fn from_bytes(bytes: u64) -> Result<Self, TxnError> {
        match bytes {
            1 => Ok(BurstSize::B1),
            2 => Ok(BurstSize::B2),
            4 => Ok(BurstSize::B4),
            8 => Ok(BurstSize::B8),
            16 => Ok(BurstSize::B16),
            32 => Ok(BurstSize::B32),
            64 => Ok(BurstSize::B64),
            128 => Ok(BurstSize::B128),
            _ => Err(TxnError::BadSize { bytes }),
        }
    }
}

impl std::fmt::Display for BurstSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}B/beat", self.bytes())
    }
}

/// The AXI response code carried on R and B channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Resp {
    /// Normal success.
    #[default]
    Okay,
    /// Exclusive-access success.
    ExOkay,
    /// Slave error.
    SlvErr,
    /// Decode error (no slave at the address).
    DecErr,
}

impl Resp {
    /// Whether the response indicates success.
    pub fn is_ok(self) -> bool {
        matches!(self, Resp::Okay | Resp::ExOkay)
    }

    /// Severity rank used when merging split-burst responses: DECERR >
    /// SLVERR > OKAY/EXOKAY.
    fn severity(self) -> u8 {
        match self {
            Resp::Okay | Resp::ExOkay => 0,
            Resp::SlvErr => 1,
            Resp::DecErr => 2,
        }
    }

    /// The worse of two responses — what an interconnect must report
    /// when merging the responses of split sub-bursts into one.
    pub fn worst(self, other: Resp) -> Resp {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

impl std::fmt::Display for Resp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resp::Okay => write!(f, "OKAY"),
            Resp::ExOkay => write!(f, "EXOKAY"),
            Resp::SlvErr => write!(f, "SLVERR"),
            Resp::DecErr => write!(f, "DECERR"),
        }
    }
}

/// Validation failure for a transaction descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// Burst length of zero beats.
    LenZero,
    /// Burst length exceeds the revision's limit.
    LenTooLong {
        /// Requested beats.
        len: u32,
        /// Maximum allowed by the revision.
        max: u32,
    },
    /// An INCR burst would cross a 4 KiB address boundary.
    Crosses4K {
        /// Start address of the offending burst.
        addr: u64,
        /// Total bytes of the burst.
        bytes: u64,
    },
    /// The address is not aligned to the beat size (this reproduction
    /// models aligned transfers only).
    Unaligned {
        /// Offending address.
        addr: u64,
        /// Beat size in bytes.
        size: u64,
    },
    /// Not a legal `AxSIZE` byte count.
    BadSize {
        /// Offending byte count.
        bytes: u64,
    },
    /// WRAP bursts must have a length of 2, 4, 8 or 16 beats.
    BadWrapLen {
        /// Requested beats.
        len: u32,
    },
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::LenZero => write!(f, "burst length must be at least one beat"),
            TxnError::LenTooLong { len, max } => {
                write!(
                    f,
                    "burst length {len} exceeds the revision maximum of {max}"
                )
            }
            TxnError::Crosses4K { addr, bytes } => write!(
                f,
                "burst of {bytes} bytes at {addr:#x} crosses a 4 KiB boundary"
            ),
            TxnError::Unaligned { addr, size } => {
                write!(
                    f,
                    "address {addr:#x} is not aligned to the beat size {size}"
                )
            }
            TxnError::BadSize { bytes } => {
                write!(f, "{bytes} is not a legal AxSIZE byte count")
            }
            TxnError::BadWrapLen { len } => {
                write!(f, "wrap burst length {len} is not 2, 4, 8 or 16")
            }
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_id_display() {
        assert_eq!(PortId(3).to_string(), "port3");
    }

    #[test]
    fn axi_id_display_and_default() {
        assert_eq!(AxiId::default(), AxiId(0));
        assert_eq!(AxiId(7).to_string(), "id7");
    }

    #[test]
    fn version_burst_limits() {
        assert_eq!(AxiVersion::Axi3.max_burst_len(), 16);
        assert_eq!(AxiVersion::Axi4.max_burst_len(), 256);
        assert_eq!(AxiVersion::default(), AxiVersion::Axi4);
    }

    #[test]
    fn burst_size_bytes_roundtrip() {
        for size in BurstSize::ALL {
            assert_eq!(BurstSize::from_bytes(size.bytes()), Ok(size));
        }
    }

    #[test]
    fn burst_size_encoding_is_log2() {
        assert_eq!(BurstSize::B1.encoding(), 0);
        assert_eq!(BurstSize::B4.encoding(), 2);
        assert_eq!(BurstSize::B128.encoding(), 7);
    }

    #[test]
    fn burst_size_rejects_non_power_of_two() {
        assert_eq!(
            BurstSize::from_bytes(3),
            Err(TxnError::BadSize { bytes: 3 })
        );
        assert_eq!(
            BurstSize::from_bytes(256),
            Err(TxnError::BadSize { bytes: 256 })
        );
        assert_eq!(
            BurstSize::from_bytes(0),
            Err(TxnError::BadSize { bytes: 0 })
        );
    }

    #[test]
    fn resp_success_classification() {
        assert!(Resp::Okay.is_ok());
        assert!(Resp::ExOkay.is_ok());
        assert!(!Resp::SlvErr.is_ok());
        assert!(!Resp::DecErr.is_ok());
    }

    #[test]
    fn resp_merge_keeps_the_worst() {
        assert_eq!(Resp::Okay.worst(Resp::Okay), Resp::Okay);
        assert_eq!(Resp::Okay.worst(Resp::SlvErr), Resp::SlvErr);
        assert_eq!(Resp::SlvErr.worst(Resp::Okay), Resp::SlvErr);
        assert_eq!(Resp::SlvErr.worst(Resp::DecErr), Resp::DecErr);
        assert_eq!(Resp::DecErr.worst(Resp::SlvErr), Resp::DecErr);
        assert_eq!(Resp::ExOkay.worst(Resp::Okay), Resp::ExOkay);
    }

    #[test]
    fn displays_are_never_empty() {
        assert!(!AxiVersion::Axi3.to_string().is_empty());
        assert!(!BurstKind::Wrap.to_string().is_empty());
        assert!(!BurstSize::B16.to_string().is_empty());
        assert!(!Resp::DecErr.to_string().is_empty());
    }

    #[test]
    fn txn_error_messages() {
        let e = TxnError::Crosses4K {
            addr: 0xff0,
            bytes: 64,
        };
        assert!(e.to_string().contains("4 KiB"));
        assert!(TxnError::LenZero.to_string().contains("at least one"));
        let e = TxnError::LenTooLong { len: 300, max: 256 };
        assert!(e.to_string().contains("300"));
    }
}
