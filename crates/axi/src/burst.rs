//! Burst arithmetic: byte counts, the 4 KiB rule, and nominal-size
//! splitting (transaction equalization).

use crate::types::{BurstSize, TxnError};

/// The AXI 4 KiB boundary that a single burst may not cross.
pub const BOUNDARY_4K: u64 = 4096;

/// Total bytes moved by a burst of `len` beats at `size` bytes/beat.
///
/// # Example
///
/// ```
/// use axi::burst::total_bytes;
/// use axi::types::BurstSize;
///
/// assert_eq!(total_bytes(16, BurstSize::B4), 64);
/// ```
pub fn total_bytes(len: u32, size: BurstSize) -> u64 {
    len as u64 * size.bytes()
}

/// Whether an INCR burst starting at `addr` with `len` beats of `size`
/// crosses a 4 KiB boundary (illegal in AXI).
///
/// # Example
///
/// ```
/// use axi::burst::crosses_4k;
/// use axi::types::BurstSize;
///
/// assert!(!crosses_4k(0x0FC0, 4, BurstSize::B16)); // ends at 0x1000
/// assert!(crosses_4k(0x0FC0, 5, BurstSize::B16));  // ends at 0x1010
/// ```
pub fn crosses_4k(addr: u64, len: u32, size: BurstSize) -> bool {
    let bytes = total_bytes(len, size);
    if bytes == 0 {
        return false;
    }
    let last = addr + bytes - 1;
    (addr / BOUNDARY_4K) != (last / BOUNDARY_4K)
}

/// The address of beat `beat_index` of an INCR burst.
pub fn incr_beat_addr(addr: u64, size: BurstSize, beat_index: u32) -> u64 {
    addr + beat_index as u64 * size.bytes()
}

/// The address of beat `beat_index` for any burst kind.
///
/// * `FIXED` — every beat targets the start address;
/// * `INCR` — addresses increment by the beat size;
/// * `WRAP` — addresses increment and wrap at the container boundary
///   (`len * size` bytes, aligned).
///
/// # Example
///
/// ```
/// use axi::burst::beat_addr;
/// use axi::types::{BurstKind, BurstSize};
///
/// // A 4-beat WRAP burst of 4-byte beats starting at 0x108 wraps at the
/// // 16-byte container [0x100, 0x110).
/// let addrs: Vec<u64> = (0..4)
///     .map(|i| beat_addr(BurstKind::Wrap, 0x108, 4, BurstSize::B4, i))
///     .collect();
/// assert_eq!(addrs, vec![0x108, 0x10C, 0x100, 0x104]);
/// ```
pub fn beat_addr(
    kind: crate::types::BurstKind,
    addr: u64,
    len: u32,
    size: BurstSize,
    beat_index: u32,
) -> u64 {
    use crate::types::BurstKind;
    match kind {
        BurstKind::Fixed => addr,
        BurstKind::Incr => incr_beat_addr(addr, size, beat_index),
        BurstKind::Wrap => {
            let container = len as u64 * size.bytes();
            let boundary = (addr / container) * container;
            let linear = addr + beat_index as u64 * size.bytes();
            if linear >= boundary + container {
                linear - container
            } else {
                linear
            }
        }
    }
}

/// One fragment of a split burst: a start address and a beat count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubBurst {
    /// Start address of the fragment.
    pub addr: u64,
    /// Number of beats in the fragment (1..=nominal).
    pub len: u32,
}

/// Splits an INCR burst into fragments of at most `nominal` beats.
///
/// This is the *transaction equalization* of Restuccia et al. (TECS
/// 2019) implemented by the HyperConnect's Transaction Supervisor: every
/// master's traffic is decomposed into sub-bursts of a common nominal
/// size, so that round-robin arbitration at transaction granularity
/// distributes *bandwidth* fairly even when masters issue heterogeneous
/// burst lengths.
///
/// The final fragment carries the remainder when `len` is not a multiple
/// of `nominal`.
///
/// # Panics
///
/// Panics if `nominal` or `len` is zero.
///
/// # Example
///
/// ```
/// use axi::burst::{split_incr, SubBurst};
/// use axi::types::BurstSize;
///
/// let subs = split_incr(0x1000, 40, BurstSize::B4, 16);
/// assert_eq!(subs, vec![
///     SubBurst { addr: 0x1000, len: 16 },
///     SubBurst { addr: 0x1040, len: 16 },
///     SubBurst { addr: 0x1080, len: 8 },
/// ]);
/// ```
pub fn split_incr(addr: u64, len: u32, size: BurstSize, nominal: u32) -> Vec<SubBurst> {
    assert!(nominal > 0, "nominal burst length must be non-zero");
    assert!(len > 0, "burst length must be non-zero");
    let mut out = Vec::with_capacity(len.div_ceil(nominal) as usize);
    let mut remaining = len;
    let mut cursor = addr;
    while remaining > 0 {
        let chunk = remaining.min(nominal);
        out.push(SubBurst {
            addr: cursor,
            len: chunk,
        });
        cursor += chunk as u64 * size.bytes();
        remaining -= chunk;
    }
    out
}

/// Number of sub-bursts produced by [`split_incr`] without materializing
/// them.
pub fn split_count(len: u32, nominal: u32) -> u32 {
    assert!(nominal > 0, "nominal burst length must be non-zero");
    len.div_ceil(nominal)
}

/// Validates that an address is aligned to the beat size.
///
/// # Errors
///
/// Returns [`TxnError::Unaligned`] on misalignment.
pub fn check_alignment(addr: u64, size: BurstSize) -> Result<(), TxnError> {
    if !addr.is_multiple_of(size.bytes()) {
        Err(TxnError::Unaligned {
            addr,
            size: size.bytes(),
        })
    } else {
        Ok(())
    }
}

/// Validates a WRAP burst length (must be 2, 4, 8 or 16 beats).
///
/// # Errors
///
/// Returns [`TxnError::BadWrapLen`] otherwise.
pub fn check_wrap_len(len: u32) -> Result<(), TxnError> {
    if matches!(len, 2 | 4 | 8 | 16) {
        Ok(())
    } else {
        Err(TxnError::BadWrapLen { len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn total_bytes_basic() {
        assert_eq!(total_bytes(1, BurstSize::B4), 4);
        assert_eq!(total_bytes(256, BurstSize::B16), 4096);
    }

    #[test]
    fn boundary_exactly_at_4k_is_legal() {
        // A 4096-byte burst starting at 0 ends at 4095: legal.
        assert!(!crosses_4k(0, 256, BurstSize::B16));
        // The same burst starting at 16 spills into the next page.
        assert!(crosses_4k(16, 256, BurstSize::B16));
    }

    #[test]
    fn single_beat_never_crosses_when_aligned() {
        for size in BurstSize::ALL {
            assert!(!crosses_4k(0x1000 - size.bytes(), 1, size));
        }
    }

    #[test]
    fn beat_addresses_increment_by_size() {
        assert_eq!(incr_beat_addr(0x100, BurstSize::B8, 0), 0x100);
        assert_eq!(incr_beat_addr(0x100, BurstSize::B8, 3), 0x118);
    }

    #[test]
    fn fixed_beats_stay_put() {
        use crate::types::BurstKind;
        for i in 0..8 {
            assert_eq!(
                beat_addr(BurstKind::Fixed, 0x400, 8, BurstSize::B4, i),
                0x400
            );
        }
    }

    #[test]
    fn wrap_from_container_start_is_linear() {
        use crate::types::BurstKind;
        let addrs: Vec<u64> = (0..4)
            .map(|i| beat_addr(BurstKind::Wrap, 0x100, 4, BurstSize::B4, i))
            .collect();
        assert_eq!(addrs, vec![0x100, 0x104, 0x108, 0x10C]);
    }

    #[test]
    fn wrap_mid_container_wraps_around() {
        use crate::types::BurstKind;
        let addrs: Vec<u64> = (0..8)
            .map(|i| beat_addr(BurstKind::Wrap, 0x130, 8, BurstSize::B8, i))
            .collect();
        // Container is 64 bytes: [0x100, 0x140).
        assert_eq!(
            addrs,
            vec![0x130, 0x138, 0x100, 0x108, 0x110, 0x118, 0x120, 0x128]
        );
    }

    #[test]
    fn split_exact_multiple() {
        let subs = split_incr(0, 32, BurstSize::B4, 16);
        assert_eq!(subs.len(), 2);
        assert!(subs.iter().all(|s| s.len == 16));
        assert_eq!(subs[1].addr, 64);
    }

    #[test]
    fn split_with_remainder() {
        let subs = split_incr(0, 17, BurstSize::B4, 16);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].len, 16);
        assert_eq!(subs[1].len, 1);
        assert_eq!(subs[1].addr, 64);
    }

    #[test]
    fn split_shorter_than_nominal_is_identity() {
        let subs = split_incr(0x40, 5, BurstSize::B8, 16);
        assert_eq!(subs, vec![SubBurst { addr: 0x40, len: 5 }]);
    }

    #[test]
    fn split_count_matches_split() {
        for (len, nominal) in [(1u32, 1u32), (16, 16), (17, 16), (255, 16), (256, 8)] {
            assert_eq!(
                split_count(len, nominal) as usize,
                split_incr(0, len, BurstSize::B4, nominal).len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn split_zero_nominal_panics() {
        let _ = split_incr(0, 4, BurstSize::B4, 0);
    }

    #[test]
    fn alignment_checks() {
        assert!(check_alignment(0x1000, BurstSize::B16).is_ok());
        assert_eq!(
            check_alignment(0x1001, BurstSize::B16),
            Err(TxnError::Unaligned {
                addr: 0x1001,
                size: 16
            })
        );
    }

    #[test]
    fn wrap_lengths() {
        for ok in [2u32, 4, 8, 16] {
            assert!(check_wrap_len(ok).is_ok());
        }
        for bad in [1u32, 3, 5, 17, 32] {
            assert!(check_wrap_len(bad).is_err());
        }
    }

    proptest! {
        /// Splitting preserves total beats, covers a contiguous address
        /// range, and every fragment respects the nominal bound.
        #[test]
        fn split_preserves_coverage(
            addr in 0u64..1_000_000,
            len in 1u32..1024,
            nominal in 1u32..64,
        ) {
            let size = BurstSize::B4;
            let addr = addr * size.bytes(); // aligned
            let subs = split_incr(addr, len, size, nominal);
            // Beat conservation.
            let total: u32 = subs.iter().map(|s| s.len).sum();
            prop_assert_eq!(total, len);
            // Contiguity.
            let mut cursor = addr;
            for s in &subs {
                prop_assert_eq!(s.addr, cursor);
                prop_assert!(s.len >= 1 && s.len <= nominal);
                cursor += s.len as u64 * size.bytes();
            }
            // Only the last fragment may be short.
            for s in &subs[..subs.len() - 1] {
                prop_assert_eq!(s.len, nominal);
            }
        }

        /// `crosses_4k` agrees with a brute-force per-beat page check.
        #[test]
        fn crosses_4k_matches_bruteforce(
            addr in 0u64..20_000,
            len in 1u32..64,
            size_idx in 0usize..8,
        ) {
            let size = BurstSize::ALL[size_idx];
            let addr = addr - (addr % size.bytes()); // align
            let first_page = addr / BOUNDARY_4K;
            let last_byte = addr + total_bytes(len, size) - 1;
            let brute = last_byte / BOUNDARY_4K != first_page;
            prop_assert_eq!(crosses_4k(addr, len, size), brute);
        }
    }
}
