//! Inline small-buffer beat payload storage.
//!
//! AXI data beats are at most 128 bytes, and every workload in this
//! repository (and the paper's evaluation) moves 4–64-byte beats. Storing
//! each beat's bytes in an owned `Vec<u8>` therefore pays a heap
//! allocation, a pointer chase and a deallocation per beat — the dominant
//! per-cycle cost under contention. [`Payload`] keeps up to
//! [`PAYLOAD_INLINE`] bytes inline in the beat itself (flat storage that
//! moves with the beat through the ring-buffer FIFOs) and spills to a
//! boxed slice only for larger beats, which none of the modelled traffic
//! generates in steady state.
//!
//! Handle/lifetime rules are trivial by construction: the bytes are owned
//! by the beat, live exactly as long as it, and move with it between
//! queues — there is no arena to leak from or dangle into. Construction
//! goes through the zero-alloc paths ([`Payload::zeroed`],
//! [`Payload::from_fn`], `From<&[u8]>`) on the hot paths; `From<Vec<u8>>`
//! exists for tests and cold call sites.

/// Maximum payload length stored inline (no heap) in a beat.
pub const PAYLOAD_INLINE: usize = 64;

/// Owned beat payload bytes with inline small-buffer storage.
///
/// Dereferences to `[u8]`, so slice reads (`len`, indexing, `iter`,
/// comparisons) work as they did on the former `Vec<u8>` field.
///
/// # Example
///
/// ```
/// use axi::Payload;
///
/// let p = Payload::from_fn(4, |i| i as u8 * 2);
/// assert_eq!(&p[..], &[0, 2, 4, 6]);
/// assert_eq!(p, vec![0, 2, 4, 6]); // compares against Vec<u8> too
/// ```
#[derive(Clone)]
pub struct Payload {
    /// Inline storage, valid for `len` bytes when `spill` is `None`.
    inline: [u8; PAYLOAD_INLINE],
    /// Inline length; unused (0) when spilled.
    len: u16,
    /// Heap storage for payloads longer than [`PAYLOAD_INLINE`] bytes.
    spill: Option<Box<[u8]>>,
}

impl Payload {
    /// The empty payload.
    pub fn new() -> Self {
        Self {
            inline: [0; PAYLOAD_INLINE],
            len: 0,
            spill: None,
        }
    }

    /// A zero-filled payload of `len` bytes. Allocation-free for
    /// `len <= PAYLOAD_INLINE`.
    pub fn zeroed(len: usize) -> Self {
        if len <= PAYLOAD_INLINE {
            Self {
                inline: [0; PAYLOAD_INLINE],
                len: len as u16,
                spill: None,
            }
        } else {
            Self {
                inline: [0; PAYLOAD_INLINE],
                len: 0,
                spill: Some(vec![0u8; len].into_boxed_slice()),
            }
        }
    }

    /// A payload of `len` bytes where byte `i` is `fill(i)`.
    /// Allocation-free for `len <= PAYLOAD_INLINE`.
    pub fn from_fn(len: usize, mut fill: impl FnMut(usize) -> u8) -> Self {
        let mut p = Self::zeroed(len);
        for (i, b) in p.as_mut_slice().iter_mut().enumerate() {
            *b = fill(i);
        }
        p
    }

    /// The payload bytes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.spill {
            Some(heap) => heap,
            None => &self.inline[..self.len as usize],
        }
    }

    /// The payload bytes as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.spill {
            Some(heap) => heap,
            None => &mut self.inline[..self.len as usize],
        }
    }

    /// Copies the bytes into a fresh `Vec` (cold paths / tests).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Payload {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for Payload {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        let mut p = Self::zeroed(bytes.len());
        p.as_mut_slice().copy_from_slice(bytes);
        p
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        if bytes.len() <= PAYLOAD_INLINE {
            Self::from(bytes.as_slice())
        } else {
            Self {
                inline: [0; PAYLOAD_INLINE],
                len: 0,
                spill: Some(bytes.into_boxed_slice()),
            }
        }
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(bytes: [u8; N]) -> Self {
        Self::from(bytes.as_slice())
    }
}

impl FromIterator<u8> for Payload {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut iter = iter.into_iter();
        let mut inline = [0u8; PAYLOAD_INLINE];
        let mut len = 0usize;
        for b in iter.by_ref() {
            if len == PAYLOAD_INLINE {
                // Overflow: continue into a Vec and spill.
                let mut v = inline.to_vec();
                v.push(b);
                v.extend(iter);
                return Self::from(v);
            }
            inline[len] = b;
            len += 1;
        }
        Self {
            inline,
            len: len as u16,
            spill: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_roundtrip() {
        let p = Payload::from(vec![1u8, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(&p[..], &[1, 2, 3]);
        assert_eq!(p, vec![1, 2, 3]);
        assert_eq!(p.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_payload() {
        let p = Payload::default();
        assert!(p.is_empty());
        assert_eq!(p, Vec::<u8>::new());
    }

    #[test]
    fn zeroed_and_from_fn() {
        let z = Payload::zeroed(16);
        assert_eq!(z, vec![0u8; 16]);
        let f = Payload::from_fn(5, |i| (i * i) as u8);
        assert_eq!(f, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn boundary_at_inline_cap() {
        let exactly = Payload::zeroed(PAYLOAD_INLINE);
        assert_eq!(exactly.len(), PAYLOAD_INLINE);
        let over = Payload::from_fn(PAYLOAD_INLINE + 1, |i| i as u8);
        assert_eq!(over.len(), PAYLOAD_INLINE + 1);
        assert_eq!(over[PAYLOAD_INLINE], PAYLOAD_INLINE as u8);
    }

    #[test]
    fn spilled_payload_roundtrip() {
        let big: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let p = Payload::from(big.clone());
        assert_eq!(p, big);
        let q = p.clone();
        assert_eq!(q, big);
        let mut m = p;
        m.as_mut_slice()[0] = 0xFF;
        assert_eq!(m[0], 0xFF);
    }

    #[test]
    fn mutation_through_deref() {
        let mut p = Payload::zeroed(4);
        p[2] = 7;
        assert_eq!(p, vec![0, 0, 7, 0]);
    }

    #[test]
    fn equality_is_by_bytes_not_storage() {
        // Same logical bytes, one inline and one (forced) via Vec.
        let a = Payload::from_fn(8, |i| i as u8);
        let b = Payload::from((0..8u8).collect::<Vec<_>>());
        assert_eq!(a, b);
        assert_ne!(a, Payload::zeroed(8));
    }

    #[test]
    fn collects_from_iterator() {
        let p: Payload = (0..10u8).map(|b| b * 3).collect();
        assert_eq!(p, (0..10u8).map(|b| b * 3).collect::<Vec<_>>());
        // Overflow past the inline capacity spills but keeps the bytes.
        let big: Payload = (0..100u32).map(|b| b as u8).collect();
        assert_eq!(big, (0..100u32).map(|b| b as u8).collect::<Vec<_>>());
    }
}
