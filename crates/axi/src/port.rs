//! AXI port boundaries: the queue bundle both interconnect models expose,
//! and the [`AxiInterconnect`] trait the benchmark harness swaps between
//! the HyperConnect and the SmartConnect baseline.

use sim::{Component, Cycle, TimedFifo};

use crate::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};

/// Queue sizing and latency for one [`AxiPort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortConfig {
    /// Capacity of the AR and AW queues, in requests.
    pub addr_capacity: usize,
    /// Capacity of the W and R queues, in beats.
    pub data_capacity: usize,
    /// Capacity of the B queue, in responses.
    pub resp_capacity: usize,
    /// Cycles between pushing into a queue and visibility at its output.
    /// Latency 0 models a plain wire boundary; the interconnect models
    /// add their pipeline latency internally.
    pub latency: Cycle,
}

impl PortConfig {
    /// A zero-latency boundary with generous buffering — the default for
    /// the external edges of an interconnect model.
    pub fn wire() -> Self {
        Self {
            addr_capacity: 8,
            data_capacity: 64,
            resp_capacity: 8,
            latency: 0,
        }
    }

    /// A single-cycle registered boundary (one pipeline stage).
    pub fn registered() -> Self {
        Self {
            latency: 1,
            ..Self::wire()
        }
    }

    /// Overrides the address-queue capacity.
    pub fn addr_capacity(mut self, n: usize) -> Self {
        self.addr_capacity = n;
        self
    }

    /// Overrides the data-queue capacity.
    pub fn data_capacity(mut self, n: usize) -> Self {
        self.data_capacity = n;
        self
    }
}

impl Default for PortConfig {
    fn default() -> Self {
        Self::wire()
    }
}

/// One AXI port boundary: five independent channel queues.
///
/// Orientation convention: `ar`, `aw` and `w` flow *downstream* (from a
/// master toward memory); `r` and `b` flow *upstream* (back toward the
/// master). At an interconnect **slave port** the accelerator pushes
/// `ar/aw/w` and pops `r/b`; at the interconnect **master port** the
/// interconnect pushes `ar/aw/w` and the memory controller pops them,
/// pushing `r/b` back.
#[derive(Debug, Clone)]
pub struct AxiPort {
    /// Read-address channel, downstream.
    pub ar: TimedFifo<ArBeat>,
    /// Write-address channel, downstream.
    pub aw: TimedFifo<AwBeat>,
    /// Write-data channel, downstream.
    pub w: TimedFifo<WBeat>,
    /// Read-data channel, upstream.
    pub r: TimedFifo<RBeat>,
    /// Write-response channel, upstream.
    pub b: TimedFifo<BBeat>,
}

impl AxiPort {
    /// Creates a port with the given configuration.
    pub fn new(config: PortConfig) -> Self {
        Self {
            ar: TimedFifo::new(config.addr_capacity, config.latency),
            aw: TimedFifo::new(config.addr_capacity, config.latency),
            w: TimedFifo::new(config.data_capacity, config.latency),
            r: TimedFifo::new(config.data_capacity, config.latency),
            b: TimedFifo::new(config.resp_capacity, config.latency),
        }
    }

    /// Whether every queue is empty (the port is quiescent).
    pub fn is_idle(&self) -> bool {
        self.ar.is_empty()
            && self.aw.is_empty()
            && self.w.is_empty()
            && self.r.is_empty()
            && self.b.is_empty()
    }

    /// Total queued elements across all five channels.
    pub fn occupancy(&self) -> usize {
        self.ar.len() + self.aw.len() + self.w.len() + self.r.len() + self.b.len()
    }

    /// Earliest cycle at which any queued beat on any channel becomes
    /// visible at its queue output, or `None` when the port is idle.
    /// Event-horizon hint for the fast-forward scheduler.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        [
            self.ar.next_ready_at(),
            self.aw.next_ready_at(),
            self.w.next_ready_at(),
            self.r.next_ready_at(),
            self.b.next_ready_at(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Lifetime push + pop count summed across all five channels. Both
    /// counters are monotonic, so the sum changes whenever anything
    /// enters or leaves the port — a cheap mutation fingerprint the
    /// fast-forward scheduler uses to detect out-of-band traffic moved
    /// by simulation hooks.
    pub fn lifetime_activity(&self) -> u64 {
        self.ar.total_pushed()
            + self.ar.total_popped()
            + self.aw.total_pushed()
            + self.aw.total_popped()
            + self.w.total_pushed()
            + self.w.total_popped()
            + self.r.total_pushed()
            + self.r.total_popped()
            + self.b.total_pushed()
            + self.b.total_popped()
    }

    /// Flushes every channel queue (synchronous reset).
    pub fn clear(&mut self) {
        self.ar.clear();
        self.aw.clear();
        self.w.clear();
        self.r.clear();
        self.b.clear();
    }
}

impl Default for AxiPort {
    fn default() -> Self {
        Self::new(PortConfig::default())
    }
}

/// Behaviour common to every N-slave-ports, 1-master-port AXI
/// interconnect model (the architecture the paper studies: a set of
/// accelerators funneled into one FPGA-PS interface port).
///
/// Implemented by `hyperconnect::HyperConnect` and
/// `smartconnect::SmartConnect`; the benchmark harness is generic over
/// this trait so every experiment runs identically on both.
pub trait AxiInterconnect: Component {
    /// Number of slave (accelerator-facing) ports.
    fn num_ports(&self) -> usize;

    /// The `i`-th slave port boundary.
    ///
    /// # Panics
    ///
    /// Implementations panic if `i >= num_ports()`.
    fn port(&mut self, i: usize) -> &mut AxiPort;

    /// The single master port boundary (toward the FPGA-PS interface).
    fn mem_port(&mut self) -> &mut AxiPort;

    /// Short human-readable model name for reports (e.g. `"HyperConnect"`).
    fn name(&self) -> &'static str;

    /// Whether all internal state and boundary queues are empty.
    fn is_idle(&self) -> bool;

    /// Monotonic counter bumped whenever the interconnect's control-plane
    /// configuration changes through its memory-mapped interface (e.g. an
    /// AXI-Lite register write). The fast-forward scheduler compares it
    /// across hook invocations to detect reconfiguration during a skipped
    /// span. Models without a runtime-writable control plane keep the
    /// default of `0`.
    fn config_generation(&self) -> u64 {
        0
    }

    /// The transaction-level metrics registry, when observability is
    /// enabled on this model; `None` otherwise (the default).
    fn metrics(&self) -> Option<&crate::observe::MetricsRegistry> {
        None
    }

    /// Mutable access to the metrics registry, when observability is
    /// enabled; `None` otherwise (the default). The topology layer uses
    /// this to namespace each instance's registry with its node label.
    fn metrics_mut(&mut self) -> Option<&mut crate::observe::MetricsRegistry> {
        None
    }

    /// Type-erased view of the concrete model, letting holders of a
    /// `dyn AxiInterconnect` (e.g. a topology node) downcast back to
    /// `HyperConnect`/`SmartConnect` for model-specific configuration.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable type-erased view (see [`AxiInterconnect::as_any`]).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Bound violations recorded by this model's runtime bound monitor,
    /// in detection order; empty when no monitor is armed (the default).
    fn bound_violations(&self) -> &[crate::observe::BoundViolation] {
        &[]
    }

    /// Summary of the runtime bound monitor's activity, when one is
    /// armed; `None` otherwise (the default).
    fn bound_report(&self) -> Option<crate::observe::BoundReport> {
        None
    }

    /// Appends this model's complete mutable state (boundary queues,
    /// internal pipelines, registers, statistics) to a snapshot writer.
    ///
    /// Deliberately *required* (no default): every interconnect model
    /// must participate in snapshot/restore, and the compiler enforces
    /// it at each impl site.
    fn save_state(&self, w: &mut sim::persist::SnapshotWriter);

    /// Restores state previously written by
    /// [`save_state`](AxiInterconnect::save_state) into this model,
    /// which must have been constructed (and configured) identically to
    /// the saved one.
    ///
    /// # Errors
    ///
    /// Returns [`sim::persist::PersistError`] on a truncated, corrupt or
    /// differently-shaped stream.
    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError>;
}

impl<T: AxiInterconnect + ?Sized> AxiInterconnect for Box<T> {
    fn num_ports(&self) -> usize {
        (**self).num_ports()
    }
    fn port(&mut self, i: usize) -> &mut AxiPort {
        (**self).port(i)
    }
    fn mem_port(&mut self) -> &mut AxiPort {
        (**self).mem_port()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_idle(&self) -> bool {
        (**self).is_idle()
    }
    fn config_generation(&self) -> u64 {
        (**self).config_generation()
    }
    fn metrics(&self) -> Option<&crate::observe::MetricsRegistry> {
        (**self).metrics()
    }
    fn metrics_mut(&mut self) -> Option<&mut crate::observe::MetricsRegistry> {
        (**self).metrics_mut()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        (**self).as_any()
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        (**self).as_any_mut()
    }
    fn bound_violations(&self) -> &[crate::observe::BoundViolation] {
        (**self).bound_violations()
    }
    fn bound_report(&self) -> Option<crate::observe::BoundReport> {
        (**self).bound_report()
    }
    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        (**self).save_state(w)
    }
    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        (**self).restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BurstSize;

    #[test]
    fn wire_config_is_zero_latency() {
        let cfg = PortConfig::wire();
        assert_eq!(cfg.latency, 0);
        let reg = PortConfig::registered();
        assert_eq!(reg.latency, 1);
        assert_eq!(reg.addr_capacity, cfg.addr_capacity);
    }

    #[test]
    fn config_builders() {
        let cfg = PortConfig::wire().addr_capacity(2).data_capacity(4);
        assert_eq!(cfg.addr_capacity, 2);
        assert_eq!(cfg.data_capacity, 4);
    }

    #[test]
    fn new_port_is_idle() {
        let p = AxiPort::default();
        assert!(p.is_idle());
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    fn occupancy_counts_all_channels() {
        let mut p = AxiPort::default();
        p.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        p.w.push(0, WBeat::new(vec![0; 4], true)).unwrap();
        p.b.push(0, BBeat::new(crate::types::AxiId(0))).unwrap();
        assert_eq!(p.occupancy(), 3);
        assert!(!p.is_idle());
    }

    #[test]
    fn clear_resets_everything() {
        let mut p = AxiPort::default();
        p.aw.push(0, AwBeat::new(0, 1, BurstSize::B4)).unwrap();
        p.r.push(0, RBeat::new(crate::types::AxiId(0), vec![], true))
            .unwrap();
        p.clear();
        assert!(p.is_idle());
    }

    #[test]
    fn queue_capacities_respected() {
        let mut p = AxiPort::new(PortConfig::wire().addr_capacity(1));
        p.ar.push(0, ArBeat::new(0, 1, BurstSize::B4)).unwrap();
        assert!(p.ar.push(0, ArBeat::new(64, 1, BurstSize::B4)).is_err());
    }
}
