#!/usr/bin/env python3
"""CI gate for the `hcsim-snapshot/v1` wire format.

Usage: check_snapshot_schema.py SNAPSHOT.bin GOLDEN.bin

Validates that

1. the image starts with the exact versioned magic
   (`hcsim-snapshot/v1\\n`) — a format bump must rename the golden,
2. every section parses (u16 name length, UTF-8 name, u32 payload
   length, payload, u32 CRC) with no trailing garbage, each payload's
   stored CRC-32 matching an independent implementation (Python's
   zlib — same IEEE-reflected polynomial as `sim::persist::crc32`),
3. the section list is exactly the `SocTopology` layout, in order:
   `topology/shape`, `topology/control`, `topology/nodes`, and
4. the image is byte-identical to the committed golden — the emitter
   (`hcsim snapshot`) is fully deterministic, so any byte diff means
   either the wire format or the simulated microarchitecture moved.

Exit code 0 on success, 1 with a readable diagnosis otherwise. To
bless an intentional change, regenerate the golden:

    cargo run --release --bin hcsim -- snapshot --out snap.bin
    python3 ci/check_snapshot_schema.py snap.bin --bless ci/snapshot_schema.golden
"""

import struct
import sys
import zlib

MAGIC = b"hcsim-snapshot/v1\n"
EXPECTED_SECTIONS = ["topology/shape", "topology/control", "topology/nodes"]


def parse_sections(data):
    """Yields (name, payload) per section; raises ValueError on any
    framing or checksum defect."""
    if not data.startswith(MAGIC):
        raise ValueError(
            f"bad magic {data[:len(MAGIC)]!r}, want {MAGIC!r}"
        )
    at = len(MAGIC)

    def take(n, what):
        nonlocal at
        if at + n > len(data):
            raise ValueError(f"truncated reading {what} at byte {at}")
        chunk = data[at : at + n]
        at += n
        return chunk

    (count,) = struct.unpack("<I", take(4, "section count"))
    for i in range(count):
        (name_len,) = struct.unpack("<H", take(2, f"section {i} name length"))
        name = take(name_len, f"section {i} name").decode("utf-8")
        (payload_len,) = struct.unpack("<I", take(4, f"{name} payload length"))
        payload = take(payload_len, f"{name} payload")
        (crc,) = struct.unpack("<I", take(4, f"{name} checksum"))
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if crc != actual:
            raise ValueError(
                f"section {name}: stored crc {crc:#010x} != computed {actual:#010x}"
            )
        yield name, payload
    if at != len(data):
        raise ValueError(f"{len(data) - at} trailing bytes after last section")


def main():
    if len(sys.argv) != 3 and not (len(sys.argv) == 4 and sys.argv[2] == "--bless"):
        print(__doc__, file=sys.stderr)
        return 2
    snapshot_path = sys.argv[1]
    with open(snapshot_path, "rb") as fh:
        data = fh.read()

    try:
        sections = list(parse_sections(data))
    except ValueError as err:
        print(f"FAIL: {snapshot_path}: {err}", file=sys.stderr)
        return 1

    failures = []
    names = [name for name, _ in sections]
    if names != EXPECTED_SECTIONS:
        failures.append(f"section layout {names} != {EXPECTED_SECTIONS}")

    if sys.argv[2] == "--bless":
        with open(sys.argv[3], "wb") as fh:
            fh.write(data)
        print(f"blessed {len(data)} bytes into {sys.argv[3]}")
        return 1 if failures else 0

    with open(sys.argv[2], "rb") as fh:
        golden = fh.read()
    if data != golden:
        first = next(
            (i for i, (a, b) in enumerate(zip(data, golden)) if a != b),
            min(len(data), len(golden)),
        )
        failures.append(
            f"image differs from golden: {len(data)} vs {len(golden)} bytes, "
            f"first difference at byte {first}"
        )

    if failures:
        print(f"FAIL: {snapshot_path}", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    sizes = ", ".join(f"{name} {len(payload)} B" for name, payload in sections)
    print(f"ok: {len(data)} bytes match golden ({sizes})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
