#!/usr/bin/env python3
"""Guard the committed perf trajectory: fail when a fresh perf-harness
run regresses any committed throughput figure by more than the allowed
fraction (default 20%).

Usage:
    check_bench_delta.py COMMITTED.json FRESH.json [--tolerance 0.20]

Walks both BENCH_simulator.json documents in lockstep and compares every
figure whose key ends in ``cycles_per_sec`` (the absolute throughput
figures; wall-clock milliseconds and RSS are host noise and are not
gated). ``speedup`` ratios are printed for reference but never gated:
they divide two measurements, so they swing with host core count and
drop when the *denominator* improves (e.g. making the naive scheduler
faster shrinks the fast-forward speedup without any regression).
Figures present in only one document are reported but tolerated, so
adding or retiring a scenario never breaks the gate — only a measured
slowdown of a still-published figure does. Array elements are matched
by their ``name``/``workers`` field when present, by index otherwise.

Scenarios whose committed wall time is under ``MIN_GATED_WALL_MS``
(e.g. the 4 B / 64 B Fig 3(b) points, which complete in microseconds)
are reported but never gated: their throughput figures are dominated by
setup and timer granularity, and observed run-to-run swings exceed any
sane tolerance.

Exit status: 0 when every shared figure is within tolerance, 1 when any
regressed, 2 on usage/parse errors.
"""

import json
import sys

GATED_SUFFIXES = ("cycles_per_sec",)

# Ratio figures: reported so trend shifts stay visible, never gated.
REPORTED_SUFFIXES = ("speedup",)

# Scenarios measured over less wall time than this are pure host noise;
# their figures are printed for reference but never fail the gate.
MIN_GATED_WALL_MS = 50.0


def is_noise_scope(*scopes):
    """Whether any of the dicts' measurements are too short-lived to gate."""
    for value in scopes:
        if isinstance(value, dict):
            wall = value.get("wall_ms", value.get("wall_ms_parallel"))
            if isinstance(wall, (int, float)) and wall < MIN_GATED_WALL_MS:
                return True
    return False


def leaf_is_noisy(committed, fresh, key):
    """A ``<prefix>cycles_per_sec`` leaf is noise when its sibling
    ``<prefix>wall_ms`` in either document is under the gating floor
    (e.g. ``fast_forward_cycles_per_sec`` next to a 7 ms
    ``fast_forward_wall_ms``: throughput then scales with the window
    length, so cross-mode comparisons are meaningless)."""
    wall_key = key[: -len("cycles_per_sec")] + "wall_ms" if key.endswith(
        "cycles_per_sec"
    ) else None
    if wall_key is None:
        return False
    for scope in (committed, fresh):
        wall = scope.get(wall_key)
        if isinstance(wall, (int, float)) and wall < MIN_GATED_WALL_MS:
            return True
    return False


def element_key(value, index):
    """A stable identity for an array element, for cross-run matching."""
    if isinstance(value, dict):
        for field in ("name", "figure", "workers"):
            if field in value:
                return f"{field}={value[field]}"
    return f"#{index}"


def walk(committed, fresh, path, shared, noisy, only_committed, only_fresh):
    """Collects (path, committed, fresh) figure triples from both docs."""
    if isinstance(committed, dict) and isinstance(fresh, dict):
        sink = noisy if is_noise_scope(committed, fresh) else shared
        for key in committed:
            sub = f"{path}.{key}" if path else key
            if key in fresh:
                if isinstance(committed[key], (int, float)) and isinstance(
                    fresh[key], (int, float)
                ):
                    if key.endswith(REPORTED_SUFFIXES):
                        noisy.append((sub, float(committed[key]), float(fresh[key])))
                    elif key.endswith(GATED_SUFFIXES):
                        dest = (
                            noisy
                            if sink is noisy or leaf_is_noisy(committed, fresh, key)
                            else sink
                        )
                        dest.append((sub, float(committed[key]), float(fresh[key])))
                else:
                    walk(
                        committed[key],
                        fresh[key],
                        sub,
                        shared,
                        noisy,
                        only_committed,
                        only_fresh,
                    )
            elif key.endswith(GATED_SUFFIXES + REPORTED_SUFFIXES):
                only_committed.append(sub)
        for key in fresh:
            if key not in committed and key.endswith(GATED_SUFFIXES + REPORTED_SUFFIXES):
                only_fresh.append(f"{path}.{key}" if path else key)
    elif isinstance(committed, list) and isinstance(fresh, list):
        fresh_by_key = {element_key(v, i): v for i, v in enumerate(fresh)}
        for i, value in enumerate(committed):
            key = element_key(value, i)
            sub = f"{path}[{key}]"
            if key in fresh_by_key:
                walk(value, fresh_by_key[key], sub, shared, noisy, only_committed, only_fresh)
            else:
                only_committed.append(sub)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    tolerance = 0.20
    it = iter(argv[1:])
    for a in it:
        if a == "--tolerance":
            tolerance = float(next(it, "0.20"))
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0]) as f:
            committed = json.load(f)
        with open(args[1]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    committed_mode = committed.get("mode")
    fresh_mode = fresh.get("mode")
    if committed_mode != fresh_mode:
        print(
            f"warning: comparing mode={committed_mode!r} (committed) against "
            f"mode={fresh_mode!r} (fresh); windows differ, expect noise",
            file=sys.stderr,
        )

    shared, noisy, only_committed, only_fresh = [], [], [], []
    walk(committed, fresh, "", shared, noisy, only_committed, only_fresh)
    if not shared:
        print("error: no shared throughput figures found", file=sys.stderr)
        return 2

    regressions = []
    for path, old, new in shared:
        ratio = new / old if old else float("inf")
        status = "OK"
        if old > 0 and ratio < 1.0 - tolerance:
            status = "REGRESSED"
            regressions.append((path, old, new, ratio))
        print(f"{status:9s} {path}: {old:,.0f} -> {new:,.0f} ({ratio:.2f}x)")
    for path, old, new in noisy:
        ratio = new / old if old else float("inf")
        print(f"NOISY     {path}: {old:,.0f} -> {new:,.0f} ({ratio:.2f}x, not gated)")
    for path in only_committed:
        print(f"RETIRED   {path}: committed only (tolerated)")
    for path in only_fresh:
        print(f"NEW       {path}: fresh only (tolerated)")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} figure(s) regressed more than "
            f"{tolerance:.0%} vs the committed BENCH_simulator.json",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(shared)} shared figures within {tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
