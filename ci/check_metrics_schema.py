#!/usr/bin/env python3
"""CI gate for the observability metrics snapshot.

Usage: check_metrics_schema.py SNAPSHOT.json GOLDEN

Validates that

1. the snapshot parses as JSON and carries the expected `schema` tag,
2. its flattened set of key paths (array indices collapsed to `[]`)
   matches the committed golden exactly — a field added, renamed or
   dropped in `MetricsRegistry::to_json` / `BoundReport::to_json` /
   `SocSystem::metrics_snapshot_json` shows up as a path diff, and
3. the runtime bound monitor was enabled, actually checked traffic, and
   recorded zero worst-case-latency violations.

Exit code 0 on success, 1 with a readable diff otherwise. To bless an
intentional schema change, regenerate the golden:

    cargo run --release --example quickstart -- --metrics-json snap.json
    python3 ci/check_metrics_schema.py snap.json --bless ci/metrics_schema.golden
"""

import json
import sys

EXPECTED_SCHEMA = "axi-hyperconnect/metrics-snapshot/v1"


def key_paths(node, path=""):
    """Flattens a JSON tree to leaf key paths; list indices become []."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from key_paths(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for value in node:
            yield from key_paths(value, path + "[]")
    else:
        yield path


def main():
    if len(sys.argv) != 3 and not (len(sys.argv) == 4 and sys.argv[2] == "--bless"):
        print(__doc__, file=sys.stderr)
        return 2
    snapshot_path = sys.argv[1]
    with open(snapshot_path, encoding="utf-8") as fh:
        snapshot = json.load(fh)

    got = sorted(set(key_paths(snapshot)))
    if sys.argv[2] == "--bless":
        with open(sys.argv[3], "w", encoding="utf-8") as fh:
            fh.write("\n".join(got) + "\n")
        print(f"blessed {len(got)} key paths into {sys.argv[3]}")
        return 0

    failures = []
    if snapshot.get("schema") != EXPECTED_SCHEMA:
        failures.append(
            f"schema tag {snapshot.get('schema')!r} != {EXPECTED_SCHEMA!r}"
        )

    with open(sys.argv[2], encoding="utf-8") as fh:
        want = sorted(line.strip() for line in fh if line.strip())
    missing = sorted(set(want) - set(got))
    extra = sorted(set(got) - set(want))
    for path in missing:
        failures.append(f"missing key path: {path}")
    for path in extra:
        failures.append(f"unexpected key path: {path}")

    monitor = snapshot.get("bound_monitor", {})
    if monitor.get("enabled") is not True:
        failures.append("bound monitor was not enabled")
    elif monitor.get("checked_reads", 0) + monitor.get("checked_writes", 0) == 0:
        failures.append("bound monitor checked no transactions")
    elif monitor.get("violations", 0) != 0:
        failures.append(
            f"bound monitor recorded {monitor['violations']} violations "
            f"(worst read {monitor.get('worst_read')} vs bound "
            f"{monitor.get('read_bound')}, worst write "
            f"{monitor.get('worst_write')} vs bound {monitor.get('write_bound')})"
        )

    if failures:
        print(f"FAIL: {snapshot_path}", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: {len(got)} key paths match, "
        f"{monitor['checked_reads']} reads / {monitor['checked_writes']} writes "
        "checked, 0 violations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
